#![allow(dead_code)] // Each test binary uses a different fixture subset.

//! Shared fixtures for the workspace-level conformance suite: the paper's
//! four workloads, the full determinism-model suite, and the seed grid the
//! cross-model invariants are checked over.

use debug_determinism::core::{
    DebugModel, DeterminismModel, FailureModel, MsgOrderModel, OutputHeavyModel, OutputLiteModel,
    PerfectModel, RaceCompleteModel, RcseConfig, RunSetup, ValueModel, Workload,
};
use debug_determinism::hyperstore::{HyperConfig, HyperstoreWorkload};
use debug_determinism::replay::Scenario;
use debug_determinism::sim::IoSummary;
use debug_determinism::workloads::{
    BufOverflowWorkload, MsgServerConfig, MsgServerWorkload, SumWorkload,
};
use std::collections::BTreeMap;

/// The default seed grid: every conformance invariant is checked on the
/// workload's pinned failing production run *and* these schedule-seed
/// variants (some of which pass — the invariants must hold either way).
pub const SEED_GRID: &[u64] = &[0, 1, 2];

/// Builds all four paper workloads. The racy ones are pinned to a
/// discovered failing production seed, exactly as the figures do.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(SumWorkload),
        Box::new(msgserver()),
        Box::new(BufOverflowWorkload),
        Box::new(
            HyperstoreWorkload::discover(HyperConfig::small(), 200)
                .expect("hyperstore failing seed"),
        ),
    ]
}

/// The msgserver workload alone (the DPOR acceptance target).
pub fn msgserver() -> MsgServerWorkload {
    MsgServerWorkload::discover(MsgServerConfig::default(), 64).expect("msgserver failing seed")
}

/// The production scenario plus one variant per grid seed (same program,
/// inputs and environment; different kernel/schedule seeds).
pub fn scenario_grid(workload: &dyn Workload, seeds: &[u64]) -> Vec<Scenario> {
    let base = workload.production();
    let mut grid = vec![workload.scenario()];
    for &seed in seeds {
        grid.push(workload.scenario_for(&RunSetup {
            seed,
            sched_seed: seed.wrapping_mul(31).wrapping_add(7),
            ..base.clone()
        }));
    }
    grid
}

/// Every determinism model, strongest to weakest, ending with the RCSE
/// debug-determinism model trained on the workload's passing runs.
pub fn model_suite(workload: &dyn Workload) -> Vec<Box<dyn DeterminismModel>> {
    let scenario = workload.scenario();
    let seeds: Vec<(u64, u64)> = workload
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    let debug = DebugModel::prepare(
        &scenario,
        &seeds,
        RcseConfig {
            use_triggers: false,
            ..RcseConfig::default()
        },
    );
    vec![
        Box::new(PerfectModel),
        Box::new(MsgOrderModel),
        Box::new(ValueModel),
        Box::new(RaceCompleteModel),
        Box::new(OutputHeavyModel),
        Box::new(OutputLiteModel),
        Box::new(FailureModel),
        Box::new(debug),
    ]
}

/// FNV-1a over a serialized artifact: any divergence anywhere in the input
/// changes the hash. The single definition every workspace-level suite
/// (golden table, conformance, checkpoint determinism) compares against.
pub fn fnv(json: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a hash of a run's serialized trace.
pub fn trace_hash(out: &debug_determinism::sim::RunOutput) -> u64 {
    let trace = debug_determinism::trace::Trace::from_run(out);
    fnv(&serde_json::to_string(&trace).expect("trace serializes"))
}

/// Schedule-order-insensitive view of a run's observable output: per-port
/// value multisets (as canonical JSON) plus final counters. Value
/// determinism guarantees what each task observed and emitted, not the
/// cross-task emission order, so this is the right equality for the
/// "value ⊨ output" lattice edge.
pub fn output_multisets(io: &IoSummary) -> (BTreeMap<String, Vec<String>>, BTreeMap<String, i64>) {
    let mut ports: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for o in &io.outputs {
        ports
            .entry(o.port_name.clone())
            .or_default()
            .push(serde_json::to_string(&o.value).expect("value serializes"));
    }
    for vals in ports.values_mut() {
        vals.sort();
    }
    (ports, io.counters.clone())
}
