//! Property tests for the parallel-exploration determinism contract: for
//! *arbitrary* worker counts, execution budgets and checkpoint intervals,
//! `SearchStrategy::DporParallel` must return a failure set, pruning count,
//! full statistics block and per-interleaving trace-hash sequence identical
//! to the sequential explorer — on all four paper workloads.
//!
//! This is the property CI's `determinism-matrix` job pins at fixed points
//! (`DD_SEARCH_WORKERS ∈ {1, 4}` crossed with `--test-threads`); here the
//! whole configuration cube is sampled. The worker pool may only buy
//! wall-clock time: the coordinator consumes runs in sequential order and
//! charges them against its canonical snapshot pool, so even the
//! `steps_executed`/`steps_skipped` split is worker-count-invariant.

mod common;

use common::all_workloads;
use debug_determinism::core::Workload;
use debug_determinism::replay::{enumerate_failures, search_with, InferenceBudget, SearchStrategy};
use proptest::prelude::*;

/// Sequential-vs-parallel comparison on one workload under one budget
/// configuration: failure sets, statistics, and the ordered trace-hash
/// sequence of every visited interleaving.
fn assert_equivalent(
    workload: &dyn Workload,
    workers: u32,
    budget_n: u64,
    interval: u64,
    depth: u32,
) -> Result<(), String> {
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(budget_n).with_checkpoints(interval);
    let sequential = SearchStrategy::Dpor { max_depth: depth };
    let parallel = SearchStrategy::DporParallel {
        max_depth: depth,
        workers,
    };
    let label = format!(
        "{} / {workers} workers / budget {budget_n} / interval {interval} / depth {depth}",
        workload.name()
    );

    let (seq_failures, seq_stats) = enumerate_failures(&scenario, &budget, sequential);
    let (par_failures, par_stats) = enumerate_failures(&scenario, &budget, parallel);
    if par_failures != seq_failures {
        return Err(format!(
            "{label}: failure set diverged ({par_failures:?} vs {seq_failures:?})"
        ));
    }
    if par_stats != seq_stats {
        return Err(format!(
            "{label}: statistics diverged ({par_stats:?} vs {seq_stats:?})"
        ));
    }

    let hashes = |strategy: SearchStrategy| -> Vec<u64> {
        let collected = std::cell::RefCell::new(Vec::new());
        search_with(&scenario, &budget, strategy, None, |out| {
            collected.borrow_mut().push(common::trace_hash(out));
            false
        });
        collected.into_inner()
    };
    let seq_hashes = hashes(sequential);
    let par_hashes = hashes(parallel);
    if par_hashes != seq_hashes {
        return Err(format!(
            "{label}: walk order or an interleaving's trace diverged"
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The full configuration cube, sampled: any worker count (1..=8), any
    /// small execution budget, any checkpoint interval (0 = scratch), any
    /// branching depth — parallel DPOR is byte-identical to sequential
    /// DPOR on every workload.
    #[test]
    fn parallel_dpor_equals_sequential_for_any_configuration(
        workers in 1u32..9,
        budget_n in 10u64..60,
        interval in 0u64..4,
        depth in 2u32..6,
    ) {
        for workload in all_workloads() {
            assert_equivalent(workload.as_ref(), workers, budget_n, interval, depth)?;
        }
    }

    /// The deep-horizon regime — where snapshots actually carry work and
    /// workers genuinely race ahead — sampled on the msgserver incident.
    #[test]
    fn parallel_dpor_equals_sequential_at_deep_horizons(
        workers in 2u32..9,
        budget_n in 20u64..50,
        interval in 1u64..3,
    ) {
        let workload = common::msgserver();
        assert_equivalent(&workload, workers, budget_n, interval, 256)?;
    }
}
