//! The snapshot-cost acceptance gate: on the deep-horizon msgserver row
//! (the ABL-7/ABL-8 deep regime — snapshot every decision inside a
//! 256-deep horizon), a [`dd_sim::WorldSnapshot`] clone must copy at least
//! 2× fewer bytes than the pre-chunking deep-clone representation.
//!
//! Byte accounting is deterministic (no wall-clock), so this gates in the
//! regular `test` job rather than the advisory perf-smoke job — matching
//! the PR-4 convention that correctness and deterministic-cost claims
//! gate while wall-clock claims stay advisory on shared runners.

use dd_bench::deep_msgserver_point;

#[test]
fn deep_msgserver_snapshot_clone_copies_2x_fewer_bytes() {
    let p = deep_msgserver_point();
    assert!(
        p.snapshots > 100,
        "the deep row must build a dense snapshot pool, got {}",
        p.snapshots
    );
    assert!(
        p.reduction >= 2.0,
        "deep-msgserver bytes-cloned-per-snapshot regressed: {} cloned vs \
         {} deep is only {:.2}x (gate: >= 2x). Either history leaked back \
         into the eager clone or new O(run-length) state was added to \
         WorldState outside a ChunkedLog.",
        p.bytes_cloned,
        p.bytes_deep,
        p.reduction
    );
    // The curve the BENCH_snapshot_cost.json artifact tracks: cloned bytes
    // must stay an order of magnitude below the history it shares.
    assert!(p.bytes_cloned < p.bytes_deep);
}
