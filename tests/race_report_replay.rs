//! The dd-detect vector-clock race report is a *derived* view of an
//! execution: computing it online during the production run and recomputing
//! it over a strict replay of the sealed JSONL trace must produce the
//! identical report — same races, same order, same metadata. Anything else
//! means either the replay is not the recorded execution or the detector
//! depends on something outside the trace.

mod common;

use common::msgserver;
use debug_determinism::core::{Session, Workload};
use debug_determinism::detect::HbRaceDetector;
use debug_determinism::replay::replay_trace;
use debug_determinism::sim::Observer;
use std::sync::Arc;

#[test]
fn race_report_is_identical_live_and_under_jsonl_replay() {
    let workload: Arc<dyn Workload> = Arc::new(msgserver());
    let session = Session::new(workload);

    // Live: the production incident with the online detector attached.
    let scenario = session.scenario();
    let detector: Vec<Box<dyn Observer>> = vec![Box::new(HbRaceDetector::new())];
    let live = scenario.execute(&scenario.original_spec(), detector);
    let live_races = live
        .observer::<HbRaceDetector>()
        .expect("detector attached")
        .races()
        .to_vec();

    // Replayed: the same incident sealed into the JSONL envelope, then
    // re-executed under the strict schedule policy with a fresh detector.
    let trace = session.record().expect("msgserver records");
    let replayed_scenario = session.scenario_for_trace(&trace.header);
    let report = replay_trace(
        &replayed_scenario,
        &trace,
        vec![Box::new(HbRaceDetector::new())],
    );
    assert!(
        report.identical(),
        "replay diverged: {:?}",
        report.divergence
    );
    let replayed_races = report
        .out
        .observer::<HbRaceDetector>()
        .expect("detector attached")
        .races()
        .to_vec();

    assert!(
        !live_races.is_empty(),
        "msgserver's compaction race must be visible to the detector"
    );
    assert_eq!(
        live_races, replayed_races,
        "the race report must be a pure function of the recorded execution"
    );
}
