//! The persistent snapshot store, end to end through the real `dd` binary:
//!
//! - `dd record --spill` writes a `<trace>.snapshots/` store whose trace
//!   artifact is byte-stable across invocations;
//! - `dd replay --from N` restores the nearest stored snapshot in a *fresh
//!   process* (every `dd` invocation here is its own process, cold from
//!   on-disk artifacts) and reproduces the recorded digest stream for all
//!   four workloads — including the scratch fallback when the run is too
//!   short to have stored anything;
//! - corrupt store artifacts (garbled chunk, truncated manifest, garbled
//!   index) exit `4` and name the offending file, never panic;
//! - `dd snapshots` lists the store.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn dd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dd"))
        .args(args)
        .output()
        .expect("spawn dd")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("dd exited with a code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch file under the system temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dd-snapstore-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn record_spilled(workload: &str, path: &Path) {
    let out = dd(&[
        "record",
        workload,
        "--out",
        path.to_str().unwrap(),
        "--spill",
        "--spill-every",
        "4",
    ]);
    assert_eq!(code(&out), 0, "record --spill failed: {}", stderr(&out));
}

/// The recorded decision count, parsed from the trace artifact.
fn decisions_of(path: &Path) -> u64 {
    debug_determinism::trace::JsonlTrace::load(path)
        .expect("spilled trace parses")
        .footer
        .decisions
}

#[test]
fn replay_from_reproduces_all_four_workloads_from_cold_artifacts() {
    for workload in ["msgserver", "sum", "bufoverflow", "hyperstore"] {
        let trace = scratch(&format!("grid-{workload}.jsonl"));
        record_spilled(workload, &trace);
        let mid = decisions_of(&trace) / 2;
        let out = dd(&[
            "replay",
            trace.to_str().unwrap(),
            "--from",
            &mid.to_string(),
        ]);
        assert_eq!(
            code(&out),
            0,
            "{workload}: replay --from {mid} failed: {}{}",
            stdout(&out),
            stderr(&out)
        );
        assert!(
            stdout(&out).contains("replay identical"),
            "{workload}: {}",
            stdout(&out)
        );
    }
}

#[test]
fn spilled_recording_is_byte_stable_across_invocations() {
    let a = scratch("stable-a.jsonl");
    let b = scratch("stable-b.jsonl");
    record_spilled("msgserver", &a);
    record_spilled("msgserver", &b);
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "dd record --spill must be deterministic"
    );
}

#[test]
fn replay_from_restores_a_mid_run_snapshot_not_scratch() {
    let trace = scratch("midrun.jsonl");
    record_spilled("msgserver", &trace);
    let mid = decisions_of(&trace) / 2;
    let out = dd(&[
        "replay",
        trace.to_str().unwrap(),
        "--from",
        &mid.to_string(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("restored snapshot"),
        "deep spilled run must restore from the store, got: {text}"
    );
}

#[test]
fn corrupt_chunk_exits_four_and_names_the_file() {
    let trace = scratch("corrupt-chunk.jsonl");
    record_spilled("msgserver", &trace);
    let chunks = PathBuf::from(format!("{}.snapshots", trace.display())).join("chunks");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&chunks)
        .expect("chunks dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    assert!(!files.is_empty(), "spilled store has sealed chunks");
    // Which chunks a restore touches depends on which snapshot is nearest,
    // so garble them all: the restore must fail on whichever it reads
    // first, and the error must name that file.
    for victim in &files {
        std::fs::write(victim, "{ not json").unwrap();
    }

    let mid = decisions_of(&trace) / 2;
    let out = dd(&[
        "replay",
        trace.to_str().unwrap(),
        "--from",
        &mid.to_string(),
    ]);
    assert_eq!(
        code(&out),
        4,
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    let err = stderr(&out);
    assert!(
        files
            .iter()
            .any(|f| err.contains(f.file_name().unwrap().to_str().unwrap())),
        "error must name the corrupt chunk file: {err}"
    );
}

#[test]
fn truncated_manifest_exits_four_and_names_the_file() {
    let trace = scratch("corrupt-manifest.jsonl");
    record_spilled("msgserver", &trace);
    let snaps = PathBuf::from(format!("{}.snapshots", trace.display())).join("snaps");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&snaps)
        .expect("snaps dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    for victim in &files {
        let body = std::fs::read(victim).unwrap();
        std::fs::write(victim, &body[..body.len() / 2]).unwrap();
    }
    let mid = decisions_of(&trace) / 2;
    let out = dd(&[
        "replay",
        trace.to_str().unwrap(),
        "--from",
        &mid.to_string(),
    ]);
    assert_eq!(
        code(&out),
        4,
        "stdout: {} stderr: {}",
        stdout(&out),
        stderr(&out)
    );
    assert!(
        stderr(&out).contains(".json"),
        "error must name a manifest file: {}",
        stderr(&out)
    );
}

#[test]
fn garbled_index_exits_four_and_names_store_json() {
    let trace = scratch("corrupt-index.jsonl");
    record_spilled("msgserver", &trace);
    let index = PathBuf::from(format!("{}.snapshots", trace.display())).join("store.json");
    std::fs::write(&index, "]]]").unwrap();
    let out = dd(&["replay", trace.to_str().unwrap(), "--from", "10"]);
    assert_eq!(code(&out), 4, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("store.json"), "{}", stderr(&out));
}

#[test]
fn snapshots_verb_lists_the_store_and_missing_store_exits_four() {
    let trace = scratch("listing.jsonl");
    record_spilled("msgserver", &trace);
    let out = dd(&["snapshots", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("restore-distance bound"), "{text}");
    assert!(text.contains("delta-bytes"), "{text}");
    assert!(text.contains("snapshots,"), "{text}");

    let bare = scratch("no-store.jsonl");
    let out = dd(&["record", "msgserver", "--out", bare.to_str().unwrap()]);
    assert_eq!(code(&out), 0);
    let out = dd(&["snapshots", bare.to_str().unwrap()]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(
        stderr(&out).contains("no snapshot store"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn explore_warm_seeds_from_the_store() {
    let trace = scratch("warm.jsonl");
    record_spilled("msgserver", &trace);
    let out = dd(&[
        "explore",
        trace.to_str().unwrap(),
        "--warm",
        "--executions",
        "8",
        "--depth",
        "4",
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(stdout(&out).contains("warm-start"), "{}", stdout(&out));
}
