//! The `dd` binary's exit-code contract, end to end:
//!
//! - `0` — replay identical to the recording (or `--invariant-only` with no
//!   behavioural drift);
//! - `1` — replay diverged from the recorded digest stream;
//! - `2` — `--invariant-only` found the specification verdict drifted;
//! - `3` — usage error (bad verb, missing operand, unknown workload);
//! - `4` — I/O or parse error on the trace artifact.
//!
//! These run the real binary (`CARGO_BIN_EXE_dd`), so they also pin the
//! user-visible wording the README walkthrough quotes.

use debug_determinism::sim::TaskId;
use debug_determinism::trace::JsonlTrace;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn dd(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dd"))
        .args(args)
        .output()
        .expect("spawn dd")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("dd exited with a code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test scratch file under the target-adjacent temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dd-cli-contract-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(name)
}

fn record_msgserver(path: &Path) {
    let out = dd(&["record", "msgserver", "--out", path.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "record failed: {}", stderr(&out));
}

/// Forces an impossible task choice into the first multi-candidate
/// decision, returning the mutated decision's index. The forced task is
/// never runnable, so a strict replay must stop exactly there.
fn sabotage_decision(path: &Path) -> u64 {
    let mut trace = JsonlTrace::load(path).expect("recorded trace parses");
    let idx = trace
        .decisions
        .iter()
        .position(|d| d.n > 1)
        .expect("msgserver has multi-candidate decisions");
    trace.decisions[idx].chosen = TaskId(9999);
    trace.save(path).expect("save mutated trace");
    idx as u64
}

#[test]
fn faithful_replay_exits_zero() {
    let trace = scratch("faithful.jsonl");
    record_msgserver(&trace);
    let out = dd(&["replay", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("replay identical"));
}

#[test]
fn recording_is_byte_stable_across_invocations() {
    let a = scratch("stable-a.jsonl");
    let b = scratch("stable-b.jsonl");
    record_msgserver(&a);
    record_msgserver(&b);
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same workload + seeds must produce byte-identical golden traces"
    );
}

#[test]
fn mutated_decision_exits_one_at_exactly_that_index() {
    let trace = scratch("mutated.jsonl");
    record_msgserver(&trace);
    let idx = sabotage_decision(&trace);
    let out = dd(&["replay", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "stdout: {}", stdout(&out));
    assert!(
        stdout(&out).contains(&format!("FIRST DIVERGENCE at decision {idx}")),
        "must name the mutated decision; stdout: {}",
        stdout(&out)
    );
}

#[test]
fn snapshot_flag_writes_the_state_diff() {
    let trace = scratch("diffed.jsonl");
    let diff = scratch("diffed.diff.json");
    record_msgserver(&trace);
    let idx = sabotage_decision(&trace);
    let out = dd(&[
        "replay",
        trace.to_str().unwrap(),
        "--snapshot",
        diff.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 1);
    let body = std::fs::read_to_string(&diff).expect("diff file written");
    assert!(body.contains(&format!("\"diverged_at_decision\": {idx}")));
    assert!(body.contains("\"recorded\"") && body.contains("\"replayed\""));
}

#[test]
fn invariant_only_exits_two_on_behavioural_drift() {
    let trace = scratch("drifted.jsonl");
    let out = dd(&["record", "hyperstore", "--out", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "record failed: {}", stderr(&out));
    // The sabotaged schedule stops the replay before the cluster finishes
    // loading: the recorded verdict is `rows-missing`, the truncated
    // replay's is `incomplete` — the verdicts drift.
    sabotage_decision(&trace);
    let out = dd(&["replay", trace.to_str().unwrap(), "--invariant-only"]);
    assert_eq!(code(&out), 2, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("behavioural drift"));
}

#[test]
fn invariant_only_exits_zero_when_behaviour_matches() {
    let trace = scratch("behaved.jsonl");
    record_msgserver(&trace);
    let out = dd(&["replay", trace.to_str().unwrap(), "--invariant-only"]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("behaviour identical"));
}

#[test]
fn usage_errors_exit_three() {
    assert_eq!(code(&dd(&[])), 3);
    assert_eq!(code(&dd(&["frobnicate"])), 3);
    assert_eq!(code(&dd(&["replay"])), 3);
    assert_eq!(code(&dd(&["record", "no-such-workload"])), 3);
    assert_eq!(
        code(&dd(&["promote", "x.jsonl"])),
        3,
        "--emit-test is required"
    );
}

#[test]
fn missing_or_garbage_trace_exits_four() {
    let out = dd(&["replay", "/definitely/not/a/trace.jsonl"]);
    assert_eq!(code(&out), 4);

    let garbage = scratch("garbage.jsonl");
    std::fs::write(&garbage, "this is not a trace\n").unwrap();
    let out = dd(&["replay", garbage.to_str().unwrap()]);
    assert_eq!(code(&out), 4);
    assert!(
        stderr(&out).contains("line 1"),
        "parse errors carry line numbers; stderr: {}",
        stderr(&out)
    );
}

#[test]
fn unknown_trailing_field_exits_four_with_the_line_number() {
    let trace = scratch("unknown-field.jsonl");
    let out = dd(&["record", "sum", "--out", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "record failed: {}", stderr(&out));
    // Append an unknown field to the header line: v1 readers must reject
    // rather than silently drop it.
    let text = std::fs::read_to_string(&trace).unwrap();
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let header = lines[0].strip_suffix('}').expect("header is a JSON object");
    lines[0] = format!("{header},\"junk\":1}}");
    std::fs::write(&trace, lines.join("\n") + "\n").unwrap();

    let out = dd(&["replay", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 4, "stdout: {}", stdout(&out));
    assert!(
        stderr(&out).contains("line 1"),
        "rejection names the offending line; stderr: {}",
        stderr(&out)
    );
}

#[test]
fn model_artifact_record_and_replay_round_trip_through_the_binary() {
    let artifact = scratch("msgserver.msg-order.json");
    let out = dd(&[
        "record",
        "msgserver",
        "--model=msg-order",
        "--out",
        artifact.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "record --model failed: {}", stderr(&out));
    assert!(stdout(&out).contains("model      : msg-order"));

    let out = dd(&["replay", artifact.to_str().unwrap(), "--model"]);
    assert_eq!(code(&out), 0, "stdout: {}", stdout(&out));
    assert!(stdout(&out).contains("satisfied  : true"));
    assert!(stdout(&out).contains("failure reproduced : yes"));
}

#[test]
fn unknown_model_kind_exits_three() {
    let out = dd(&["record", "sum", "--model=frobnicate"]);
    assert_eq!(code(&out), 3);
    assert!(
        stderr(&out).contains("unknown model kind"),
        "stderr: {}",
        stderr(&out)
    );
}

#[test]
fn promote_emits_a_runnable_fixture_pair() {
    let trace = scratch("promote-src.jsonl");
    let out = dd(&["record", "sum", "--out", trace.to_str().unwrap()]);
    assert_eq!(code(&out), 0);

    let dir = scratch("promoted-tests");
    let out = dd(&[
        "promote",
        trace.to_str().unwrap(),
        "--emit-test",
        "--name",
        "promoted_sum_case",
        "--dir",
        dir.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "stderr: {}", stderr(&out));
    let fixture = dir.join("fixtures/promoted_sum_case.jsonl");
    let test = dir.join("promoted_sum_case.rs");
    assert!(fixture.exists() && test.exists());
    JsonlTrace::load(&fixture).expect("emitted fixture is a sealed trace");
    let body = std::fs::read_to_string(&test).unwrap();
    assert!(body.contains("include_str!"));
    assert!(body.contains("fixture_replays_without_divergence"));
}
