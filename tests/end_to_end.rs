//! Cross-crate end-to-end tests: the full record → replay → assess pipeline
//! on every workload under every determinism model, checking the paper's
//! claims about fidelity and overhead orderings.

use debug_determinism::core::{
    evaluate_model, DebugModel, DeterminismModel, FailureModel, InferenceBudget, ModelKind,
    OutputHeavyModel, OutputLiteModel, PerfectModel, RcseConfig, ValueModel, Workload,
};
use debug_determinism::hyperstore::{HyperConfig, HyperstoreWorkload};
use debug_determinism::workloads::{
    BufOverflowWorkload, MsgServerConfig, MsgServerWorkload, SumWorkload,
};

fn rcse_for(w: &dyn Workload, triggers: bool) -> DebugModel {
    let scenario = w.scenario();
    let seeds: Vec<(u64, u64)> = w
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    DebugModel::prepare(
        &scenario,
        &seeds,
        RcseConfig {
            use_triggers: triggers,
            ..RcseConfig::default()
        },
    )
}

/// Exact-reexecution models must reproduce failure and root cause on every
/// workload: DF = 1.
#[test]
fn strong_models_have_df1_everywhere() {
    let budget = InferenceBudget::executions(8);
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let msg = MsgServerWorkload::discover(MsgServerConfig::default(), 64).unwrap();
    let workloads: Vec<&dyn Workload> = vec![&hyper, &msg, &SumWorkload, &BufOverflowWorkload];
    for w in workloads {
        for model in [&PerfectModel as &dyn DeterminismModel, &ValueModel] {
            let (report, _, replay) = evaluate_model(w, model, &budget);
            assert!(
                replay.reproduced_failure,
                "{} on {}: failure not reproduced",
                report.model,
                w.name()
            );
            assert_eq!(
                report.utility.fidelity.df,
                1.0,
                "{} on {}: {:?}",
                report.model,
                w.name(),
                report.utility.fidelity
            );
        }
    }
}

/// Debug determinism achieves DF = 1 on every workload with overhead well
/// below value determinism.
#[test]
fn debug_determinism_is_the_sweet_spot() {
    let budget = InferenceBudget::executions(8);
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let msg = MsgServerWorkload::discover(MsgServerConfig::default(), 64).unwrap();
    // Code-based selection everywhere; the crash trigger stays armed for
    // the overflow workload (it fires once, at the crash — cheap). The
    // always-firing lockset trigger on the hyper-racy message server would
    // degenerate RCSE to full recording (see ABL-2), so the sweet spot
    // there is code-based selection: the schedule log already carries the
    // race.
    let workloads: Vec<(&dyn Workload, bool)> = vec![
        (&hyper, false),
        (&msg, false),
        (&SumWorkload, false),
        (&BufOverflowWorkload, true),
    ];
    for (w, triggers) in workloads {
        let rcse = rcse_for(w, triggers);
        let (debug_report, _, debug_replay) = evaluate_model(w, &rcse, &budget);
        let (value_report, _, _) = evaluate_model(w, &ValueModel, &budget);
        assert!(debug_replay.reproduced_failure, "RCSE on {}", w.name());
        assert_eq!(
            debug_report.utility.fidelity.df,
            1.0,
            "RCSE on {}",
            w.name()
        );
        assert!(
            debug_report.overhead_factor < value_report.overhead_factor,
            "{}: RCSE {:.2}x should beat value {:.2}x",
            w.name(),
            debug_report.overhead_factor,
            value_report.overhead_factor
        );
    }
}

/// Failure determinism records nothing and reproduces the failure, but its
/// fidelity is 1/n whenever alternative root causes exist.
#[test]
fn failure_determinism_fidelity_is_one_over_n() {
    let budget = InferenceBudget::executions(96);
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let msg = MsgServerWorkload::discover(MsgServerConfig::default(), 64).unwrap();

    let (r, _, _) = evaluate_model(&hyper, &FailureModel, &budget);
    assert_eq!(r.overhead_factor, 1.0);
    assert_eq!(r.utility.fidelity.n_causes, 3);
    assert!(
        (r.utility.fidelity.df - 1.0 / 3.0).abs() < 1e-9,
        "{:?}",
        r.utility.fidelity
    );

    let (r, _, _) = evaluate_model(&msg, &FailureModel, &budget);
    assert_eq!(r.utility.fidelity.n_causes, 2);
    assert!(
        (r.utility.fidelity.df - 0.5).abs() < 1e-9,
        "{:?}",
        r.utility.fidelity
    );

    // Single-cause workloads: any failure-reproducing replay has DF 1.
    let (r, _, _) = evaluate_model(&BufOverflowWorkload, &FailureModel, &budget);
    assert_eq!(r.utility.fidelity.n_causes, 1);
    assert_eq!(r.utility.fidelity.df, 1.0);
}

/// The overhead ordering of Fig. 1 holds on the concurrent workloads:
/// perfect > value > output ≥ failure, with RCSE between output and value.
#[test]
fn fig1_overhead_ordering() {
    let budget = InferenceBudget::executions(8);
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let rcse = rcse_for(&hyper, false);

    let overhead = |m: &dyn DeterminismModel| evaluate_model(&hyper, m, &budget).0.overhead_factor;
    let perfect = overhead(&PerfectModel);
    let value = overhead(&ValueModel);
    let heavy = overhead(&OutputHeavyModel);
    let lite = overhead(&OutputLiteModel);
    let fail = overhead(&FailureModel);
    let debug = overhead(&rcse);

    assert!(perfect > value, "perfect {perfect:.2} > value {value:.2}");
    assert!(value > debug, "value {value:.2} > debug {debug:.2}");
    assert!(debug > heavy, "debug {debug:.2} > output-heavy {heavy:.2}");
    assert!(
        heavy >= lite,
        "output-heavy {heavy:.2} >= output-lite {lite:.2}"
    );
    assert!(
        lite > fail || (lite - fail).abs() < 0.2,
        "lite {lite:.2} vs failure {fail:.2}"
    );
    assert_eq!(fail, 1.0);
}

/// Fixed program variants never fail: the root-cause predicates correspond
/// to real fixes (the paper's fix-predicate definition, validated).
#[test]
fn fix_predicates_correspond_to_real_fixes() {
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let msg = MsgServerWorkload::discover(MsgServerConfig::default(), 64).unwrap();
    let workloads: Vec<&dyn Workload> = vec![&hyper, &msg, &SumWorkload, &BufOverflowWorkload];
    for w in workloads {
        let fixed = w.fixed_program().expect("every workload ships its fix");
        let spec = w.spec();
        for seed in 0..6 {
            let p = w.production();
            let cfg = debug_determinism::sim::RunConfig {
                seed,
                max_steps: p.max_steps,
                inputs: p.inputs.clone(),
                env: p.env.clone(),
                ..debug_determinism::sim::RunConfig::default()
            };
            let out = debug_determinism::sim::run_program(
                fixed.as_ref(),
                cfg,
                Box::new(debug_determinism::sim::RandomPolicy::new(seed)),
                vec![],
            );
            let verdict = spec.check(&out.io);
            assert!(
                verdict.is_none(),
                "{} fixed variant failed under seed {seed}: {verdict:?}",
                w.name()
            );
        }
    }
}

/// The model kinds report distinct, stable display names (used in tables).
#[test]
fn model_kind_names_are_stable() {
    let names: Vec<String> = [
        ModelKind::Perfect,
        ModelKind::Value,
        ModelKind::OutputLite,
        ModelKind::OutputHeavy,
        ModelKind::Failure,
        ModelKind::Debug,
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let unique: std::collections::HashSet<_> = names.iter().collect();
    assert_eq!(unique.len(), names.len());
}

/// The §5 "ideal system" sketch: find a witness execution for *every*
/// potential root cause of the production failure.
#[test]
fn all_root_causes_have_witness_executions() {
    let hyper = HyperstoreWorkload::discover(HyperConfig::default(), 200).unwrap();
    let witnesses = debug_determinism::core::find_cause_equivalent_executions(
        &hyper,
        &InferenceBudget::executions(96),
    );
    assert_eq!(witnesses.len(), 3);
    for w in &witnesses {
        assert!(w.witness.is_some(), "no witness for {}", w.cause);
        assert!(w.explored >= 1);
    }
    // Re-executing each witness reproduces the failure through its cause.
    let scenario = hyper.scenario();
    let causes = hyper.root_causes();
    for w in witnesses {
        let spec = w.witness.unwrap();
        let out = scenario.execute(&spec, vec![]);
        let failure = (scenario.failure_of)(&out.io).expect("witness must fail");
        assert_eq!(
            failure.failure_id,
            debug_determinism::hyperstore::ROWS_MISSING
        );
        let trace = debug_determinism::trace::Trace::from_run(&out);
        let ctx = debug_determinism::core::CauseCtx {
            trace: &trace,
            registry: &out.registry,
            io: &out.io,
        };
        let cause = causes.iter().find(|c| c.id == w.cause).unwrap();
        assert!(
            cause.active_in(&ctx),
            "witness for {} does not exhibit it",
            w.cause
        );
    }
}
