//! Persistence contract for determinism-model artifacts:
//!
//! - every [`Artifact`] variant a model records (Perfect, Value, output
//!   schemes, Failure, Debug/RCSE, MsgOrder, RaceComplete) survives a JSON
//!   round-trip bit-for-bit — `dd record --model` writes these documents,
//!   and a replayer fed a reparsed artifact must see exactly what was
//!   recorded;
//! - the v1 JSONL trace envelope rejects unknown trailing fields on any
//!   line, naming the 1-based offending line — the same contract the `dd`
//!   binary's exit-4 path surfaces (see `cli_contract.rs`).

mod common;

use common::{model_suite, scenario_grid};
use debug_determinism::core::{Session, Workload};
use debug_determinism::replay::Artifact;
use debug_determinism::trace::JsonlTrace;
use debug_determinism::workloads::SumWorkload;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Recording any workload under the full model suite and JSON
    /// round-tripping each artifact is the identity. The suite covers every
    /// `Artifact` variant: Perfect, MsgOrder, Value, RaceComplete,
    /// OutputHeavy, OutputLite, Failure and Debug (RCSE).
    #[test]
    fn every_artifact_variant_json_round_trips(
        workload_idx in 0usize..4,
        seed in 0u64..16,
    ) {
        let workloads = common::all_workloads();
        let workload = &workloads[workload_idx];
        let scenarios = scenario_grid(workload.as_ref(), &[seed]);
        let scenario = scenarios.last().expect("grid is non-empty");
        for model in model_suite(workload.as_ref()) {
            let recording = model.record(scenario);
            let json = serde_json::to_string(&recording.artifact)
                .expect("artifact serialises");
            let back: Artifact = serde_json::from_str(&json)
                .expect("serialised artifact parses");
            prop_assert!(
                back == recording.artifact,
                "{} / {:?}: JSON round-trip changed the artifact",
                workload.name(),
                model.kind()
            );
        }
    }
}

/// Injecting one unknown trailing field into any line of a sealed v1 trace
/// makes parsing fail with exactly that 1-based line number — headers,
/// decision lines and the footer alike. This is the library half of the
/// `dd replay` exit-4 contract.
#[test]
fn unknown_trailing_fields_are_rejected_with_the_offending_line_number() {
    let session = Session::new(Arc::new(SumWorkload) as Arc<dyn Workload>);
    let text = session.record().expect("sum records").render();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "trace has at least header + footer");
    for idx in 0..lines.len() {
        let mutated = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == idx {
                    let body = l.trim_end().strip_suffix('}').expect("JSON object line");
                    format!("{body},\"junk\":1}}")
                } else {
                    (*l).to_owned()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        let err = JsonlTrace::parse(&mutated).expect_err("unknown trailing field must be rejected");
        assert_eq!(
            err.line,
            idx + 1,
            "unknown field on line {} misreported: {err}",
            idx + 1
        );
    }
}
