//! The workspace-level determinism regression test — the property this
//! repository's CI exists to protect.
//!
//! Runs the same seeded scenarios twice through `dd-sim` and asserts the
//! serialized traces hash identically, bit for bit. If any nondeterminism
//! leaks into the simulator (hash-map iteration order, host randomness,
//! wall-clock dependence), these tests catch it before it can corrupt every
//! replay-debugging result built on top.

use debug_determinism::detect::HbRaceDetector;
use debug_determinism::hyperstore::{HyperConfig, HyperstoreProgram};
use debug_determinism::replay::{costs, OrderCostObserver, PinSet};
use debug_determinism::sim::{
    resume_program, run_program, CheckpointPlan, Observer, Program, RandomPolicy, RunConfig,
};
use debug_determinism::trace::{InputRecorder, ScheduleRecorder, ValueRecorder};
use debug_determinism::workloads::{
    BufOverflowProgram, BufOverflowWorkload, MsgServerConfig, MsgServerProgram, SumProgram,
};

mod common;

/// FNV-1a over the serialized trace: any divergence anywhere in the event
/// stream changes the hash (delegates to the shared `common::fnv`).
fn trace_hash_with(
    program: &dyn Program,
    cfg: RunConfig,
    policy_seed: u64,
    observers: Vec<Box<dyn Observer>>,
) -> u64 {
    let out = run_program(
        program,
        cfg,
        Box::new(RandomPolicy::new(policy_seed)),
        observers,
    );
    common::trace_hash(&out)
}

fn trace_hash(program: &dyn Program, cfg: RunConfig, policy_seed: u64) -> u64 {
    trace_hash_with(program, cfg, policy_seed, vec![])
}

fn assert_deterministic(name: &str, program: &dyn Program, mk_cfg: impl Fn() -> RunConfig) {
    for seed in [0u64, 1, 7, 42, 1337] {
        let first = trace_hash(program, RunConfig { seed, ..mk_cfg() }, seed);
        let second = trace_hash(program, RunConfig { seed, ..mk_cfg() }, seed);
        assert_eq!(
            first, second,
            "{name}: trace hash diverged between identically-seeded runs (seed {seed})"
        );
    }
}

#[test]
fn sum_trace_hashes_are_reproducible() {
    assert_deterministic("sum", &SumProgram { fixed: false }, RunConfig::default);
}

#[test]
fn msgserver_trace_hashes_are_reproducible() {
    let program = MsgServerProgram {
        cfg: MsgServerConfig::default(),
        fixed: false,
    };
    assert_deterministic("msgserver", &program, RunConfig::default);
}

#[test]
fn hyperstore_trace_hashes_are_reproducible() {
    let cfg = HyperConfig::small();
    let program = HyperstoreProgram::buggy(cfg.clone());
    assert_deterministic("hyperstore", &program, || RunConfig {
        inputs: cfg.input_script(),
        max_steps: 500_000,
        ..RunConfig::default()
    });
}

#[test]
fn bufoverflow_trace_hashes_are_reproducible() {
    let program = BufOverflowProgram { fixed: false };
    assert_deterministic("bufoverflow", &program, || RunConfig {
        inputs: BufOverflowWorkload::production_inputs(),
        max_steps: 50_000,
        ..RunConfig::default()
    });
}

/// The recording fidelities the golden table is checked under: `low`
/// matches RCSE's always-on layer (schedule + inputs), `high` adds
/// value-determinism-grade recording, `msg-order` and `race-complete` are
/// the two order-logging fidelities' recording stacks. Observers charge the
/// wall clock, not the execution clock, so the trace must be bit-identical
/// to the bare run under all of them — recording may never perturb the
/// execution it records.
fn fidelity_observers(level: &str) -> Vec<Box<dyn Observer>> {
    match level {
        "bare" => vec![],
        "low" => vec![
            Box::new(ScheduleRecorder::new(costs::SCHEDULE)),
            Box::new(InputRecorder::new(costs::INPUT)),
        ],
        "high" => vec![
            Box::new(ScheduleRecorder::new(costs::SCHEDULE)),
            Box::new(InputRecorder::new(costs::INPUT)),
            Box::new(ValueRecorder::new(costs::VALUE)),
        ],
        "msg-order" => vec![
            Box::new(OrderCostObserver::new(costs::MSG_ORDER, PinSet::Total)),
            Box::new(InputRecorder::new(costs::INPUT)),
        ],
        "race-complete" => vec![
            Box::new(HbRaceDetector::with_cost(costs::RACE_DETECT_ACCESS)),
            Box::new(OrderCostObserver::new(
                costs::RACE_COMPLETE,
                PinSet::NonLocal,
            )),
            Box::new(InputRecorder::new(costs::INPUT)),
        ],
        other => panic!("unknown fidelity {other}"),
    }
}

/// The golden table: every workload's seed-42 production trace, pinned.
const GOLDEN: &[(&str, u64)] = &[
    ("sum", 0x2111_6735_7344_eceb),
    ("msgserver", 0x5749_569f_767f_d389),
    ("bufoverflow", 0xbbeb_f678_ca4d_9894),
    ("hyperstore", 0x126c_6455_5282_2fcb),
];

/// The seed-42 production configuration for a named golden workload.
fn golden_cfg(name: &str) -> (Box<dyn Fn() -> RunConfig>, Box<dyn Program>) {
    match name {
        "sum" => (
            Box::new(|| RunConfig::with_seed(42)),
            Box::new(SumProgram { fixed: false }),
        ),
        "msgserver" => (
            Box::new(|| RunConfig::with_seed(42)),
            Box::new(MsgServerProgram {
                cfg: MsgServerConfig::default(),
                fixed: false,
            }),
        ),
        "bufoverflow" => (
            Box::new(|| RunConfig {
                seed: 42,
                inputs: BufOverflowWorkload::production_inputs(),
                max_steps: 50_000,
                ..RunConfig::default()
            }),
            Box::new(BufOverflowProgram { fixed: false }),
        ),
        "hyperstore" => {
            let cfg = HyperConfig::small();
            let inputs = cfg.input_script();
            (
                Box::new(move || RunConfig {
                    seed: 42,
                    inputs: inputs.clone(),
                    max_steps: 500_000,
                    ..RunConfig::default()
                }),
                Box::new(HyperstoreProgram::buggy(cfg)),
            )
        }
        other => panic!("unknown workload {other}"),
    }
}

/// The golden trace-hash table: every workload's seed-42 production trace,
/// pinned. Any kernel/driver/scheduling change that perturbs any workload's
/// event stream fails this test loudly, naming the workload and fidelity.
/// If a change is *intentional* (new event kind, cost model change),
/// regenerate the constants with the command in the assertion message.
#[test]
fn golden_trace_hash_table_covers_all_workloads_and_fidelities() {
    let run = |name: &str, level: &str| -> u64 {
        match name {
            "sum" => trace_hash_with(
                &SumProgram { fixed: false },
                RunConfig::with_seed(42),
                42,
                fidelity_observers(level),
            ),
            "msgserver" => trace_hash_with(
                &MsgServerProgram {
                    cfg: MsgServerConfig::default(),
                    fixed: false,
                },
                RunConfig::with_seed(42),
                42,
                fidelity_observers(level),
            ),
            "bufoverflow" => trace_hash_with(
                &BufOverflowProgram { fixed: false },
                RunConfig {
                    seed: 42,
                    inputs: BufOverflowWorkload::production_inputs(),
                    max_steps: 50_000,
                    ..RunConfig::default()
                },
                42,
                fidelity_observers(level),
            ),
            "hyperstore" => {
                let cfg = HyperConfig::small();
                trace_hash_with(
                    &HyperstoreProgram::buggy(cfg.clone()),
                    RunConfig {
                        seed: 42,
                        inputs: cfg.input_script(),
                        max_steps: 500_000,
                        ..RunConfig::default()
                    },
                    42,
                    fidelity_observers(level),
                )
            }
            other => panic!("unknown workload {other}"),
        }
    };
    for &(name, golden) in GOLDEN {
        for level in ["bare", "low", "high", "msg-order", "race-complete"] {
            let actual = run(name, level);
            assert_eq!(
                actual, golden,
                "workload {name:?} at fidelity {level:?}: trace hash {actual:#018x} \
                 does not match the golden {golden:#018x}. A kernel change perturbed \
                 this workload's trace; if intentional, update GOLDEN in \
                 tests/determinism_regression.rs (cargo test golden_trace -- --nocapture \
                 prints actuals)."
            );
        }
        println!("golden ok: {name} {:#018x}", golden);
    }
}

/// The golden table must hold for *snapshot-resumed* runs too: running each
/// workload with checkpointing enabled and resuming from every snapshot
/// must land on the exact pinned hash. Checkpointed execution is only
/// admissible because it is invisible in the trace.
#[test]
fn golden_trace_hash_table_holds_for_snapshot_resumed_runs() {
    let mut total_snapshots = 0usize;
    for &(name, golden) in GOLDEN {
        let (mk_cfg, program) = golden_cfg(name);
        let mut cfg = mk_cfg();
        cfg.checkpoints = Some(CheckpointPlan::new(2, 16));
        let original = run_program(
            program.as_ref(),
            cfg,
            Box::new(RandomPolicy::new(42)),
            vec![],
        );
        let full = common::trace_hash(&original);
        assert_eq!(
            full, golden,
            "workload {name:?}: checkpointing perturbed the production trace"
        );
        // A single-task workload (sum) never hits a multi-candidate
        // decision, so it legitimately produces no snapshots.
        total_snapshots += original.snapshots.len();
        for snap in &original.snapshots {
            let resumed = resume_program(program.as_ref(), mk_cfg(), snap, None, vec![]);
            assert_eq!(
                common::trace_hash(&resumed),
                golden,
                "workload {name:?}: snapshot-resumed run (from decision {}) \
                 does not match the golden hash",
                snap.at_decision()
            );
        }
    }
    assert!(
        total_snapshots > 0,
        "no workload produced a snapshot — the resumed-run rows are vacuous"
    );
}

/// The per-decision enabled-set snapshots (`RunOutput::decision_enabled`)
/// must be identical between a scratch run and every snapshot-resumed run —
/// including the channel-receive entries (`OpDesc::Chan`), which ride the
/// chunked log through snapshot history sharing. A resumed run that
/// reconstructed the pre-snapshot prefix differently, or dropped pending-op
/// descriptors across the resume boundary, would silently skew every
/// enabled-set consumer (DPOR conflict analysis, the order-log pin sets).
#[test]
fn decision_enabled_snapshots_survive_snapshot_resume() {
    use debug_determinism::sim::OpDesc;
    let program = MsgServerProgram {
        cfg: MsgServerConfig::default(),
        fixed: false,
    };
    let mk_cfg = || RunConfig {
        seed: 42,
        checkpoints: Some(CheckpointPlan::new(2, 16)),
        ..RunConfig::default()
    };
    let original = run_program(&program, mk_cfg(), Box::new(RandomPolicy::new(42)), vec![]);
    let scratch: Vec<_> = original.decision_enabled.iter().cloned().collect();
    let chan_entries = scratch
        .iter()
        .flatten()
        .filter(|(_, op)| matches!(op, Some(OpDesc::Chan { .. })))
        .count();
    assert!(
        chan_entries > 0,
        "msgserver must exercise channel receives in its enabled sets — \
         otherwise this regression test is vacuous"
    );
    assert!(
        !original.snapshots.is_empty(),
        "checkpoint plan produced no snapshots — the resumed rows are vacuous"
    );
    for snap in &original.snapshots {
        let resumed = resume_program(
            &program,
            RunConfig {
                seed: 42,
                ..RunConfig::default()
            },
            snap,
            None,
            vec![],
        );
        let resumed_sets: Vec<_> = resumed.decision_enabled.iter().cloned().collect();
        assert_eq!(
            resumed_sets,
            scratch,
            "decision_enabled diverged after resuming from decision {}",
            snap.at_decision()
        );
    }
}

/// The coroutine-engine equivalence property, sampled: any (workload,
/// fidelity, resume point) combination must land on the workload's pinned
/// golden hash, whether the run starts from scratch or from a mid-run
/// snapshot with the fidelity's recording stack attached. The exhaustive
/// scratch matrix lives in `golden_trace_hash_table_covers_all_workloads_
/// and_fidelities`; this property additionally crosses fidelities with
/// snapshot resume, where the engine must rebuild mid-operation coroutines
/// before the observers see a single event.
mod engine_equivalence {
    use super::*;
    use debug_determinism::sim::CheckpointPlan;
    use proptest::prelude::*;

    const LEVELS: &[&str] = &["bare", "low", "high", "msg-order", "race-complete"];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn any_fidelity_and_resume_point_reproduces_the_golden_trace(
            widx in 0usize..4,
            lidx in 0usize..5,
            snap_sel in 0usize..1024,
        ) {
            let (name, golden) = GOLDEN[widx];
            let level = LEVELS[lidx];
            let (mk_cfg, program) = golden_cfg(name);

            // Scratch run under this fidelity's recording stack.
            let scratch = run_program(
                program.as_ref(),
                mk_cfg(),
                Box::new(RandomPolicy::new(42)),
                fidelity_observers(level),
            );
            let h = common::trace_hash(&scratch);
            prop_assert!(
                h == golden,
                "workload {} at fidelity {}: scratch hash {:#018x} != golden {:#018x}",
                name, level, h, golden
            );

            // Snapshot-resumed run under the same stack.
            let mut cfg = mk_cfg();
            cfg.checkpoints = Some(CheckpointPlan::new(2, 16));
            let original = run_program(
                program.as_ref(),
                cfg,
                Box::new(RandomPolicy::new(42)),
                vec![],
            );
            // Single-task workloads (sum) legitimately never snapshot.
            if !original.snapshots.is_empty() {
                let snap = &original.snapshots[snap_sel % original.snapshots.len()];
                let resumed = resume_program(
                    program.as_ref(),
                    mk_cfg(),
                    snap,
                    None,
                    fidelity_observers(level),
                );
                let h = common::trace_hash(&resumed);
                prop_assert!(
                    h == golden,
                    "workload {} at fidelity {} resumed from decision {}: \
                     hash {:#018x} != golden {:#018x}",
                    name, level, snap.at_decision(), h, golden
                );
            }
        }
    }
}

/// Fault schedules are input nondeterminism: a run under an injected crash,
/// partition, or restart schedule must be exactly as reproducible as a clean
/// run, under every recording fidelity. The golden table pins the seed-42
/// buggy-failover trace for each fault-environment candidate — a kernel or
/// fault-plane change that perturbs any of them fails loudly.
mod fault_schedule_determinism {
    use super::*;
    use debug_determinism::hyperstore::failover_env_candidates;
    use proptest::prelude::*;

    /// Seed-42 buggy-failover hashes, one per `failover_env_candidates`
    /// entry (crash, partition-load, crash+restart, clean — in order).
    const FAULT_GOLDEN: &[u64] = &[
        0xcd93_e8dc_90fa_0f69, // crash during migration window
        0x53ae_903e_3bea_b633, // partition during load, heals pre-migration
        0x9083_45ea_c4d1_0ce2, // crash + restart
        0x1fd6_751e_15e6_e155, // clean
    ];

    fn fault_cfg(env_idx: usize) -> RunConfig {
        let cfg = HyperConfig::default();
        RunConfig {
            seed: 42,
            inputs: cfg.input_script(),
            max_steps: 500_000,
            env: failover_env_candidates(&cfg)[env_idx].clone(),
            ..RunConfig::default()
        }
    }

    #[test]
    fn golden_fault_trace_hashes_hold_across_all_fidelities() {
        let cfg = HyperConfig::default();
        let envs = failover_env_candidates(&cfg);
        assert_eq!(
            envs.len(),
            FAULT_GOLDEN.len(),
            "failover_env_candidates grew: extend FAULT_GOLDEN"
        );
        let program = HyperstoreProgram::buggy_failover(cfg);
        for (i, &golden) in FAULT_GOLDEN.iter().enumerate() {
            for level in ["bare", "low", "high", "msg-order", "race-complete"] {
                let actual = trace_hash_with(&program, fault_cfg(i), 42, fidelity_observers(level));
                assert_eq!(
                    actual, golden,
                    "fault env candidate {i} at fidelity {level:?}: trace hash \
                     {actual:#018x} does not match the golden {golden:#018x}. \
                     If the change is intentional, update FAULT_GOLDEN with \
                     the actual hash printed here."
                );
            }
            println!("fault golden ok: candidate {i} {golden:#018x}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any (seed, fault schedule, build, fidelity) records the same
        /// trace twice — and the recording stack never perturbs it.
        #[test]
        fn any_fault_schedule_replays_byte_identically(
            seed in 0u64..64,
            env_sel in 0usize..1024,
            build_sel in 0usize..2,
            lidx in 0usize..5,
        ) {
            let cfg = HyperConfig::default();
            let envs = failover_env_candidates(&cfg);
            let env_idx = env_sel % envs.len();
            let fixed = build_sel == 1;
            let program: Box<dyn Program> = if fixed {
                Box::new(HyperstoreProgram::fixed_failover(cfg.clone()))
            } else {
                Box::new(HyperstoreProgram::buggy_failover(cfg.clone()))
            };
            let mk_cfg = || RunConfig {
                seed,
                inputs: cfg.input_script(),
                max_steps: 500_000,
                env: envs[env_idx].clone(),
                ..RunConfig::default()
            };
            let level = ["bare", "low", "high", "msg-order", "race-complete"][lidx];
            let bare = trace_hash(program.as_ref(), mk_cfg(), seed);
            let again = trace_hash(program.as_ref(), mk_cfg(), seed);
            prop_assert!(
                bare == again,
                "fault run diverged between identical runs (seed {}, env {})",
                seed, env_idx
            );
            let observed = trace_hash_with(
                program.as_ref(),
                mk_cfg(),
                seed,
                fidelity_observers(level),
            );
            prop_assert!(
                bare == observed,
                "fidelity {} perturbed a fault-schedule trace (seed {}, env {})",
                level, seed, env_idx
            );
        }
    }
}

/// Different seeds must be able to produce different schedules — otherwise
/// the "same seed ⇒ same trace" checks above would pass vacuously.
#[test]
fn different_seeds_change_the_racy_schedule() {
    let cfg = HyperConfig::small();
    let program = HyperstoreProgram::buggy(cfg.clone());
    let hashes: Vec<u64> = (0..8)
        .map(|seed| {
            let run_cfg = RunConfig {
                seed,
                inputs: cfg.input_script(),
                max_steps: 500_000,
                ..RunConfig::default()
            };
            trace_hash(&program, run_cfg, seed)
        })
        .collect();
    let distinct: std::collections::BTreeSet<u64> = hashes.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "8 different seeds all produced identical traces: {hashes:?}"
    );
}
