//! The workspace-level determinism regression test — the property this
//! repository's CI exists to protect.
//!
//! Runs the same seeded scenarios twice through `dd-sim` and asserts the
//! serialized traces hash identically, bit for bit. If any nondeterminism
//! leaks into the simulator (hash-map iteration order, host randomness,
//! wall-clock dependence), these tests catch it before it can corrupt every
//! replay-debugging result built on top.

use debug_determinism::hyperstore::{HyperConfig, HyperstoreProgram};
use debug_determinism::sim::{run_program, Program, RandomPolicy, RunConfig};
use debug_determinism::trace::Trace;
use debug_determinism::workloads::{MsgServerConfig, MsgServerProgram, SumProgram};

/// FNV-1a over the serialized trace: any divergence anywhere in the event
/// stream changes the hash.
fn trace_hash(program: &dyn Program, cfg: RunConfig, policy_seed: u64) -> u64 {
    let out = run_program(
        program,
        cfg,
        Box::new(RandomPolicy::new(policy_seed)),
        vec![],
    );
    let json = serde_json::to_string(&Trace::from_run(&out)).expect("trace serializes");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn assert_deterministic(name: &str, program: &dyn Program, mk_cfg: impl Fn() -> RunConfig) {
    for seed in [0u64, 1, 7, 42, 1337] {
        let first = trace_hash(program, RunConfig { seed, ..mk_cfg() }, seed);
        let second = trace_hash(program, RunConfig { seed, ..mk_cfg() }, seed);
        assert_eq!(
            first, second,
            "{name}: trace hash diverged between identically-seeded runs (seed {seed})"
        );
    }
}

#[test]
fn sum_trace_hashes_are_reproducible() {
    assert_deterministic("sum", &SumProgram { fixed: false }, RunConfig::default);
}

#[test]
fn msgserver_trace_hashes_are_reproducible() {
    let program = MsgServerProgram {
        cfg: MsgServerConfig::default(),
        fixed: false,
    };
    assert_deterministic("msgserver", &program, RunConfig::default);
}

#[test]
fn hyperstore_trace_hashes_are_reproducible() {
    let cfg = HyperConfig::small();
    let program = HyperstoreProgram::buggy(cfg.clone());
    assert_deterministic("hyperstore", &program, || RunConfig {
        inputs: cfg.input_script(),
        max_steps: 500_000,
        ..RunConfig::default()
    });
}

/// Different seeds must be able to produce different schedules — otherwise
/// the "same seed ⇒ same trace" checks above would pass vacuously.
#[test]
fn different_seeds_change_the_racy_schedule() {
    let cfg = HyperConfig::small();
    let program = HyperstoreProgram::buggy(cfg.clone());
    let hashes: Vec<u64> = (0..8)
        .map(|seed| {
            let run_cfg = RunConfig {
                seed,
                inputs: cfg.input_script(),
                max_steps: 500_000,
                ..RunConfig::default()
            };
            trace_hash(&program, run_cfg, seed)
        })
        .collect();
    let distinct: std::collections::BTreeSet<u64> = hashes.iter().copied().collect();
    assert!(
        distinct.len() > 1,
        "8 different seeds all produced identical traces: {hashes:?}"
    );
}
