//! Property tests for the JSONL trace envelope: rendering is a bijection on
//! sealed traces (record → render → parse → render is byte-identical), and
//! damaged artifacts — truncated, garbage-injected, or trailing-junk — are
//! rejected with the offending line number.

use debug_determinism::sim::{
    run_program, Builder, ChanClass, InputScript, Program, RandomPolicy, RunConfig,
};
use debug_determinism::trace::{JsonlTrace, TraceHeader};
use proptest::prelude::*;

/// A parameterised racy counter: `workers` tasks each incrementing
/// `iters` times — enough shape variety to exercise every envelope field.
struct RacyCounter {
    workers: u32,
    iters: i64,
}

impl Program for RacyCounter {
    fn name(&self) -> &'static str {
        "prop-jsonl-counter"
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let total = b.var("total", 0i64);
        let out = b.out_port("result");
        let done = b.channel::<i64>("done", ChanClass::Local);
        let n = self.workers;
        let iters = self.iters;
        for i in 0..n {
            b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                for _ in 0..iters {
                    let v = ctx.read(&total, "w::read").await?;
                    ctx.write(&total, v + 1, "w::write").await?;
                }
                ctx.send(&done, 1, "w::done").await
            });
        }
        b.spawn("reporter", "main", move |mut ctx| async move {
            for _ in 0..n {
                ctx.recv(&done, "r::recv").await?;
            }
            let v = ctx.read(&total, "r::read").await?;
            ctx.output(out, v, "r::out").await
        });
    }
}

/// Records one hashed run and seals it into the JSONL envelope.
fn record(workers: u32, iters: i64, seed: u64, sched_seed: u64) -> JsonlTrace {
    let cfg = RunConfig {
        seed,
        max_steps: 100_000,
        hash_decisions: true,
        ..RunConfig::default()
    };
    let out = run_program(
        &RacyCounter { workers, iters },
        cfg,
        Box::new(RandomPolicy::new(sched_seed)),
        vec![],
    );
    let header = TraceHeader::new(
        "prop-jsonl-counter",
        seed,
        sched_seed,
        100_000,
        InputScript::new(),
        debug_determinism::sim::EnvConfig::clean(),
    );
    JsonlTrace::from_run(header, &out).expect("hashed run seals")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// render ∘ parse ∘ render is the identity on rendered traces, and the
    /// parsed artifact preserves the schedule and digest streams.
    #[test]
    fn render_parse_render_is_byte_identical(
        workers in 1u32..4,
        iters in 1i64..6,
        seed in 0u64..500,
        sched_seed in 0u64..500,
    ) {
        let trace = record(workers, iters, seed, sched_seed);
        let text = trace.render();
        let reparsed = JsonlTrace::parse(&text).expect("rendered trace parses");
        prop_assert_eq!(&text, &reparsed.render());
        prop_assert_eq!(trace.hashes(), reparsed.hashes());
        prop_assert_eq!(
            trace.schedule_log().decisions.len(),
            reparsed.schedule_log().decisions.len()
        );
        prop_assert_eq!(trace.footer.final_hash, reparsed.footer.final_hash);
    }

    /// Dropping the footer line (a torn write) is rejected as truncation.
    #[test]
    fn truncated_trace_is_rejected(
        seed in 0u64..500,
        sched_seed in 0u64..500,
    ) {
        let text = record(2, 3, seed, sched_seed).render();
        let without_footer: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n")
        };
        let err = JsonlTrace::parse(&without_footer).expect_err("must reject");
        prop_assert_eq!(err.line, 0);
        prop_assert!(err.msg.contains("missing footer"), "{}", err.msg);
    }

    /// A garbage line in the middle is rejected with that 1-based line
    /// number; junk appended after the footer names the trailing line.
    #[test]
    fn garbage_lines_are_rejected_with_line_numbers(
        seed in 0u64..500,
        sched_seed in 0u64..500,
        junk_pick in 0usize..4,
    ) {
        const JUNK: [&str; 4] = ["not json", "{", "{\"t\":\"???\"", "]]]"];
        let junk = JUNK[junk_pick].to_owned();
        let text = record(2, 3, seed, sched_seed).render();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let n = lines.len();

        // Corrupt a line in the middle (the first decision line).
        let mut corrupted = lines.clone();
        corrupted[1] = junk.clone();
        let err = JsonlTrace::parse(&corrupted.join("\n")).expect_err("must reject");
        prop_assert_eq!(err.line, 2);

        // Append junk after the sealed footer.
        lines.push(junk);
        let err = JsonlTrace::parse(&lines.join("\n")).expect_err("must reject");
        prop_assert_eq!(err.line, n + 1);
    }

    /// Reordered decision indices break the envelope's contiguity seal.
    #[test]
    fn out_of_order_decisions_are_rejected(
        seed in 0u64..500,
        sched_seed in 0u64..500,
    ) {
        let mut trace = record(3, 4, seed, sched_seed);
        prop_assert!(trace.decisions.len() >= 2, "3 racing tasks always branch");
        trace.decisions.swap(0, 1);
        let err = JsonlTrace::parse(&trace.render()).expect_err("must reject");
        prop_assert!(err.line >= 2, "the offending decision line is named");
        prop_assert!(err.msg.contains("out of order"), "{}", err.msg);
    }
}
