//! The ABL-11 wall-clock acceptance gate, run by the perf-smoke CI job
//! with `DD_PERF_GATE=1` in release mode.
//!
//! Two claims from the coroutine-engine PR:
//!
//! - a 10^5-task spawn/exit storm completes (tasks are heap state
//!   machines, not OS threads), and the storm curve stays near-linear —
//!   the driver scans O(live) tasks per step, not O(ever spawned);
//! - the ABL-7 deep-msgserver checkpointed DFS runs ≥ 1.5× faster than
//!   the committed thread-per-task baseline on a single core.
//!
//! Wall-clock claims stay out of the regular `test` job per the PR-4
//! convention (shared runners make them advisory): without `DD_PERF_GATE`
//! — or in debug builds, whose wall clocks say nothing about the release
//! baseline — the test is a no-op. The deterministic half of the scale
//! claim (storm completion, typed `TaskLimit`) gates unconditionally in
//! `crates/sim/tests/task_scale.rs`.

use dd_bench::{task_scale_sweep, THREAD_ENGINE_DEEP_MSGSERVER_WALL_MS};

#[test]
fn abl11_task_scale_meets_the_wall_clock_gate() {
    if std::env::var_os("DD_PERF_GATE").is_none() || cfg!(debug_assertions) {
        eprintln!("DD_PERF_GATE unset or debug build — ABL-11 wall-clock gate skipped");
        return;
    }
    let points = task_scale_sweep(&[1_000, 10_000, 100_000]);

    let storms: Vec<_> = points.iter().filter(|p| p.row == "spawn-storm").collect();
    assert_eq!(storms.len(), 3, "storm curve missing rows");
    for p in &storms {
        assert!(
            p.completed,
            "spawn-storm at {} tasks did not complete cleanly",
            p.tasks
        );
    }
    // 100× the tasks must not cost more than ~quadratic-detecting slack
    // over 100× the time: a O(ever-spawned) scan would be ~100× worse.
    let (small, big) = (storms[0], storms[2]);
    let per_task_small = small.wall_ms.max(1) as f64 / small.tasks as f64;
    let per_task_big = big.wall_ms.max(1) as f64 / big.tasks as f64;
    assert!(
        per_task_big <= per_task_small * 10.0,
        "storm curve bent: {:.4} ms/task at {} vs {:.4} ms/task at {} — \
         the scheduling scan is no longer O(live)",
        per_task_big,
        big.tasks,
        per_task_small,
        small.tasks
    );

    let deep = points
        .iter()
        .find(|p| p.row == "deep-msgserver-checkpointed")
        .expect("deep msgserver row");
    assert!(deep.completed, "deep walk found no failures");
    let speedup = deep.speedup_vs_baseline.expect("deep row carries baseline");
    assert!(
        speedup >= 1.5,
        "deep-msgserver checkpointed DFS: {} ms vs {} ms thread-engine \
         baseline is only {:.2}x (gate: >= 1.5x single-core)",
        deep.wall_ms,
        THREAD_ENGINE_DEEP_MSGSERVER_WALL_MS,
        speedup
    );
}
