//! Workspace-level snapshot-determinism suite: on all four paper workloads,
//! across the conformance seed grid, a run resumed from *any* checkpoint
//! must reproduce the uninterrupted run exactly — identical trace hash and
//! identical failure verdict — while inheriting (not re-executing) the
//! pre-snapshot work. This is the contract the fork-based DFS, the ABL-7
//! table and the RCSE checkpointed fallback all stand on.

mod common;

use common::{all_workloads, trace_hash, SEED_GRID};
use debug_determinism::core::RunSetup;
use debug_determinism::sim::{
    resume_program, run_program, CheckpointPlan, RandomPolicy, RunConfig,
};

fn run_cfg(setup: &RunSetup, plan: Option<CheckpointPlan>) -> RunConfig {
    RunConfig {
        seed: setup.seed,
        max_steps: setup.max_steps,
        inputs: setup.inputs.clone(),
        env: setup.env.clone(),
        checkpoints: plan,
        ..RunConfig::default()
    }
}

/// Snapshot after k decisions, restore, re-run ⇒ identical trace hash and
/// identical failure set as the uninterrupted run — every workload, every
/// grid seed, every snapshot depth the run produced.
#[test]
fn snapshot_restore_rerun_is_identity_on_all_workloads_and_seeds() {
    for workload in all_workloads() {
        let spec = workload.spec();
        let base = workload.production();
        let mut setups = vec![base.clone()];
        for &seed in SEED_GRID {
            setups.push(RunSetup {
                seed,
                sched_seed: seed.wrapping_mul(31).wrapping_add(7),
                ..base.clone()
            });
        }
        let program = workload.program();
        for setup in &setups {
            let plan = CheckpointPlan::new(2, 24);
            let original = run_program(
                program.as_ref(),
                run_cfg(setup, Some(plan)),
                Box::new(RandomPolicy::new(setup.sched_seed)),
                vec![],
            );
            let want_hash = trace_hash(&original);
            let want_failure = spec.check(&original.io).map(|f| f.failure_id);
            for snap in &original.snapshots {
                let resumed =
                    resume_program(program.as_ref(), run_cfg(setup, None), snap, None, vec![]);
                let label = format!(
                    "{} seed {} snapshot@{}",
                    workload.name(),
                    setup.seed,
                    snap.at_decision()
                );
                assert_eq!(trace_hash(&resumed), want_hash, "{label}: trace diverged");
                assert_eq!(
                    resumed.io, original.io,
                    "{label}: observable behaviour diverged"
                );
                assert_eq!(
                    spec.check(&resumed.io).map(|f| f.failure_id),
                    want_failure,
                    "{label}: failure verdict diverged"
                );
                assert_eq!(resumed.stats.steps, original.stats.steps, "{label}");
                assert_eq!(
                    resumed.stats.resumed_steps,
                    snap.steps(),
                    "{label}: inherited-work accounting wrong"
                );
            }
        }
    }
}
