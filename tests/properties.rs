//! Cross-crate property-based tests: determinism, replay round trips, and
//! store invariants under arbitrary parameters.

use debug_determinism::detect::HbRaceDetector;
use debug_determinism::hyperstore::{check_run, HyperConfig, HyperstoreProgram, MigrationStep};
use debug_determinism::sim::{
    run_program, Builder, ChanClass, Program, RandomPolicy, RecordedDecision, ReplayPolicy,
    RunConfig, SimData, Value,
};
use debug_determinism::trace::{Trace, ValueLog};
use proptest::prelude::*;

/// A parameterised racy counter: `workers` tasks each incrementing
/// `iters` times.
struct RacyCounter {
    workers: u32,
    iters: i64,
}

impl Program for RacyCounter {
    fn name(&self) -> &'static str {
        "prop-racy-counter"
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let total = b.var("total", 0i64);
        let out = b.out_port("result");
        let done = b.channel::<i64>("done", ChanClass::Local);
        let n = self.workers;
        let iters = self.iters;
        for i in 0..n {
            b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                for _ in 0..iters {
                    let v = ctx.read(&total, "w::read").await?;
                    ctx.write(&total, v + 1, "w::write").await?;
                }
                ctx.send(&done, 1, "w::done").await
            });
        }
        b.spawn("reporter", "main", move |mut ctx| async move {
            for _ in 0..n {
                ctx.recv(&done, "r::recv").await?;
            }
            let v = ctx.read(&total, "r::read").await?;
            ctx.output(out, v, "r::out").await
        });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ bit-identical trace, for arbitrary program shapes.
    #[test]
    fn runs_are_deterministic(workers in 1u32..4, iters in 1i64..8, seed in 0u64..1000) {
        let run = || run_program(
            &RacyCounter { workers, iters },
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        let a = run();
        let b = run();
        prop_assert_eq!(a.trace(), b.trace());
        prop_assert_eq!(a.io, b.io);
        prop_assert_eq!(a.stats, b.stats);
    }

    /// Replaying the recorded decision stream reproduces the execution
    /// exactly, for arbitrary program shapes and seeds.
    #[test]
    fn schedule_replay_round_trips(workers in 1u32..4, iters in 1i64..8, seed in 0u64..1000) {
        let p = RacyCounter { workers, iters };
        let original = run_program(
            &p,
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        let decisions: Vec<RecordedDecision> = original
            .decisions
            .iter()
            .map(|d| RecordedDecision { kind: d.kind, chosen: d.chosen })
            .collect();
        let replay = run_program(
            &p,
            RunConfig::with_seed(seed),
            Box::new(ReplayPolicy::strict(decisions)),
            vec![],
        );
        prop_assert_eq!(original.trace(), replay.trace());
        prop_assert_eq!(original.io, replay.io);
    }

    /// Feeding the value log back reproduces each task's observable
    /// behaviour under a different schedule, for arbitrary shapes.
    #[test]
    fn value_feed_round_trips(workers in 2u32..4, iters in 1i64..6, seed in 0u64..500) {
        let p = RacyCounter { workers, iters };
        let original = run_program(
            &p,
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        let log = ValueLog::from_trace(&Trace::from_run(&original));
        let (cursor, _stats) = log.into_cursor();
        let replay = run_program(
            &p,
            RunConfig {
                nondet_override: Some(Box::new(cursor)),
                ..RunConfig::with_seed(seed.wrapping_add(999))
            },
            Box::new(RandomPolicy::new(seed.wrapping_add(7777))),
            vec![],
        );
        // The reporter's read is fed from the log: same final total.
        prop_assert_eq!(
            original.io.outputs_on("result"),
            replay.io.outputs_on("result")
        );
    }

    /// The fixed hyperstore build never loses rows, for arbitrary migration
    /// plans and schedules.
    #[test]
    fn fixed_store_is_linearizable_under_migrations(
        seed in 0u64..64,
        mig1 in 40u64..200,
        mig2 in 200u64..400,
        r1 in 0u32..4,
        r2 in 0u32..4,
    ) {
        let cfg = HyperConfig {
            migrations: vec![
                MigrationStep { time: mig1, range: r1 },
                MigrationStep { time: mig2, range: r2 },
            ],
            ..HyperConfig::small()
        };
        let inputs = cfg.input_script();
        let failure = check_run(&HyperstoreProgram::fixed(cfg), seed, &inputs);
        prop_assert!(failure.is_none(), "fixed build lost rows: {:?}", failure);
    }

    /// Lock-protected counters never race and never lose updates, for
    /// arbitrary shapes (the HB detector's soundness on real executions).
    #[test]
    fn locked_counter_is_race_free(workers in 1u32..4, iters in 1i64..6, seed in 0u64..500) {
        struct Locked { workers: u32, iters: i64 }
        impl Program for Locked {
            fn name(&self) -> &'static str { "prop-locked" }
            fn setup(&self, b: &mut Builder<'_>) {
                let total = b.var("total", 0i64);
                let m = b.mutex("m");
                let out = b.out_port("result");
                let done = b.channel::<i64>("done", ChanClass::Local);
                let n = self.workers;
                let iters = self.iters;
                for i in 0..n {
                    b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                        for _ in 0..iters {
                            ctx.lock(m, "w::lock").await?;
                            let v = ctx.read(&total, "w::read").await?;
                            ctx.write(&total, v + 1, "w::write").await?;
                            ctx.unlock(m, "w::unlock").await?;
                        }
                        ctx.send(&done, 1, "w::done").await
                    });
                }
                b.spawn("reporter", "main", move |mut ctx| async move {
                    for _ in 0..n {
                        ctx.recv(&done, "r::recv").await?;
                    }
                    let v = ctx.read(&total, "r::read").await?;
                    ctx.output(out, v, "r::out").await
                });
            }
        }
        let p = Locked { workers, iters };
        let out = run_program(
            &p,
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        let races = HbRaceDetector::analyze(&Trace::from_run(&out));
        prop_assert!(races.is_empty(), "false positive: {:?}", races);
        prop_assert_eq!(
            out.io.outputs_on("result")[0].as_int(),
            Some(workers as i64 * iters)
        );
    }

    /// Values survive a serde round trip, for arbitrary nested shapes.
    #[test]
    fn value_serde_round_trips(ints in prop::collection::vec(any::<i64>(), 0..8), s in ".{0,24}") {
        let v = Value::List(vec![
            ints.clone().into_value(),
            Value::Str(s),
            Value::Bytes(ints.iter().map(|&i| i as u8).collect()),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(v, back);
    }
}
