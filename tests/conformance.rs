//! Cross-model conformance suite: the paper's *semantic* invariants,
//! checked for every determinism model over every workload and a seed grid.
//!
//! What CI enforces here, beyond trace-hash stability:
//!
//! - **The fidelity lattice** (perfect ⊨ value ⊨ output ⊨ failure): each
//!   model's satisfied artifact must imply every weaker model's guarantee —
//!   a perfect replay is value-identical, a divergence-free value replay
//!   reproduces the observable output, an output-matched replay reproduces
//!   the output log, and all of the heavy artifacts imply failure
//!   reproduction. The §2 sum trap (output-lite reproducing "5" via 1+4) is
//!   pinned as the deliberate exception that motivates the paper.
//! - **Replayed-failure equivalence**: a replay that claims to reproduce
//!   the failure must carry the original failure id (or agree the run
//!   passed).
//! - **Metric ranges and budget monotonicity**: DF ∈ [0,1], DE ≥ 0,
//!   DU = DF·DE, and search-based debugging efficiency behaves sanely as
//!   the inference budget grows.
//! - **Partial-order reduction soundness**: at the same branching depth,
//!   `SearchStrategy::Dpor` finds exactly the failure set exhaustive
//!   enumeration finds, executing at most half the interleavings on the
//!   msgserver workload (and never more on any workload).

mod common;

use common::{all_workloads, model_suite, msgserver, output_multisets, scenario_grid, SEED_GRID};
use debug_determinism::core::{
    debugging_efficiency, debugging_utility, DeterminismModel, FailureModel, MsgOrderModel,
    OutputHeavyModel, OutputLiteModel, PerfectModel, RaceCompleteModel, ValueModel, Workload,
};
use debug_determinism::replay::{enumerate_failures, InferenceBudget, ModelKind, SearchStrategy};
use debug_determinism::trace::OutputLog;
use debug_determinism::workloads::SumWorkload;

#[test]
fn fidelity_lattice_and_metrics_hold_for_every_model_workload_and_seed() {
    let budget = InferenceBudget::executions(48);
    for workload in all_workloads() {
        let models = model_suite(workload.as_ref());
        let causes = workload.root_causes();
        for (variant, scenario) in scenario_grid(workload.as_ref(), SEED_GRID)
            .iter()
            .enumerate()
        {
            for model in &models {
                let recording = model.record(scenario);
                let replay = model.replay(scenario, &recording, &budget);
                let utility = debugging_utility(&causes, &recording, &replay);
                let label = format!(
                    "{} / {:?} / seed-variant {variant}",
                    workload.name(),
                    model.kind()
                );

                // Metric ranges.
                assert!(
                    (0.0..=1.0).contains(&utility.fidelity.df),
                    "{label}: DF {} out of [0,1]",
                    utility.fidelity.df
                );
                assert!(utility.de >= 0.0, "{label}: DE {} negative", utility.de);
                assert!(
                    (utility.du - utility.fidelity.df * utility.de).abs() < 1e-9,
                    "{label}: DU {} is not DF × DE",
                    utility.du
                );

                // Replayed-failure equivalence.
                if replay.reproduced_failure {
                    match (&recording.original.failure, &replay.failure) {
                        (Some(orig), Some(rep)) => assert_eq!(
                            orig.failure_id, rep.failure_id,
                            "{label}: reproduced_failure with different failure ids"
                        ),
                        (None, None) => {}
                        (orig, rep) => panic!(
                            "{label}: reproduced_failure but verdicts disagree \
                             (original {orig:?}, replay {rep:?})"
                        ),
                    }
                }

                // The fidelity lattice, edge by edge.
                match model.kind() {
                    ModelKind::Perfect => {
                        assert!(
                            replay.artifact_satisfied,
                            "{label}: perfect replay diverged"
                        );
                        assert_eq!(
                            replay.io, recording.original.io,
                            "{label}: perfect replay must be value-identical"
                        );
                        assert!(
                            replay.reproduced_failure,
                            "{label}: perfect ⊨ failure violated"
                        );
                    }
                    ModelKind::Value => {
                        if replay.value_divergences == 0 {
                            assert_eq!(
                                output_multisets(&replay.io),
                                output_multisets(&recording.original.io),
                                "{label}: divergence-free value replay must reproduce \
                                 the observable output (value ⊨ output)"
                            );
                            assert!(
                                replay.reproduced_failure,
                                "{label}: value ⊨ failure violated"
                            );
                        }
                    }
                    ModelKind::OutputHeavy => {
                        if replay.artifact_satisfied {
                            assert!(
                                OutputLog::from_io(&recording.original.io).matches(&replay.io),
                                "{label}: satisfied output artifact without matching outputs"
                            );
                            // Inputs were recorded too, so the whole I/O
                            // relation — and with it the failure verdict —
                            // is pinned.
                            assert!(
                                replay.reproduced_failure,
                                "{label}: output+inputs ⊨ failure violated"
                            );
                        }
                    }
                    ModelKind::OutputLite => {
                        if replay.artifact_satisfied {
                            assert!(
                                OutputLog::from_io(&recording.original.io).matches(&replay.io),
                                "{label}: satisfied output artifact without matching outputs"
                            );
                            // No failure implication: the §2 sum trap below
                            // is exactly the counterexample.
                        }
                    }
                    ModelKind::Failure => {
                        assert!(
                            !replay.artifact_satisfied || replay.reproduced_failure,
                            "{label}: satisfied failure artifact must reproduce the failure"
                        );
                    }
                    ModelKind::MsgOrder => {
                        // The total grant order is the only time-faithful
                        // pin set under the per-operation clock, so guided
                        // replay is exact on every workload: the order log
                        // must be consumed cleanly and the replay must be
                        // value-identical (msg-order ⊨ value ⊨ failure).
                        assert!(
                            replay.artifact_satisfied,
                            "{label}: msg-order guided replay diverged"
                        );
                        assert_eq!(
                            replay.io, recording.original.io,
                            "{label}: msg-order replay must be value-identical"
                        );
                        assert!(
                            replay.reproduced_failure,
                            "{label}: msg-order ⊨ failure violated"
                        );
                    }
                    ModelKind::RaceComplete => {
                        // The binding Guo-et-al. claim: whatever path the
                        // replayer took (guided, DPOR prefix search, or
                        // outcome feeding), the recorded failure verdict is
                        // reproduced on every workload and seed.
                        assert!(
                            replay.reproduced_failure,
                            "{label}: race-complete must match Perfect's failure set"
                        );
                        // And a satisfied artifact means the racing-access
                        // outcomes were honoured, which pins observable I/O
                        // on these workloads.
                        if replay.artifact_satisfied {
                            assert_eq!(
                                output_multisets(&replay.io),
                                output_multisets(&recording.original.io),
                                "{label}: satisfied race-complete artifact with drifted outputs"
                            );
                        }
                    }
                    ModelKind::Debug => {
                        // Selective recording carries no unconditional
                        // lattice guarantee; the replay must still terminate
                        // with a coherent report.
                        assert!(
                            replay.replay_ticks > 0,
                            "{label}: debug replay did not execute"
                        );
                    }
                }
            }
        }
    }
}

/// Lattice placement on the *recording-cost* axis: the two new models sit
/// strictly between the heavyweight recorders and the search-only ones.
///
/// - **MsgOrder** is replay-exact everywhere (asserted in the lattice test
///   above) while recording strictly fewer bytes than Value — and than
///   Perfect — on the message-passing workloads. Its separation from
///   Perfect is *cost*, not fidelity: RLE task runs instead of
///   per-decision candidate sets and CREW ownership transfers.
/// - **RaceComplete** never records more than Perfect, and records
///   strictly less as soon as the workload has any scheduling decisions
///   (on the race-free, zero-decision workloads both bottom out at the
///   input log and tie). Failure-set parity with Perfect on all four
///   workloads is asserted in the lattice test above.
#[test]
fn new_models_sit_between_value_and_perfect_on_the_recording_cost_axis() {
    for workload in all_workloads() {
        let message_passing = matches!(workload.name(), "msgserver-drops" | "hyperstore-issue63");
        for (variant, scenario) in scenario_grid(workload.as_ref(), SEED_GRID)
            .iter()
            .enumerate()
        {
            let label = format!("{} / seed-variant {variant}", workload.name());
            let perfect = PerfectModel.record(scenario);
            let value = ValueModel.record(scenario);
            let msg = MsgOrderModel.record(scenario);
            let race = RaceCompleteModel.record(scenario);

            assert!(
                race.log.bytes <= perfect.log.bytes,
                "{label}: race-complete recorded {} bytes, perfect {}",
                race.log.bytes,
                perfect.log.bytes
            );
            if message_passing {
                assert!(
                    msg.log.bytes < value.log.bytes,
                    "{label}: msg-order recorded {} bytes, value {}",
                    msg.log.bytes,
                    value.log.bytes
                );
                assert!(
                    msg.log.bytes < perfect.log.bytes,
                    "{label}: msg-order recorded {} bytes, perfect {}",
                    msg.log.bytes,
                    perfect.log.bytes
                );
                assert!(
                    race.log.bytes < perfect.log.bytes,
                    "{label}: race-complete recorded {} bytes, perfect {}",
                    race.log.bytes,
                    perfect.log.bytes
                );
            }
        }
    }
}

/// The §2 anchor: an output-lite replayer asked to reproduce "output 5"
/// synthesises inputs 1 + 4 — output matched, failure gone, DF 0 — while
/// recording inputs (output-heavy) closes the hole.
#[test]
fn sum_trap_separates_output_lite_from_output_heavy() {
    let workload = SumWorkload;
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(64);

    let lite_rec = OutputLiteModel.record(&scenario);
    let lite = OutputLiteModel.replay(&scenario, &lite_rec, &budget);
    assert!(
        lite.artifact_satisfied,
        "lite search should find an output-matching run"
    );
    assert!(
        !lite.reproduced_failure,
        "the synthesised 1+4 execution must NOT fail — that is the trap"
    );
    let lite_utility = debugging_utility(&workload.root_causes(), &lite_rec, &lite);
    assert_eq!(lite_utility.fidelity.df, 0.0, "lite DF collapses to 0");

    let heavy_rec = OutputHeavyModel.record(&scenario);
    let heavy = OutputHeavyModel.replay(&scenario, &heavy_rec, &budget);
    assert!(heavy.artifact_satisfied, "heavy search should succeed");
    assert!(
        heavy.reproduced_failure,
        "with inputs recorded the true 2+2 failure must reproduce"
    );
}

#[test]
fn debugging_efficiency_is_monotone_in_the_inference_budget() {
    let workload = msgserver();
    let scenario = workload.scenario();
    let recording = FailureModel.record(&scenario);
    assert!(
        recording.original.failure.is_some(),
        "msgserver production run must fail"
    );

    let mut prev: Option<(u64, bool, Option<u64>, f64)> = None;
    for budget in [1u64, 2, 4, 8, 16, 32, 64] {
        let replay =
            FailureModel.replay(&scenario, &recording, &InferenceBudget::executions(budget));
        let de = debugging_efficiency(&recording, &replay);
        assert!(replay.inference.explored <= budget, "budget overrun");
        if let Some((prev_budget, prev_found, prev_at, prev_de)) = prev {
            assert!(
                replay.inference.explored >= 1,
                "budget {budget}: search must try at least one candidate"
            );
            assert!(
                !prev_found || replay.inference.found,
                "found at budget {prev_budget} but lost at {budget}"
            );
            if prev_found && replay.inference.found {
                assert_eq!(
                    replay.inference.found_at, prev_at,
                    "a found candidate must not move as the budget grows"
                );
                assert!(
                    (de - prev_de).abs() < 1e-12,
                    "DE must be stable once the failure is found \
                     ({prev_de} at {prev_budget}, {de} at {budget})"
                );
            }
            if !prev_found && !replay.inference.found {
                assert!(
                    de <= prev_de + 1e-12,
                    "DE must not grow while the search keeps failing \
                     ({prev_de} at {prev_budget}, {de} at {budget})"
                );
            }
        }
        prev = Some((
            budget,
            replay.inference.found,
            replay.inference.found_at,
            de,
        ));
    }
    let (_, found, _, _) = prev.expect("budgets non-empty");
    assert!(found, "64 candidates must be enough to re-find the failure");
}

/// The headline acceptance criterion: on the msgserver workload across the
/// default seed grid, DPOR reproduces exhaustive search's failure set while
/// executing at most half the interleavings.
#[test]
fn dpor_matches_exhaustive_on_msgserver_with_at_most_half_the_runs() {
    let workload = msgserver();
    let budget = InferenceBudget::executions(2_000);
    const DEPTH: u32 = 4;

    let mut total_exhaustive = 0u64;
    let mut total_dpor = 0u64;
    let mut total_pruned = 0u64;
    for (variant, scenario) in scenario_grid(&workload, SEED_GRID).iter().enumerate() {
        let (exhaustive_failures, exhaustive) = enumerate_failures(
            scenario,
            &budget,
            SearchStrategy::Exhaustive { max_depth: DEPTH },
        );
        let (dpor_failures, dpor) =
            enumerate_failures(scenario, &budget, SearchStrategy::Dpor { max_depth: DEPTH });
        assert!(
            exhaustive.explored < budget.max_executions,
            "variant {variant}: exhaustive tree must fit the budget \
             (executed {})",
            exhaustive.explored
        );
        assert_eq!(
            dpor_failures, exhaustive_failures,
            "variant {variant}: DPOR missed or invented failures"
        );
        assert!(
            dpor.explored <= exhaustive.explored,
            "variant {variant}: DPOR executed more than exhaustive"
        );
        total_exhaustive += exhaustive.explored;
        total_dpor += dpor.explored;
        total_pruned += dpor.pruned;
    }
    assert!(
        total_dpor * 2 <= total_exhaustive,
        "DPOR must execute at most half of exhaustive's interleavings \
         ({total_dpor} vs {total_exhaustive})"
    );
    assert!(total_pruned > 0, "DPOR reported no pruning");
}

/// The soundness direction of partial-order reduction must hold on *every*
/// workload, not just the acceptance target: same failure set, never more
/// executions.
#[test]
fn dpor_never_misses_failures_on_any_workload() {
    let budget = InferenceBudget::executions(1_500);
    for workload in all_workloads() {
        let scenario = workload.scenario();
        // Depth 3 keeps the widest tree (hyperstore, ~8-way branching)
        // inside the budget so the exhaustive set is complete.
        let depth = 3;
        let (exhaustive_failures, exhaustive) = enumerate_failures(
            &scenario,
            &budget,
            SearchStrategy::Exhaustive { max_depth: depth },
        );
        let (dpor_failures, dpor) = enumerate_failures(
            &scenario,
            &budget,
            SearchStrategy::Dpor { max_depth: depth },
        );
        assert!(
            exhaustive.explored < budget.max_executions,
            "{}: exhaustive tree must fit the budget (executed {})",
            workload.name(),
            exhaustive.explored
        );
        assert_eq!(
            dpor_failures,
            exhaustive_failures,
            "{}: DPOR failure set diverged",
            workload.name()
        );
        assert!(
            dpor.explored <= exhaustive.explored,
            "{}: DPOR executed more interleavings than exhaustive",
            workload.name()
        );
    }
}

/// Models pick the systematic strategies straight from the budget — the
/// plumbing the relaxed models use to benefit from DPOR.
#[test]
fn models_select_dpor_through_the_inference_budget() {
    let workload = msgserver();
    let scenario = workload.scenario();
    let budget = InferenceBudget::dpor(256, 5);

    let recording = FailureModel.record(&scenario);
    let replay = FailureModel.replay(&scenario, &recording, &budget);
    assert!(replay.inference.explored > 0, "DPOR search did not run");
    assert!(
        replay.inference.explored <= 256,
        "budget must bound executed interleavings"
    );
    assert!(
        replay.artifact_satisfied,
        "DPOR inference should re-find the msgserver failure"
    );
    assert!(replay.reproduced_failure);

    // And the same budget drives a random search when asked to.
    let random = FailureModel.replay(
        &scenario,
        &recording,
        &InferenceBudget::executions(256).with_strategy(SearchStrategy::Random),
    );
    assert!(random.inference.pruned == 0, "random search never prunes");
}

/// Checkpointed (fork-based) DFS is an execution mechanism, not a search
/// policy: on every workload it must walk the same tree as from-scratch
/// DFS — executing the same interleavings in the same order, pruning the
/// same branches, and returning the byte-identical failure set — while the
/// step accounting stays conservative (executed + skipped = scratch's
/// executed).
#[test]
fn checkpointed_dfs_is_execution_equivalent_on_every_workload() {
    let budget = InferenceBudget::executions(1_000);
    for workload in all_workloads() {
        let scenario = workload.scenario();
        for strategy in [
            SearchStrategy::Exhaustive { max_depth: 3 },
            SearchStrategy::Dpor { max_depth: 3 },
        ] {
            let (scratch_failures, scratch) = enumerate_failures(&scenario, &budget, strategy);
            let (ck_failures, ck) =
                enumerate_failures(&scenario, &budget.with_checkpoints(1), strategy);
            let label = format!("{} / {strategy:?}", workload.name());
            assert_eq!(
                ck_failures, scratch_failures,
                "{label}: checkpointed DFS changed the failure set"
            );
            assert_eq!(ck.explored, scratch.explored, "{label}: walk changed");
            assert_eq!(ck.pruned, scratch.pruned, "{label}: pruning changed");
            assert_eq!(
                ck.steps_executed + ck.steps_skipped,
                scratch.steps_executed,
                "{label}: step accounting inconsistent"
            );
        }
    }
}

/// Every interleaving a checkpointed walk produces is byte-identical to the
/// one the scratch walk produces at the same position: same trace hash,
/// decision for decision. (Snapshot restore may never perturb an
/// execution.)
#[test]
fn checkpointed_dfs_interleavings_are_byte_identical_to_scratch() {
    let workload = msgserver();
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(40);
    let strategy = SearchStrategy::Dpor { max_depth: 16 };

    let collect = |budget: &InferenceBudget| -> Vec<u64> {
        let hashes = std::cell::RefCell::new(Vec::new());
        debug_determinism::replay::search_with(&scenario, budget, strategy, None, |out| {
            hashes.borrow_mut().push(common::trace_hash(out));
            false
        });
        hashes.into_inner()
    };
    let scratch = collect(&budget);
    let checkpointed = collect(&budget.with_checkpoints(1));
    assert_eq!(scratch.len(), checkpointed.len());
    assert_eq!(
        scratch, checkpointed,
        "a snapshot-resumed interleaving diverged from its scratch twin"
    );
    assert!(scratch.len() >= 30, "walk too small to be meaningful");
}

/// The ABL-7 acceptance gate: in the deep-horizon regime (budget-capped
/// DFS, branch points far into each run), checkpointed search must execute
/// at least 30% fewer kernel operations than scratch search on msgserver —
/// with the identical failure set. (At shallow depths there is nothing to
/// skip: every branch point precedes the first executed operation; see the
/// ABL-7 notes in README.)
#[test]
fn checkpointed_search_saves_at_least_30_percent_on_deep_msgserver() {
    let workload = msgserver();
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(150);
    let strategy = SearchStrategy::Dpor { max_depth: 256 };
    let (scratch_failures, scratch) = enumerate_failures(&scenario, &budget, strategy);
    let (ck_failures, ck) = enumerate_failures(&scenario, &budget.with_checkpoints(1), strategy);
    assert_eq!(ck_failures, scratch_failures, "failure sets must match");
    assert_eq!(
        ck.steps_executed + ck.steps_skipped,
        scratch.steps_executed,
        "step accounting inconsistent"
    );
    assert!(
        ck.steps_executed * 10 <= scratch.steps_executed * 7,
        "checkpointed search must execute >= 30% fewer kernel operations \
         ({} vs {}, speedup {:?})",
        ck.steps_executed,
        scratch.steps_executed,
        ck.replay_speedup()
    );
}

/// Worker-pool size of the parallel explorer under test. CI's
/// `determinism-matrix` job sweeps this (`DD_SEARCH_WORKERS ∈ {1, 4}`,
/// crossed with `--test-threads`) so any hash or failure-set difference
/// between worker counts — or any interference between concurrently
/// running explorers — fails the gate.
fn search_workers() -> u32 {
    std::env::var("DD_SEARCH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// The parallel determinism contract, workload by workload: for every
/// workload, scratch and checkpointed, `DporParallel` at the matrix's
/// worker count returns the byte-identical failure set *and* the identical
/// `InferenceStats` — explored, pruned, ticks, step accounting — as the
/// sequential explorer. The coordinator consumes runs in sequential order
/// and charges them against its canonical snapshot pool, so even the
/// steps-skipped accounting is worker-count-invariant.
#[test]
fn parallel_dfs_is_byte_identical_to_sequential_on_every_workload() {
    let workers = search_workers();
    for workload in all_workloads() {
        let scenario = workload.scenario();
        for interval in [0u64, 1] {
            let budget = InferenceBudget::executions(400).with_checkpoints(interval);
            let (seq_failures, seq) =
                enumerate_failures(&scenario, &budget, SearchStrategy::Dpor { max_depth: 4 });
            let (par_failures, par) = enumerate_failures(
                &scenario,
                &budget,
                SearchStrategy::DporParallel {
                    max_depth: 4,
                    workers,
                },
            );
            let label = format!(
                "{} / interval {interval} / {workers} workers",
                workload.name()
            );
            assert_eq!(
                par_failures, seq_failures,
                "{label}: parallel DPOR changed the failure set"
            );
            assert_eq!(par, seq, "{label}: parallel DPOR changed the statistics");
        }
    }
}

/// Every interleaving the parallel walk visits is byte-identical to the
/// sequential walk's, at the same position: same trace hash, decision for
/// decision — on the deep-horizon msgserver walk where workers genuinely
/// race ahead over pooled snapshots.
#[test]
fn parallel_walk_trace_hashes_match_sequential() {
    let workload = msgserver();
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(60).with_checkpoints(1);

    let collect = |strategy: SearchStrategy| -> Vec<u64> {
        let hashes = std::cell::RefCell::new(Vec::new());
        debug_determinism::replay::search_with(&scenario, &budget, strategy, None, |out| {
            hashes.borrow_mut().push(common::trace_hash(out));
            false
        });
        hashes.into_inner()
    };
    let sequential = collect(SearchStrategy::Dpor { max_depth: 256 });
    assert!(sequential.len() >= 40, "walk too small to be meaningful");
    for workers in [2u32, search_workers().max(2)] {
        let parallel = collect(SearchStrategy::DporParallel {
            max_depth: 256,
            workers,
        });
        assert_eq!(
            parallel, sequential,
            "{workers} workers: a speculatively executed interleaving \
             diverged from its sequential twin"
        );
    }
}

/// The ABL-8 wall-clock acceptance gate: on the deep-horizon msgserver row,
/// 4 workers must finish the identical checkpointed walk at least 1.5×
/// faster than the sequential explorer. Wall-clock on shared CI runners is
/// noisy, so this is ignored in the gating test job and run explicitly by
/// the non-gating `perf-smoke` job (the *correctness* half — identical
/// walks — is gated above and by the `determinism-matrix` job).
#[test]
#[ignore = "wall-clock perf gate; run explicitly by the CI perf-smoke job"]
fn parallel_search_is_1_5x_faster_on_deep_msgserver() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!(
            "SKIP: host exposes {cores} core(s); wall-clock scaling cannot \
             be demonstrated without hardware parallelism"
        );
        return;
    }
    let workload = msgserver();
    let scenario = workload.scenario();
    let budget = InferenceBudget::executions(150).with_checkpoints(1);

    let time = |strategy: SearchStrategy| {
        let t0 = std::time::Instant::now();
        let (failures, stats) = enumerate_failures(&scenario, &budget, strategy);
        (t0.elapsed(), failures, stats)
    };
    // Warm-up: touch both paths once so allocator and page-cache effects
    // do not bias whichever variant runs first.
    time(SearchStrategy::Dpor { max_depth: 256 });
    let (seq_wall, seq_failures, seq_stats) = time(SearchStrategy::Dpor { max_depth: 256 });
    let (par_wall, par_failures, par_stats) = time(SearchStrategy::DporParallel {
        max_depth: 256,
        workers: 4,
    });
    assert_eq!(par_failures, seq_failures, "failure sets must match");
    assert_eq!(par_stats, seq_stats, "statistics must match");
    assert!(
        par_wall.as_secs_f64() * 1.5 <= seq_wall.as_secs_f64(),
        "4-worker walk must be >= 1.5x faster than sequential \
         ({par_wall:?} vs {seq_wall:?}, {:.2}x)",
        seq_wall.as_secs_f64() / par_wall.as_secs_f64()
    );
}
