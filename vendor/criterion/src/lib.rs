//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-harness subset this workspace uses: benchmark
//! groups, `Bencher::iter`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical machinery it takes a handful of timed samples and reports the
//! median wall-clock time per iteration (plus derived throughput) on stdout
//! — enough for `cargo bench` to run meaningfully and for bench targets to
//! be first-class compile-checked code.

use std::time::Instant;

pub use std::hint::black_box;

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, None, 10, f);
        self
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the units of work per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.min(10) {
        let mut b = Bencher {
            elapsed_ns: 0,
            iters: 0,
        };
        f(&mut b);
        if let Some(per_iter) = b.elapsed_ns.checked_div(b.iters) {
            samples.push(per_iter);
        }
    }
    samples.sort_unstable();
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0);
    let rate = |per_iter: u64| {
        if median == 0 {
            "inf".to_owned()
        } else {
            format!("{:.0}", per_iter as f64 * 1e9 / median as f64)
        }
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("bench {id}: {median} ns/iter ({} elem/s)", rate(n));
        }
        Some(Throughput::Bytes(n)) => {
            println!("bench {id}: {median} ns/iter ({} B/s)", rate(n));
        }
        None => println!("bench {id}: {median} ns/iter"),
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u64,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed warmup, then a few timed iterations.
        black_box(routine());
        let iters = 3u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos() as u64;
        self.iters += iters;
    }
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.sample_size(2);
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs = black_box(runs + 1)));
        g.finish();
        assert!(runs > 0);
    }
}
