//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors an API-compatible subset of serde sufficient for this
//! codebase: the `Serialize`/`Deserialize` traits, their derive macros, and
//! impls for the std types that appear in the tree.
//!
//! Instead of serde's visitor-based data model, this stub serializes through
//! a concrete [`Content`] tree (a superset of the JSON data model). The
//! companion `serde_json` stub encodes/decodes that tree as real JSON text,
//! so round trips through `serde_json::to_string`/`from_str` behave like the
//! real thing for the shapes used here (no `#[serde(...)]` attributes, no
//! generic derived types).

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The concrete serialization data model.
///
/// `Map` holds arbitrary key/value pairs; derived structs always use
/// `Str` keys. Collections with non-string keys serialize as `Seq`s of
/// two-element `Seq`s, which keeps the JSON encoding valid.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Borrows the sequence elements, if this is a `Seq`.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the key/value pairs, if this is a `Map`.
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

// `Content` embeds verbatim in derived structs (identity encoding) — used
// by codecs that carry an already-encoded payload, e.g. the snapshot
// manifest's inline log tails.
impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

/// Looks up a named field in a derived struct's map encoding.
pub fn field<'a>(
    map: &'a [(Content, Content)],
    name: &str,
    ty: &str,
) -> Result<&'a Content, Error> {
    map.iter()
        .find(|(k, _)| k.as_str() == Some(name))
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for `{ty}`")))
}

/// Serialization/deserialization error for the stub data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    fn expected(what: &str, got: &Content) -> Self {
        Error::custom(format!("expected {what}, got {}", got.type_name()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be encoded into the [`Content`] data model.
pub trait Serialize {
    /// Encodes `self` as a [`Content`] tree.
    fn to_content(&self) -> Content;
}

/// A type that can be decoded from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Decodes a value from a [`Content`] tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization marker traits, mirroring `serde::de`.

    /// Owned deserialization: blanket-implemented for every [`crate::Deserialize`].
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

pub mod ser {
    //! Serialization traits, mirroring `serde::ser`.
    pub use crate::Serialize;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v: i64 = match *content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| Error::expected("signed integer", content))?,
                    _ => return Err(Error::expected("integer", content)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v: u64 = match *content {
                    Content::U64(v) => v,
                    Content::I64(v) => u64::try_from(v)
                        .map_err(|_| Error::expected("unsigned integer", content))?,
                    _ => return Err(Error::expected("integer", content)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!(
                        "integer {v} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match *content {
                    Content::F64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    _ => Err(Error::expected("number", content)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match *content {
            Content::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", content)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = content
            .as_str()
            .ok_or_else(|| Error::expected("single-char string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", content))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

/// Interned `'static` strings for `Deserialize for &'static str`.
///
/// Sites in this codebase are a small closed set of string literals, so the
/// table is bounded in practice; each distinct string is leaked exactly once.
fn intern(s: &str) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut table = TABLE
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .unwrap();
    if let Some(&existing) = table.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    table.insert(leaked);
    leaked
}

impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(intern)
            .ok_or_else(|| Error::expected("string", content))
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            _ => Err(Error::expected("null", content)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: ToOwned + Serialize + ?Sized> Serialize for std::borrow::Cow<'_, T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        String::from_content(content).map(std::borrow::Cow::Owned)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

// `Result` uses serde's externally-tagged enum encoding — the same shape
// the derive macro emits for newtype variants: `{"Ok": value}` /
// `{"Err": error}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_content(&self) -> Content {
        match self {
            Ok(v) => Content::Map(vec![(Content::Str("Ok".to_owned()), v.to_content())]),
            Err(e) => Content::Map(vec![(Content::Str("Err".to_owned()), e.to_content())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let map = content
            .as_map()
            .ok_or_else(|| Error::expected("`Result` variant map", content))?;
        match map {
            [(tag, value)] => match tag.as_str() {
                Some("Ok") => T::from_content(value).map(Ok),
                Some("Err") => E::from_content(value).map(Err),
                _ => Err(Error::custom("expected `Ok` or `Err` variant")),
            },
            _ => Err(Error::custom("expected single-entry `Result` variant map")),
        }
    }
}

impl<T: Serialize> Serialize for std::cmp::Reverse<T> {
    fn to_content(&self) -> Content {
        self.0.to_content()
    }
}

impl<T: Deserialize> Deserialize for std::cmp::Reverse<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(std::cmp::Reverse)
    }
}

// ---------------------------------------------------------------------------
// Sequences
// ---------------------------------------------------------------------------

fn seq_to_content<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Content {
    Content::Seq(items.map(Serialize::to_content).collect())
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        seq_to_content(self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        seq_to_content(self.iter())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::expected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        seq_to_content(self.iter())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(VecDeque::from)
    }
}

// Heap iteration order is unspecified, so serialize in ascending element
// order — like the hash collections below, this keeps the encoding
// deterministic across runs.
impl<T: Serialize + Ord> Serialize for BinaryHeap<T> {
    fn to_content(&self) -> Content {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Content::Seq(items.into_iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BinaryHeap<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(BinaryHeap::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        seq_to_content(self.iter())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::from_content(content)?;
        let len = v.len();
        v.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let s = content
                    .as_seq()
                    .ok_or_else(|| Error::expected("tuple sequence", content))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected tuple of length {}, got {}",
                        $len,
                        s.len()
                    )));
                }
                Ok(($($name::from_content(&s[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);
impl_tuple!(A:0, B:1, C:2, D:3 ; 4);

// ---------------------------------------------------------------------------
// Maps and sets
// ---------------------------------------------------------------------------
//
// Maps serialize as sequences of `[key, value]` pairs — not JSON objects —
// so non-string keys stay representable. Hash collections are sorted by
// their encoded key so serialization is deterministic across runs.

fn sorted_pairs(mut pairs: Vec<(Content, Content)>) -> Content {
    pairs.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
    Content::Seq(
        pairs
            .into_iter()
            .map(|(k, v)| Content::Seq(vec![k, v]))
            .collect(),
    )
}

fn pairs_from_content<K: Deserialize, V: Deserialize>(
    content: &Content,
) -> Result<Vec<(K, V)>, Error> {
    match content {
        Content::Seq(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_seq()
                    .ok_or_else(|| Error::expected("[key, value] pair", item))?;
                if pair.len() != 2 {
                    return Err(Error::custom("expected [key, value] pair"));
                }
                Ok((K::from_content(&pair[0])?, V::from_content(&pair[1])?))
            })
            .collect(),
        Content::Map(pairs) => pairs
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        _ => Err(Error::expected("map", content)),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.iter()
                .map(|(k, v)| Content::Seq(vec![k.to_content(), v.to_content()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        pairs_from_content(content).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        sorted_pairs(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        pairs_from_content(content).map(|pairs| pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        seq_to_content(self.iter())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(|v| v.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Content::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(content: &Content) -> Result<Self, Error> {
        Vec::<T>::from_content(content).map(|v| v.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_cross_conversion() {
        assert_eq!(i64::from_content(&Content::U64(5)).unwrap(), 5);
        assert_eq!(u64::from_content(&Content::I64(5)).unwrap(), 5);
        assert!(u64::from_content(&Content::I64(-1)).is_err());
        assert!(u8::from_content(&Content::U64(256)).is_err());
    }

    #[test]
    fn map_round_trip() {
        let m: BTreeMap<String, i64> = [("a".to_owned(), 1), ("b".to_owned(), -2)]
            .into_iter()
            .collect();
        let c = m.to_content();
        assert_eq!(BTreeMap::<String, i64>::from_content(&c).unwrap(), m);
    }

    #[test]
    fn array_round_trip() {
        let a = [1u64, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_content(&a.to_content()).unwrap(), a);
    }
}
