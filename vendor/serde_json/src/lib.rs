//! Offline stand-in for `serde_json`.
//!
//! Encodes the vendored `serde` stub's [`Content`] data model as real JSON
//! text and parses it back, so `to_string`/`from_str` round trips behave
//! like the real crate for the shapes this workspace uses. Maps from
//! collection types arrive as sequences of `[key, value]` pairs (see the
//! `serde` stub), so every encoded document is plain JSON arrays, objects,
//! strings, numbers, booleans and nulls.

use serde::{Content, Deserialize, Serialize};
use std::fmt;
use std::io::{Read, Write};

/// Serialization/deserialization failure.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("I/O error: {e}"))
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Serializes `value` as JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    Ok(T::from_content(&content)?)
}

/// Deserializes a value from a JSON reader.
pub fn from_reader<R: Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s)?;
    from_str(&s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(
    out: &mut String,
    c: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{}` on f64 is shortest-round-trip decimal: parses back to
                // the identical bits.
                out.push_str(&v.to_string());
            } else {
                // Like real serde_json, non-finite floats encode as null.
                out.push_str("null");
            }
        }
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                let key = k
                    .as_str()
                    .ok_or_else(|| Error::new("JSON object keys must be strings"))?;
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1)?;
            }
            if !pairs.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Content, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((Content::Str(key), value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.parse_escape()?);
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self) -> Result<char, Error> {
        let c = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("bad escape"))?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{08}',
            b'f' => '\u{0c}',
            b'u' => {
                let hi = self.parse_hex4()?;
                if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair.
                    if !self.eat_literal("\\u") {
                        return Err(self.err("unpaired surrogate"));
                    }
                    let lo = self.parse_hex4()?;
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF);
                    char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"))?
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))?
                }
            }
            _ => return Err(self.err("unknown escape")),
        })
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(v) = text.parse::<i64>() {
                    return Ok(Content::I64(v));
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&-5i64).unwrap(), "-5");
        assert_eq!(from_str::<i64>("-5").unwrap(), -5);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<f64>("2.5e3").unwrap(), 2500.0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}é中🦀".to_owned();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\ud83e\\udd80\"").unwrap(), "🦀");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u64, "one".to_owned()), (2, "two".to_owned())];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&json).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, String)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<Vec<u64>>("[1,]").is_err());
    }
}
