//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides the `Mutex`/`Condvar` subset this workspace uses with
//! parking_lot's API shape: `lock()` returns the guard directly (no
//! `Result`), there is no poisoning (a poisoned std lock is recovered
//! transparently), and `Condvar::wait` takes `&mut MutexGuard` instead of
//! consuming the guard.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` is always `Some` between [`Condvar::wait`] calls; it
/// exists so `wait` can hand the guard to `std::sync::Condvar` by value.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_handoff() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        t.join().unwrap();
    }
}
