//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` stub's `Content` data model, without `syn`/`quote`
//! (neither is available offline). The input item is parsed directly from
//! the `proc_macro` token stream, which is sufficient because this codebase
//! derives only on non-generic structs and enums with no `#[serde(...)]`
//! attributes.
//!
//! Encoding (mirrors serde_json's externally-tagged defaults):
//! - named struct        → `Map` of field name → value
//! - newtype struct      → the inner value
//! - tuple struct        → `Seq`
//! - unit struct         → `Null`
//! - unit enum variant   → `Str(variant_name)`
//! - newtype variant     → `Map { variant_name: value }`
//! - tuple variant       → `Map { variant_name: Seq }`
//! - struct variant      → `Map { variant_name: Map }`
//!
//! Deserialization of named structs and struct variants is *strict*: maps
//! carrying keys that name no declared field are rejected (the behaviour
//! real serde calls `deny_unknown_fields`). Everything this workspace
//! parses is its own rendered output, so an unknown key is always either
//! corruption or a forward-version artifact a current reader must refuse.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("serde stub: generated Serialize impl did not parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde stub: generated Deserialize impl did not parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();

    // Skip outer attributes (doc comments included) and visibility.
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                it.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kw = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("serde stub: expected `struct` or `enum`, got {t:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        t => panic!("serde stub: expected type name, got {t:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("serde stub: generic type `{name}` is not supported");
        }
    }

    let kind = match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            t => panic!("serde stub: unexpected struct body for `{name}`: {t:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(variants(g.stream()))
            }
            t => panic!("serde stub: unexpected enum body for `{name}`: {t:?}"),
        },
        other => panic!("serde stub: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

/// Splits a token stream on commas that sit outside any `<...>` nesting.
/// Delimited groups are single tokens, so only angle brackets need manual
/// depth tracking; `->` is skipped so the `>` doesn't count as a close.
fn split_top(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle = 0usize;
    let mut prev_dash = false;
    for tt in stream {
        let mut dash = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' if prev_dash => {} // `->` in a fn type
                '>' => angle = angle.saturating_sub(1),
                '-' => dash = true,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
        }
        prev_dash = dash;
        chunks.last_mut().expect("chunks is never empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Skips attributes and visibility at the front of a field/variant chunk,
/// returning the index of the first "real" token.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    i
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top(stream)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                t => panic!("serde stub: expected field name, got {t:?}"),
            }
        })
        .collect()
}

fn count_fields(stream: TokenStream) -> usize {
    split_top(stream).len()
}

fn variants(stream: TokenStream) -> Vec<Variant> {
    split_top(stream)
        .iter()
        .map(|chunk| {
            let i = skip_attrs_and_vis(chunk);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                t => panic!("serde stub: expected variant name, got {t:?}"),
            };
            let shape = match chunk.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_fields(g.stream()))
                }
                _ => Shape::Unit, // unit variant, possibly `= discriminant`
            };
            Variant { name, shape }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn named_struct_ser(fields: &[String], accessor: &str) -> String {
    let pairs = fields
        .iter()
        .map(|f| {
            format!(
                "(::serde::Content::Str(\"{f}\".to_owned()), \
                 ::serde::Serialize::to_content({accessor}{f}))"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("::serde::Content::Map(vec![{pairs}])")
}

fn named_struct_de(ty: &str, path: &str, fields: &[String], map_expr: &str) -> String {
    let inits = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content(\
                 ::serde::field({map_expr}, \"{f}\", \"{ty}\")?)?"
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let known = fields
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    // Reject unknown keys: every map key must name a declared field. All
    // artifacts in this workspace are self-produced round-trips, so a stray
    // key is always either corruption or a forward-version document that a
    // v1 reader must refuse rather than silently drop.
    format!(
        "{{\n\
             const __KNOWN: &[&str] = &[{known}];\n\
             for (__k, _) in {map_expr}.iter() {{\n\
                 match __k.as_str() {{\n\
                     ::std::option::Option::Some(__ks) if __KNOWN.contains(&__ks) => {{}}\n\
                     ::std::option::Option::Some(__ks) => \
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown field `{{__ks}}` for {ty}\"))),\n\
                     ::std::option::Option::None => \
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"non-string key for {ty}\")),\n\
                 }}\n\
             }}\n\
             ::std::result::Result::Ok({path} {{ {inits} }})\n\
         }}"
    )
}

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_owned(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_owned(),
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Kind::NamedStruct(fields) => named_struct_ser(fields, "&self."),
        Kind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Content::Str(\"{vname}\".to_owned()),"
                        ),
                        Shape::Tuple(n) => {
                            let binds = (0..*n)
                                .map(|i| format!("__f{i}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_content(__f0)".to_owned()
                            } else {
                                let items = (0..*n)
                                    .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                    .collect::<Vec<_>>()
                                    .join(", ");
                                format!("::serde::Content::Seq(vec![{items}])")
                            };
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vname}\".to_owned()), {payload})]),"
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let payload = named_struct_ser(fields, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vname}\".to_owned()), {payload})]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => format!(
            "match __c {{\n\
                 ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(\
                     ::serde::Error::custom(format!(\
                         \"expected null for unit struct {name}, got {{__other:?}}\"))),\n\
             }}"
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Kind::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{\n\
                     let __s = __c.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                     if __s.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple length for {name}\"));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({items}))\n\
                 }}"
            )
        }
        Kind::NamedStruct(fields) => format!(
            "{{\n\
                 let __m = __c.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 {}\n\
             }}",
            named_struct_de(name, name, fields, "__m")
        ),
        Kind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_content(__v)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&__s[{i}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __s = __v.as_seq().ok_or_else(|| \
                                         ::serde::Error::custom(\
                                             \"expected sequence for {name}::{vname}\"))?;\n\
                                     if __s.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\
                                                 \"wrong tuple length for {name}::{vname}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({items}))\n\
                                 }}"
                            ))
                        }
                        Shape::Named(fields) => {
                            let ty = format!("{name}::{vname}");
                            let inner = named_struct_de(&ty, &ty, fields, "__vm");
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __vm = __v.as_map().ok_or_else(|| \
                                         ::serde::Error::custom(\
                                             \"expected map for {name}::{vname}\"))?;\n\
                                     {inner}\n\
                                 }}"
                            ))
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = &__m[0];\n\
                         let __k = __k.as_str().ok_or_else(|| ::serde::Error::custom(\
                             \"expected string variant tag for {name}\"))?;\n\
                         match __k {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"expected variant encoding for {name}, \
                                  got {{__other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}
