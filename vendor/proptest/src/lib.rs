//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with a `proptest_config` header, integer-range and
//! regex-string strategies, `any::<T>()`, `prop::collection::vec`, and the
//! `prop_assert*` macros. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce exactly.
//! There is no shrinking: a failing case panics with its case index.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::TestRng;

pub mod prelude {
    //! Glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Defines property tests: each `fn` runs its body for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases {
                    let mut __rng =
                        $crate::TestRng::for_case(stringify!($name), __case as u64);
                    $(let $arg =
                        $crate::Strategy::gen_value(&($strat), &mut __rng);)*
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __result {
                        panic!("proptest case {} of {}: {}", __case, cfg.cases, __msg);
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}
