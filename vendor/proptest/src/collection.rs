//! Collection strategies for the proptest stub.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive, matching `Range<usize>` semantics.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_in_range() {
        let strat = vec(any::<i64>(), 2..5);
        let mut rng = TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let v = strat.gen_value(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
