//! Deterministic case RNG for the proptest stub.

/// A SplitMix64 stream seeded from the test name and case index, so every
/// test's cases are stable across runs, builds and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one `(test, case)` pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test data.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
