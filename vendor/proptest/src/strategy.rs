//! Value-generation strategies for the proptest stub.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = rng.below(span);
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Full-range generation for `any::<T>()`.
pub trait Arbitrary {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Alphabet used by string-pattern strategies: mixes ASCII (including JSON
/// specials), multi-byte code points, and an astral-plane character, so
/// serialization round trips get exercised properly.
const STRING_ALPHABET: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ':', '"', '\\', '/', '{', '}', '[',
    ']', '\t', 'é', 'λ', '中', '🦀',
];

/// `&str` as a strategy: the pattern is interpreted as a regex the way the
/// real proptest does. Only the `.{min,max}` shape (arbitrary characters,
/// bounded length) is supported; other patterns are rejected loudly rather
/// than silently generating the wrong distribution.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or_else(|| {
            panic!("proptest stub: unsupported string pattern {self:?} (expected `.{{min,max}}`)")
        });
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| STRING_ALPHABET[rng.below(STRING_ALPHABET.len() as u64) as usize])
            .collect()
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = body.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 1);
        for _ in 0..500 {
            let v = (3u32..7).gen_value(&mut rng);
            assert!((3..7).contains(&v));
            let w = (-5i64..-1).gen_value(&mut rng);
            assert!((-5..-1).contains(&w));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::for_case("strings", 2);
        for _ in 0..200 {
            let s = ".{0,24}".gen_value(&mut rng);
            assert!(s.chars().count() <= 24);
        }
    }
}
