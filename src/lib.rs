//! # debug-determinism
//!
//! A reproduction of *"Debug Determinism: The Sweet Spot for Replay-Based
//! Debugging"* (Zamfir, Altekar, Candea, Stoica — HotOS XIII, 2011) as a
//! Rust workspace: a deterministic concurrent-execution simulator, the
//! baseline replay-debugging determinism models (perfect, value, output,
//! failure), the paper's debug-determinism model with root-cause-driven
//! selectivity (RCSE), the DF/DE/DU metrics, and the workloads — including
//! a Hypertable-like distributed KV store reproducing issue 63 — that
//! regenerate the paper's figures.
//!
//! This crate is a facade: it re-exports the workspace crates under stable
//! module names.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `dd-sim` | the deterministic machine: tasks, shared memory, channels, scripted I/O, fault injection, replayable scheduling |
//! | [`trace`] | `dd-trace` | traces, recording cost accounting, artifact log formats, recorder observers |
//! | [`detect`] | `dd-detect` | happens-before & lockset race detection, lost-update analysis, invariant inference, trigger detectors |
//! | [`classify`] | `dd-classify` | control/data-plane classification by data rate |
//! | [`replay`] | `dd-replay` | the baseline determinism models and the search-based inference engine (random, PCT, exhaustive and DPOR-reduced schedule exploration) |
//! | [`core`] | `dd-core` | debug determinism: specs, root causes, RCSE, the `DebugModel`, DF/DE/DU metrics, the experiment runner |
//! | [`hyperstore`] | `dd-hyperstore` | the §4 case study: a distributed KV store with issue 63 |
//! | [`workloads`] | `dd-workloads` | the §2/§3 motivating programs: sum (2+2=5), msgserver, bufoverflow |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use debug_determinism::core::{evaluate_model, InferenceBudget, ValueModel, Workload};
//! use debug_determinism::workloads::SumWorkload;
//!
//! let (report, _, replay) =
//!     evaluate_model(&SumWorkload, &ValueModel, &InferenceBudget::executions(8));
//! assert!(replay.reproduced_failure);
//! assert_eq!(report.utility.fidelity.df, 1.0);
//! ```

/// The deterministic concurrent-execution simulator (`dd-sim`).
pub use dd_sim as sim;

/// Trace model, cost accounting and artifact formats (`dd-trace`).
pub use dd_trace as trace;

/// Race/invariant detectors and RCSE triggers (`dd-detect`).
pub use dd_detect as detect;

/// Control/data-plane classification (`dd-classify`).
pub use dd_classify as classify;

/// Baseline determinism models and inference (`dd-replay`).
pub use dd_replay as replay;

/// Debug determinism, RCSE and the metrics (`dd-core`).
pub use dd_core as core;

/// The Hypertable issue-63 case study (`dd-hyperstore`).
pub use dd_hyperstore as hyperstore;

/// The motivating workloads (`dd-workloads`).
pub use dd_workloads as workloads;
