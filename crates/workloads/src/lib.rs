//! # dd-workloads — the paper's motivating programs
//!
//! Three workloads, each a [`dd_core::Workload`] with an I/O specification,
//! declared root causes, a nondeterminism space, and a fixed variant:
//!
//! - [`SumWorkload`] (§2): the adder that outputs 5 for 2 + 2 — the
//!   output-determinism trap (replaying "output 5" via the non-failing
//!   1 + 4).
//! - [`MsgServerWorkload`] (§2): the server dropping messages — the true
//!   root cause is a buffer race, but failure-deterministic replay blames
//!   network congestion.
//! - [`BufOverflowWorkload`] (§3): the crash whose root cause is a missing
//!   input-length check (the fix-predicate example).

pub mod bufoverflow;
pub mod msgserver;
pub mod sum;

pub use bufoverflow::{
    bufoverflow_spec, BufOverflowProgram, BufOverflowWorkload, CAPACITY, CRASH, RC_MISSING_CHECK,
};
pub use msgserver::{
    msgserver_spec, MsgServerConfig, MsgServerProgram, MsgServerWorkload, EXCESS_DROPS,
    RC_BUFFER_RACE, RC_CONGESTION,
};
pub use sum::{sum_spec, SumProgram, SumWorkload, RC_CORRUPT_TABLE, WRONG_SUM};
