//! The §2 server example: messages dropped at higher-than-expected rates.
//!
//! Producers send messages over the network to a receiver task that appends
//! them to a shared buffer; a consumer walks the buffer behind a shared
//! cursor. When the buffer grows past a threshold, the receiver *compacts*
//! it — dropping the consumed prefix and resetting the cursor. The
//! compaction races with the consumer's cursor update: if the consumer's
//! stale `cursor + 1` lands after the receiver's reset, the cursor skips
//! over unprocessed messages and they are never handled — the elevated drop
//! rate whose *true* root cause is this race. The alternative explanation —
//! the one a failure-deterministic replayer naturally reaches for — is
//! network congestion, which drops messages before they arrive. The paper's
//! §2 warning: if replay shows congestion, the developer "naturally, yet
//! mistakenly, assumes nothing more can be done" and the race survives.

use dd_core::{snapshot, CauseCtx, FnSpec, RootCause, RunSetup, Spec, Workload};
use dd_replay::NondetSpace;
use dd_sim::{Builder, ChanClass, EnvConfig, Event, InputScript, IoSummary, Program};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Failure id: the server dropped more messages than the SLO allows.
pub const EXCESS_DROPS: &str = "msgserver.excess-drops";
/// Root cause id: the unsynchronised buffer.
pub const RC_BUFFER_RACE: &str = "buffer-race";
/// Root cause id: network congestion.
pub const RC_CONGESTION: &str = "network-congestion";

/// Message-server configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsgServerConfig {
    /// Producer tasks.
    pub n_producers: u32,
    /// Messages each producer sends.
    pub msgs_per_producer: u32,
    /// Messages sent back-to-back per burst.
    pub burst: u32,
    /// Payload size per message (bytes).
    pub payload: u32,
    /// Virtual ticks between bursts per producer.
    pub send_gap: u64,
    /// Buffer length that triggers a compaction.
    pub compact_at: usize,
    /// Virtual ticks between consumer drain polls.
    pub poll_gap: u64,
    /// When the run ends (reporter stops it).
    pub end_time: u64,
    /// Permitted drop fraction numerator (drops ≤ sent×num/den passes).
    pub slo_num: i64,
    /// Permitted drop fraction denominator.
    pub slo_den: i64,
}

impl Default for MsgServerConfig {
    fn default() -> Self {
        MsgServerConfig {
            n_producers: 2,
            msgs_per_producer: 24,
            burst: 4,
            payload: 96,
            send_gap: 60,
            compact_at: 10,
            poll_gap: 45,
            end_time: 1_600,
            slo_num: 1,
            slo_den: 20,
        }
    }
}

/// The message-server program.
pub struct MsgServerProgram {
    /// Configuration.
    pub cfg: MsgServerConfig,
    /// Whether the buffer lock fix is applied.
    pub fixed: bool,
}

impl Program for MsgServerProgram {
    fn name(&self) -> &'static str {
        if self.fixed {
            "msgserver-fixed"
        } else {
            "msgserver"
        }
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let cfg = self.cfg.clone();
        let fixed = self.fixed;
        let net = b.channel::<Vec<u8>>("net.in", ChanClass::Network);
        // The shared buffer (appended by the receiver) and the consumer's
        // cursor into it (reset by the receiver's compaction — the race).
        let buffer = b.var("buffer", Vec::<i64>::new());
        let cursor = b.var("consumed", 0i64);
        let buffer_lock = b.mutex("buffer.lock");
        // Data-plane sink: the consumer streams processed payloads here.
        let out_log = b.var("out.log", Vec::<u8>::new());

        for p in 0..cfg.n_producers {
            let cfg_p = cfg.clone();
            b.spawn(
                &format!("producer{p}"),
                &format!("producer{p}"),
                move |mut ctx| async move {
                    let mut i = 0;
                    while i < cfg_p.msgs_per_producer {
                        ctx.sleep(cfg_p.send_gap, "producer::pace").await?;
                        for _ in 0..cfg_p.burst.min(cfg_p.msgs_per_producer - i) {
                            let id = (p as i64) * 1_000_000 + i as i64;
                            // One draw expanded locally into the payload; the
                            // message carries its id in the first 8 bytes.
                            let seed = ctx.rand_below(0, "producer::gen").await?;
                            let mut sm = dd_sim::rng::SplitMix64::new(seed);
                            let mut bytes = id.to_le_bytes().to_vec();
                            bytes.extend((8..cfg_p.payload).map(|_| sm.next_u64() as u8));
                            ctx.send(&net, bytes, "producer::send").await?;
                            ctx.count("msgs_sent", 1, "producer::send").await?;
                            i += 1;
                        }
                    }
                    Ok(())
                },
            );
        }

        // Receiver: network → shared buffer, compacting when it grows.
        let cfg_r = cfg.clone();
        b.spawn("receiver", "server", move |mut ctx| async move {
            loop {
                let bytes = ctx.recv(&net, "receiver::recv").await?;
                let id = i64::from_le_bytes(bytes[..8].try_into().expect("8-byte id"));
                if fixed {
                    ctx.lock(buffer_lock, "receiver::lock").await?;
                }
                let mut buf = ctx.read(&buffer, "receiver::buf_read").await?;
                buf.push(id);
                let len = buf.len();
                if len >= cfg_r.compact_at {
                    // Compaction: drop the consumed prefix and rewind the
                    // cursor. BUG: without the lock this read-modify-write
                    // races with the consumer's cursor bump.
                    let c = ctx.read(&cursor, "receiver::cursor_read").await? as usize;
                    let c = c.min(buf.len());
                    let compacted: Vec<i64> = buf[c..].to_vec();
                    ctx.write(&buffer, compacted, "receiver::compact").await?;
                    ctx.write(&cursor, 0i64, "receiver::cursor_reset").await?;
                    ctx.probe("msgserver.compacted", c, "receiver::compact")
                        .await?;
                } else {
                    ctx.write(&buffer, buf, "receiver::buf_write").await?;
                }
                if fixed {
                    ctx.unlock(buffer_lock, "receiver::unlock").await?;
                }
                ctx.probe("msgserver.buflen", len, "receiver::buf_write")
                    .await?;
                ctx.count("msgs_buffered", 1, "receiver::buf_write").await?;
            }
        });

        // Consumer: periodically drains everything behind the shared
        // cursor, committing the cursor once per batch (at-least-once
        // processing, idempotent by message id).
        let cfg_c = cfg.clone();
        b.spawn("consumer", "server", move |mut ctx| async move {
            let mut seen = std::collections::HashSet::new();
            loop {
                ctx.sleep(cfg_c.poll_gap, "consumer::poll").await?;
                if fixed {
                    ctx.lock(buffer_lock, "consumer::lock").await?;
                }
                let c = ctx.read(&cursor, "consumer::cursor_read").await?;
                let buf = ctx.read(&buffer, "consumer::buf_read").await?;
                let batch: Vec<i64> = buf.iter().skip(c as usize).copied().collect();
                for id in &batch {
                    if seen.insert(*id) {
                        // Stream the processed payload out (data plane).
                        ctx.write(
                            &out_log,
                            vec![0u8; cfg_c.payload as usize],
                            "consumer::process",
                        )
                        .await?;
                        ctx.count("msgs_processed", 1, "consumer::process").await?;
                    }
                }
                if !batch.is_empty() {
                    // BUG: committing the stale batch-end position can
                    // clobber a concurrent compaction's cursor reset,
                    // skipping messages that were never processed.
                    ctx.write(&cursor, buf.len() as i64, "consumer::cursor_commit")
                        .await?;
                }
                if fixed {
                    ctx.unlock(buffer_lock, "consumer::unlock").await?;
                }
            }
        });

        // Reporter: ends the run at the configured time.
        let end = cfg.end_time;
        b.spawn("reporter", "reporter", move |mut ctx| async move {
            ctx.sleep(end, "reporter::wait").await?;
            ctx.stop_run("reporter::stop").await
        });
    }
}

/// Builds the message-server specification: drops within the SLO.
///
/// Drops — the performance characteristic the paper's §3 failure definition
/// explicitly includes — are measured from the run's counters.
pub fn msgserver_spec(cfg: &MsgServerConfig) -> Arc<dyn Spec> {
    let (num, den) = (cfg.slo_num, cfg.slo_den);
    Arc::new(FnSpec::new("msgserver-drop-slo", move |io: &IoSummary| {
        let sent = io.counter("msgs_sent");
        let processed = io.counter("msgs_processed");
        if sent == 0 {
            return Some(snapshot(EXCESS_DROPS, "nothing was sent".into(), io));
        }
        let dropped = sent - processed;
        if dropped * den > sent * num {
            Some(snapshot(
                EXCESS_DROPS,
                format!("{dropped} of {sent} messages dropped"),
                io,
            ))
        } else {
            None
        }
    }))
}

/// The message-server workload, pinned to a failing production seed.
pub struct MsgServerWorkload {
    cfg: MsgServerConfig,
    production: RunSetup,
}

impl MsgServerWorkload {
    /// Configuration accessor.
    pub fn config(&self) -> &MsgServerConfig {
        &self.cfg
    }

    /// Finds a schedule seed whose clean-environment run violates the drop
    /// SLO through the buffer race.
    pub fn discover(cfg: MsgServerConfig, max_seeds: u64) -> Option<Self> {
        let program = MsgServerProgram {
            cfg: cfg.clone(),
            fixed: false,
        };
        let spec = msgserver_spec(&cfg);
        for seed in 0..max_seeds {
            let run_cfg = dd_sim::RunConfig {
                seed,
                max_steps: 500_000,
                ..dd_sim::RunConfig::default()
            };
            let out = dd_sim::run_program(
                &program,
                run_cfg,
                Box::new(dd_sim::RandomPolicy::new(seed)),
                vec![],
            );
            if spec.check(&out.io).is_some() {
                return Some(MsgServerWorkload {
                    cfg,
                    production: RunSetup {
                        seed,
                        sched_seed: seed,
                        inputs: InputScript::new(),
                        env: EnvConfig::clean(),
                        max_steps: 500_000,
                    },
                });
            }
        }
        None
    }
}

impl Workload for MsgServerWorkload {
    fn name(&self) -> &'static str {
        "msgserver-drops"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(MsgServerProgram {
            cfg: self.cfg.clone(),
            fixed: false,
        })
    }

    fn spec(&self) -> Arc<dyn Spec> {
        msgserver_spec(&self.cfg)
    }

    fn root_causes(&self) -> Vec<RootCause> {
        let (num, den) = (self.cfg.slo_num, self.cfg.slo_den);
        vec![
            RootCause::new(
                RC_BUFFER_RACE,
                EXCESS_DROPS,
                "the consumer's stale cursor commit clobbers the compaction's \
                 cursor reset, skipping unprocessed messages",
                move |ctx: &CauseCtx<'_>| {
                    // The harmful clobber direction must be present: the
                    // consumer's commit overwrote the receiver's reset. (The
                    // other order just reprocesses, absorbed by dedup.)
                    let harmful =
                        dd_detect::lost_updates(ctx.trace, ctx.registry, |n| n == "consumed")
                            .iter()
                            .any(|lu| {
                                let name = |t: dd_sim::TaskId| {
                                    ctx.registry
                                        .tasks
                                        .get(t.index())
                                        .map(|m| m.name.as_str())
                                        .unwrap_or("")
                                };
                                name(lu.writer) == "consumer" && name(lu.overwritten) == "receiver"
                            });
                    if !harmful {
                        return false;
                    }
                    // …and the race must account for SLO-breaching loss
                    // beyond what the network dropped.
                    let sent = ctx.io.counter("msgs_sent");
                    let processed = ctx.io.counter("msgs_processed");
                    let net_drops = ctx
                        .trace
                        .count_matching(|e| matches!(e, Event::SendDropped { .. }))
                        as i64;
                    let race_loss = sent - processed - net_drops;
                    race_loss * den > sent * num
                },
            ),
            RootCause::new(
                RC_CONGESTION,
                EXCESS_DROPS,
                "network congestion dropped messages before arrival (outside \
                 the developer's control)",
                move |ctx: &CauseCtx<'_>| {
                    let sent = ctx.io.counter("msgs_sent");
                    let net_drops = ctx
                        .trace
                        .count_matching(|e| matches!(e, Event::SendDropped { .. }))
                        as i64;
                    sent > 0 && net_drops * den > sent * num
                },
            ),
        ]
    }

    fn production(&self) -> RunSetup {
        self.production.clone()
    }

    fn space(&self) -> NondetSpace {
        // Congestion first: the simplest execution synthesising the drop
        // evidence is "the network did it" — §2's deceptive explanation.
        NondetSpace {
            seeds: (0..16).collect(),
            inputs: vec![InputScript::new()],
            envs: vec![
                EnvConfig {
                    drop_per_mille: 120,
                    ..EnvConfig::clean()
                },
                EnvConfig::clean(),
            ],
        }
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(MsgServerProgram {
            cfg: self.cfg.clone(),
            fixed: true,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{run_program, RandomPolicy, RunConfig};

    fn run(fixed: bool, seed: u64, env: EnvConfig) -> dd_sim::RunOutput {
        let cfg = MsgServerConfig::default();
        let run_cfg = RunConfig {
            seed,
            env,
            max_steps: 500_000,
            ..RunConfig::default()
        };
        run_program(
            &MsgServerProgram { cfg, fixed },
            run_cfg,
            Box::new(RandomPolicy::new(seed)),
            vec![],
        )
    }

    #[test]
    fn racy_buffer_drops_for_some_schedule() {
        let spec = msgserver_spec(&MsgServerConfig::default());
        let failing =
            (0..16).filter(|&s| spec.check(&run(false, s, EnvConfig::clean()).io).is_some());
        assert!(failing.count() > 0, "no seed lost messages");
    }

    #[test]
    fn fixed_buffer_never_drops_on_clean_network() {
        let spec = msgserver_spec(&MsgServerConfig::default());
        for seed in 0..12 {
            let out = run(true, seed, EnvConfig::clean());
            let f = spec.check(&out.io);
            assert!(
                f.is_none(),
                "seed {seed}: fixed server dropped: {f:?} (counters {:?})",
                out.io.counters
            );
        }
    }

    #[test]
    fn congestion_also_violates_the_slo() {
        let spec = msgserver_spec(&MsgServerConfig::default());
        let env = EnvConfig {
            drop_per_mille: 120,
            ..EnvConfig::clean()
        };
        let failing = (0..8).filter(|&s| spec.check(&run(true, s, env.clone()).io).is_some());
        assert!(
            failing.count() > 0,
            "congestion at 12% should breach a 5% SLO"
        );
    }

    #[test]
    fn root_cause_predicates_discriminate() {
        let w = MsgServerWorkload::discover(MsgServerConfig::default(), 32)
            .expect("failing seed exists");
        let causes = w.root_causes();
        // The production (clean env) failure is the race, not congestion.
        let s = w.scenario();
        let out = s.execute(&s.original_spec(), vec![]);
        let trace = dd_trace::Trace::from_run(&out);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &out.registry,
            io: &out.io,
        };
        let active: Vec<&str> = causes
            .iter()
            .filter(|c| c.active_in(&ctx))
            .map(|c| c.id)
            .collect();
        assert_eq!(active, vec![RC_BUFFER_RACE]);
    }

    #[test]
    fn congested_run_activates_congestion_cause() {
        let causes = MsgServerWorkload::discover(MsgServerConfig::default(), 32)
            .unwrap()
            .root_causes();
        let env = EnvConfig {
            drop_per_mille: 200,
            ..EnvConfig::clean()
        };
        let out = run(true, 3, env);
        let trace = dd_trace::Trace::from_run(&out);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &out.registry,
            io: &out.io,
        };
        let congestion = causes.iter().find(|c| c.id == RC_CONGESTION).unwrap();
        assert!(congestion.active_in(&ctx));
        let race = causes.iter().find(|c| c.id == RC_BUFFER_RACE).unwrap();
        assert!(!race.active_in(&ctx), "fixed build has no buffer race");
    }
}
