//! The §2 sum example: a program that outputs 5 for inputs 2 and 2.
//!
//! The adder memoises small sums in a lookup table whose initialisation has
//! an off-by-one corruption at entry 4 — so any input pair summing to 4
//! outputs 5. The paper's point: an output-deterministic replayer asked to
//! reproduce "output = 5" may synthesise inputs 1 and 4, whose output 5 is
//! *correct* — no failure, no root cause, debugging fidelity 0.

use dd_core::{snapshot, CauseCtx, FnSpec, RootCause, RunSetup, Spec, Workload};
use dd_replay::NondetSpace;
use dd_sim::{Builder, EnvConfig, InputScript, IoSummary, Program, SimData, Value};
use std::sync::Arc;

/// Failure id: the adder produced a wrong sum.
pub const WRONG_SUM: &str = "sum.wrong-sum";
/// Root cause id: the corrupted lookup-table entry.
pub const RC_CORRUPT_TABLE: &str = "corrupt-sum-table";

/// Size of the memoisation table.
const TABLE_SIZE: i64 = 16;
/// The corrupted entry.
const BAD_ENTRY: i64 = 4;

/// The sum program.
pub struct SumProgram {
    /// Whether the table-initialisation fix is applied.
    pub fixed: bool,
}

impl Program for SumProgram {
    fn name(&self) -> &'static str {
        if self.fixed {
            "sum-fixed"
        } else {
            "sum"
        }
    }

    fn setup(&self, b: &mut Builder<'_>) {
        // The memo table: entry i should hold i. The buggy initialiser
        // corrupts entry 4 (an off-by-one while seeding the carry row).
        let fixed = self.fixed;
        let table: Vec<i64> = (0..TABLE_SIZE)
            .map(|i| if !fixed && i == BAD_ENTRY { i + 1 } else { i })
            .collect();
        let lut = b.var("sum.table", table);
        let operands = b.in_port("operands");
        let out = b.out_port("sum");
        b.spawn("adder", "adder", move |mut ctx| async move {
            loop {
                let a: i64 = match ctx.input(operands, "sum::input_a").await {
                    Ok(v) => v,
                    Err(dd_sim::SimError::InputExhausted(_)) => return Ok(()),
                    Err(e) => return Err(e),
                };
                let bb: i64 = ctx.input(operands, "sum::input_b").await?;
                let naive = a + bb;
                let result = if (0..TABLE_SIZE).contains(&naive) {
                    let table = ctx.read(&lut, "sum::table_lookup").await?;
                    let hit = table[naive as usize];
                    ctx.probe("sum.lut_hit", vec![naive, hit], "sum::table_lookup")
                        .await?;
                    hit
                } else {
                    naive
                };
                ctx.output(out, result, "sum::output").await?;
            }
        });
    }
}

/// Builds the sum I/O specification: each output must equal the sum of the
/// corresponding consumed input pair. The relation is judged over the run's
/// observable behaviour — consumed inputs and emitted outputs.
pub fn sum_spec() -> Arc<dyn Spec> {
    Arc::new(FnSpec::new("sum-correct", |io: &IoSummary| {
        let inputs = io.inputs_on("operands");
        for (i, v) in io.outputs_on("sum").iter().enumerate() {
            let Some(s) = v.as_int() else { continue };
            let (Some(a), Some(b)) = (
                inputs.get(2 * i).and_then(|v| v.as_int()),
                inputs.get(2 * i + 1).and_then(|v| v.as_int()),
            ) else {
                continue;
            };
            if s != a + b {
                return Some(snapshot(WRONG_SUM, format!("{a} + {b} returned {s}"), io));
            }
        }
        None
    }))
}

/// The sum workload: production inputs (2, 2).
pub struct SumWorkload;

impl SumWorkload {
    fn inputs_for(a: i64, b: i64) -> InputScript {
        let mut s = InputScript::new();
        s.push("operands", 0, Value::Int(a));
        s.push("operands", 5, Value::Int(b));
        s
    }
}

impl Workload for SumWorkload {
    fn name(&self) -> &'static str {
        "sum-2plus2"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(SumProgram { fixed: false })
    }

    fn spec(&self) -> Arc<dyn Spec> {
        sum_spec()
    }

    fn root_causes(&self) -> Vec<RootCause> {
        vec![RootCause::new(
            RC_CORRUPT_TABLE,
            WRONG_SUM,
            "memo-table entry corrupted by the off-by-one initialiser",
            |ctx: &CauseCtx<'_>| {
                ctx.trace.probes("sum.lut_hit").iter().any(|(_, v)| {
                    <Vec<i64>>::from_value(v).is_some_and(|p| p.len() == 2 && p[0] != p[1])
                })
            },
        )]
    }

    fn production(&self) -> RunSetup {
        RunSetup {
            seed: 1,
            sched_seed: 1,
            inputs: Self::inputs_for(2, 2),
            env: EnvConfig::clean(),
            max_steps: 10_000,
        }
    }

    fn space(&self) -> NondetSpace {
        // Candidate inputs an inference engine may consider, in search
        // order. (1, 4) precedes (2, 2): both produce output 5, but only
        // (2, 2) is a failure — the §2 over-relaxation trap.
        NondetSpace {
            seeds: vec![0, 1],
            inputs: vec![
                Self::inputs_for(1, 4),
                Self::inputs_for(4, 1),
                Self::inputs_for(2, 3),
                Self::inputs_for(2, 2),
                Self::inputs_for(1, 3),
                Self::inputs_for(3, 3),
            ],
            envs: vec![EnvConfig::clean()],
        }
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(SumProgram { fixed: true }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{run_program, RandomPolicy, RunConfig};

    fn run(fixed: bool, a: i64, b: i64) -> dd_sim::RunOutput {
        let cfg = RunConfig {
            inputs: SumWorkload::inputs_for(a, b),
            ..RunConfig::with_seed(1)
        };
        run_program(
            &SumProgram { fixed },
            cfg,
            Box::new(RandomPolicy::new(1)),
            vec![],
        )
    }

    #[test]
    fn two_plus_two_is_five() {
        let out = run(false, 2, 2);
        assert_eq!(out.io.outputs_on("sum")[0].as_int(), Some(5));
        assert!(sum_spec().check(&out.io).is_some());
    }

    #[test]
    fn one_plus_four_is_five_and_correct() {
        let out = run(false, 1, 4);
        assert_eq!(out.io.outputs_on("sum")[0].as_int(), Some(5));
        assert!(
            sum_spec().check(&out.io).is_none(),
            "1+4=5 is not a failure"
        );
    }

    #[test]
    fn fixed_table_adds_correctly() {
        for (a, b) in [(2, 2), (1, 4), (0, 4), (3, 1), (7, 9)] {
            let out = run(true, a, b);
            assert!(sum_spec().check(&out.io).is_none(), "{a}+{b} failed");
        }
    }

    #[test]
    fn root_cause_predicate_fires_only_on_corrupt_lookups() {
        let w = SumWorkload;
        let causes = w.root_causes();
        let bad = run(false, 2, 2);
        let trace = dd_trace::Trace::from_run(&bad);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &bad.registry,
            io: &bad.io,
        };
        assert!(causes[0].active_in(&ctx));

        let good = run(false, 1, 4);
        let trace = dd_trace::Trace::from_run(&good);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &good.registry,
            io: &good.io,
        };
        assert!(
            !causes[0].active_in(&ctx),
            "1+4 never touches the bad entry"
        );
    }

    #[test]
    fn big_sums_bypass_the_table() {
        let out = run(false, 20, 30);
        assert_eq!(out.io.outputs_on("sum")[0].as_int(), Some(50));
        assert_eq!(out.io.inputs_on("operands").len(), 2);
    }
}
