//! The §3 buffer-overflow example.
//!
//! > "To fix a buffer overflow that crashes the program, a developer may add
//! > a check on the input size and prevent the program from copying the
//! > input into the buffer if it exceeds the buffer's length. This check is
//! > the predicate associated with the fix. Not performing this check …
//! > represents the root cause of the crash."
//!
//! The server copies each request into a fixed 64-byte stack buffer. The
//! buggy build performs no length check: an oversized request smashes the
//! stack and crashes. The fixed build rejects oversized requests — the fix
//! predicate P is exactly `len(input) ≤ capacity`.

use dd_core::{snapshot, CauseCtx, FnSpec, RootCause, RunSetup, Spec, Workload};
use dd_replay::NondetSpace;
use dd_sim::{Builder, EnvConfig, Event, InputScript, IoSummary, Program, SimError, Value};
use std::sync::Arc;

/// Failure id: the request handler crashed.
pub const CRASH: &str = "bufoverflow.crash";
/// Root cause id: the missing input-length check.
pub const RC_MISSING_CHECK: &str = "missing-length-check";

/// The fixed stack buffer's capacity.
pub const CAPACITY: usize = 64;

/// The request-handling program.
pub struct BufOverflowProgram {
    /// Whether the length check is applied.
    pub fixed: bool,
}

impl Program for BufOverflowProgram {
    fn name(&self) -> &'static str {
        if self.fixed {
            "bufoverflow-fixed"
        } else {
            "bufoverflow"
        }
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let fixed = self.fixed;
        let requests = b.in_port("requests");
        let acks = b.out_port("acks");
        let stack = b.var("handler.stack", Vec::<u8>::new());
        b.spawn("handler", "server", move |mut ctx| async move {
            loop {
                let req: Vec<u8> = match ctx.input(requests, "handler::input").await {
                    Ok(r) => r,
                    Err(SimError::InputExhausted(_)) => return Ok(()),
                    Err(e) => return Err(e),
                };
                ctx.probe("bufoverflow.req_len", req.len(), "handler::check")
                    .await?;
                if fixed && req.len() > CAPACITY {
                    // FIX: the predicate P — reject instead of copying.
                    ctx.output(acks, Value::Str("rejected".into()), "handler::reject")
                        .await?;
                    continue;
                }
                // Copy the request into the fixed-size buffer.
                ctx.write(&stack, req.clone(), "handler::copy").await?;
                if req.len() > CAPACITY {
                    // The copy ran past the buffer: stack smashed.
                    return ctx
                        .crash("stack smashed by oversized request", "handler::copy")
                        .await;
                }
                ctx.output(acks, Value::Str("ok".into()), "handler::ack")
                    .await?;
            }
        });
    }
}

/// Builds the overflow specification: the handler must not crash.
pub fn bufoverflow_spec() -> Arc<dyn Spec> {
    Arc::new(FnSpec::new("no-crash", |io: &IoSummary| {
        if io.crashed() {
            Some(snapshot(
                CRASH,
                format!("handler crashed: {}", io.crashes[0].reason),
                io,
            ))
        } else {
            None
        }
    }))
}

/// The overflow workload: one oversized request among normal traffic.
pub struct BufOverflowWorkload;

impl BufOverflowWorkload {
    /// Production inputs: small requests plus one oversized request.
    pub fn production_inputs() -> InputScript {
        let mut s = InputScript::new();
        for i in 0..6u64 {
            s.push(
                "requests",
                10 + i * 20,
                Value::Bytes(vec![7; 24 + i as usize]),
            );
        }
        s.push("requests", 140, Value::Bytes(vec![9; CAPACITY + 33]));
        s.push("requests", 160, Value::Bytes(vec![7; 30]));
        s
    }

    fn small_inputs() -> InputScript {
        let mut s = InputScript::new();
        for i in 0..8u64 {
            s.push("requests", 10 + i * 20, Value::Bytes(vec![7; 20]));
        }
        s
    }
}

impl Workload for BufOverflowWorkload {
    fn name(&self) -> &'static str {
        "bufoverflow"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(BufOverflowProgram { fixed: false })
    }

    fn spec(&self) -> Arc<dyn Spec> {
        bufoverflow_spec()
    }

    fn root_causes(&self) -> Vec<RootCause> {
        vec![RootCause::new(
            RC_MISSING_CHECK,
            CRASH,
            "input copied into the buffer without a length check",
            |ctx: &CauseCtx<'_>| {
                // An oversized request reached the copy.
                ctx.trace.any(|e| match e {
                    Event::Write { site, value, .. } => {
                        site == "handler::copy" && value.byte_size() > CAPACITY as u64 + 4
                    }
                    _ => false,
                })
            },
        )]
    }

    fn production(&self) -> RunSetup {
        RunSetup {
            seed: 1,
            sched_seed: 1,
            inputs: Self::production_inputs(),
            env: EnvConfig::clean(),
            max_steps: 50_000,
        }
    }

    fn space(&self) -> NondetSpace {
        NondetSpace {
            seeds: vec![0, 1, 2, 3],
            inputs: vec![Self::small_inputs(), Self::production_inputs()],
            envs: vec![EnvConfig::clean()],
        }
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(BufOverflowProgram { fixed: true }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_core::Workload;

    fn run(fixed: bool, inputs: InputScript) -> dd_sim::RunOutput {
        let cfg = dd_sim::RunConfig {
            inputs,
            ..dd_sim::RunConfig::with_seed(1)
        };
        dd_sim::run_program(
            &BufOverflowProgram { fixed },
            cfg,
            Box::new(dd_sim::RandomPolicy::new(1)),
            vec![],
        )
    }

    #[test]
    fn oversized_request_crashes_buggy_build() {
        let out = run(false, BufOverflowWorkload::production_inputs());
        assert!(out.io.crashed());
        assert!(bufoverflow_spec().check(&out.io).is_some());
        // Requests after the crash are not acknowledged.
        assert!(out.io.outputs_on("acks").len() < 8);
    }

    #[test]
    fn fixed_build_rejects_and_survives() {
        let out = run(true, BufOverflowWorkload::production_inputs());
        assert!(!out.io.crashed());
        let acks = out.io.outputs_on("acks");
        assert_eq!(acks.len(), 8);
        assert!(acks.iter().any(|v| v.as_str() == Some("rejected")));
    }

    #[test]
    fn small_requests_never_crash() {
        for fixed in [false, true] {
            let out = run(fixed, BufOverflowWorkload::small_inputs());
            assert!(!out.io.crashed());
        }
    }

    #[test]
    fn root_cause_predicate_tracks_the_unchecked_copy() {
        let w = BufOverflowWorkload;
        let cause = &w.root_causes()[0];
        let bad = run(false, BufOverflowWorkload::production_inputs());
        let trace = dd_trace::Trace::from_run(&bad);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &bad.registry,
            io: &bad.io,
        };
        assert!(cause.active_in(&ctx));

        // The fixed build rejects before the copy: predicate is quiet.
        let good = run(true, BufOverflowWorkload::production_inputs());
        let trace = dd_trace::Trace::from_run(&good);
        let ctx = CauseCtx {
            trace: &trace,
            registry: &good.registry,
            io: &good.io,
        };
        assert!(!cause.active_in(&ctx));
    }
}
