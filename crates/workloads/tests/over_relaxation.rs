//! The §2 "perils of over-relaxation" narratives, as executable tests.
//!
//! - TXT-SUM: an output-deterministic replay of the 2+2=5 failure produces
//!   the non-failing execution 1+4=5 → debugging fidelity 0.
//! - TXT-MSG: a failure-deterministic replay of the drop-rate failure finds
//!   a congestion execution instead of the buffer race → fidelity 1/2.

use dd_core::{
    evaluate_model, DebugModel, FailureModel, InferenceBudget, OutputLiteModel, PerfectModel,
    RcseConfig, ValueModel, Workload,
};
use dd_workloads::{
    MsgServerConfig, MsgServerWorkload, SumWorkload, RC_BUFFER_RACE, RC_CONGESTION,
};

#[test]
fn txt_sum_output_determinism_replays_one_plus_four() {
    let w = SumWorkload;
    let (report, recording, replay) =
        evaluate_model(&w, &OutputLiteModel, &InferenceBudget::executions(40));
    // The original run is the 2+2=5 failure.
    assert!(recording.original.failure.is_some());
    // The replayed execution matches the outputs…
    assert!(replay.artifact_satisfied, "outputs should be matchable");
    // …but through inputs (1, 4): same output 5, *not* a failure.
    assert_eq!(replay.io.outputs_on("sum")[0].as_int(), Some(5));
    let inputs: Vec<i64> = replay
        .io
        .inputs_on("operands")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    assert_eq!(inputs, vec![1, 4], "the §2 example verbatim");
    assert!(!replay.reproduced_failure);
    assert_eq!(report.utility.fidelity.df, 0.0, "debugging fidelity is 0");
}

#[test]
fn txt_sum_stronger_models_reproduce_the_failure() {
    let w = SumWorkload;
    for model in [&PerfectModel as &dyn dd_core::DeterminismModel, &ValueModel] {
        let (report, _, replay) = evaluate_model(&w, model, &InferenceBudget::executions(10));
        assert!(
            replay.reproduced_failure,
            "{} must reproduce 2+2=5",
            report.model
        );
        assert_eq!(report.utility.fidelity.df, 1.0);
        assert_eq!(replay.io.outputs_on("sum")[0].as_int(), Some(5));
        let inputs: Vec<i64> = replay
            .io
            .inputs_on("operands")
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(inputs, vec![2, 2]);
    }
}

#[test]
fn txt_msg_failure_determinism_blames_congestion() {
    let w =
        MsgServerWorkload::discover(MsgServerConfig::default(), 32).expect("a racy seed exists");
    let (report, recording, replay) =
        evaluate_model(&w, &FailureModel, &InferenceBudget::executions(40));
    // Original failure: drops caused by the buffer race.
    assert_eq!(
        report.utility.fidelity.original_causes,
        vec![RC_BUFFER_RACE.to_string()]
    );
    assert!(recording.overhead_factor == 1.0);
    // Replay reproduces the drop-rate failure…
    assert!(replay.reproduced_failure, "stop: {:?}", replay.stop);
    // …but explains it with congestion: the developer is deceived.
    assert!(
        report
            .utility
            .fidelity
            .replay_causes
            .contains(&RC_CONGESTION.to_string()),
        "expected congestion, got {:?}",
        report.utility.fidelity.replay_causes
    );
    assert!(!report.utility.fidelity.same_root_cause);
    assert_eq!(report.utility.fidelity.n_causes, 2);
    assert!((report.utility.fidelity.df - 0.5).abs() < 1e-9);
}

#[test]
fn txt_msg_debug_determinism_catches_the_race() {
    let w =
        MsgServerWorkload::discover(MsgServerConfig::default(), 32).expect("a racy seed exists");
    let scenario = w.scenario();
    // Combined code/data selection (§3.1.3): the lockset race detector is
    // armed as a trigger.
    let seeds: Vec<(u64, u64)> = w
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    let model = DebugModel::prepare(&scenario, &seeds, RcseConfig::default());
    let (report, _, replay) = evaluate_model(&w, &model, &InferenceBudget::executions(1));
    assert!(replay.artifact_satisfied, "stop: {:?}", replay.stop);
    assert!(replay.reproduced_failure);
    assert!(
        report.utility.fidelity.same_root_cause,
        "RCSE must reproduce the buffer race, got {:?}",
        report.utility.fidelity.replay_causes
    );
    assert_eq!(report.utility.fidelity.df, 1.0);
}
