//! Search-strategy integration tests: random vs PCT candidate generation,
//! systematic exhaustive vs DPOR exploration, determinism of inference
//! results, and pruned-vs-executed budget accounting.

use dd_replay::{
    enumerate_failures, search_with, InferenceBudget, NondetSpace, Scenario, SearchStrategy,
};
use dd_sim::{Builder, ChanClass, EnvConfig, InputScript, Program};
use std::sync::Arc;

/// A counter whose failure (lost updates) needs a racy interleaving.
struct RacyCounter;

impl Program for RacyCounter {
    fn name(&self) -> &'static str {
        "racy"
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let total = b.var("total", 0i64);
        let out = b.out_port("result");
        let done = b.channel::<i64>("done", ChanClass::Local);
        for i in 0..2 {
            b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                for _ in 0..10 {
                    let v = ctx.read(&total, "w::read").await?;
                    ctx.write(&total, v + 1, "w::write").await?;
                }
                ctx.send(&done, 1, "w::done").await
            });
        }
        b.spawn("r", "g", move |mut ctx| async move {
            for _ in 0..2 {
                ctx.recv(&done, "r::recv").await?;
            }
            let v = ctx.read(&total, "r::read").await?;
            ctx.output(out, v, "r::out").await
        });
    }
}

fn scenario() -> Scenario {
    Scenario {
        program: Arc::new(RacyCounter),
        seed: 3,
        sched_seed: 3,
        inputs: InputScript::new(),
        env: EnvConfig::clean(),
        max_steps: 100_000,
        failure_of: Arc::new(|io| {
            let total = io.outputs_on("result").first().and_then(|v| v.as_int())?;
            (total < 20).then(|| dd_trace::FailureSnapshot {
                failure_id: "lost-updates".into(),
                description: format!("total {total} < 20"),
                crashes: vec![],
                counters: Default::default(),
            })
        }),
        space: NondetSpace::schedules_only(32, InputScript::new()),
    }
}

fn lost_updates(out: &dd_sim::RunOutput) -> bool {
    out.io
        .outputs_on("result")
        .first()
        .and_then(|v| v.as_int())
        .is_some_and(|t| t < 20)
}

#[test]
fn both_strategies_find_the_race() {
    let s = scenario();
    let budget = InferenceBudget::executions(32);
    let random = search_with(&s, &budget, SearchStrategy::Random, None, lost_updates);
    assert!(random.stats.found, "random search should find lost updates");
    let pct = search_with(
        &s,
        &budget,
        SearchStrategy::Pct {
            expected_len: 60,
            depth: 2,
        },
        None,
        lost_updates,
    );
    assert!(pct.stats.found, "PCT search should find lost updates");
}

#[test]
fn search_results_are_deterministic() {
    let s = scenario();
    let budget = InferenceBudget::executions(32);
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::Pct {
            expected_len: 60,
            depth: 2,
        },
    ] {
        let a = search_with(&s, &budget, strategy, None, lost_updates);
        let b = search_with(&s, &budget, strategy, None, lost_updates);
        assert_eq!(a.stats, b.stats, "{strategy:?}");
        assert_eq!(
            a.run.map(|r| r.io),
            b.run.map(|r| r.io),
            "{strategy:?}: accepted runs must be identical"
        );
    }
}

#[test]
fn tick_budget_bounds_the_search() {
    let s = scenario();
    // A tick budget smaller than one run: at most one candidate executes.
    let budget = InferenceBudget::builder()
        .max_executions(100)
        .max_ticks(10)
        .build()
        .expect("valid budget");
    let r = search_with(&s, &budget, SearchStrategy::Random, None, |_| false);
    assert!(r.stats.explored <= 2, "tick budget ignored: {:?}", r.stats);
}

#[test]
fn systematic_strategies_find_the_race() {
    let s = scenario();
    let budget = InferenceBudget::executions(512);
    for strategy in [
        SearchStrategy::Exhaustive { max_depth: 6 },
        SearchStrategy::Dpor { max_depth: 6 },
    ] {
        let r = search_with(&s, &budget, strategy, None, lost_updates);
        assert!(r.stats.found, "{strategy:?} should find lost updates");
        assert!(r.run.is_some() && r.spec.is_some());
    }
}

#[test]
fn dpor_matches_exhaustive_failure_set_with_fewer_runs() {
    let s = scenario();
    let budget = InferenceBudget::executions(4_000);
    let (ex_failures, ex_stats) =
        enumerate_failures(&s, &budget, SearchStrategy::Exhaustive { max_depth: 5 });
    let (po_failures, po_stats) =
        enumerate_failures(&s, &budget, SearchStrategy::Dpor { max_depth: 5 });
    assert!(
        ex_stats.explored < budget.max_executions,
        "exhaustive tree must fit the budget for a fair comparison \
         (executed {})",
        ex_stats.explored
    );
    assert_eq!(po_failures, ex_failures, "DPOR must find the same failures");
    assert!(
        po_stats.explored < ex_stats.explored,
        "DPOR must execute strictly fewer interleavings ({} vs {})",
        po_stats.explored,
        ex_stats.explored
    );
    assert!(po_stats.pruned > 0, "DPOR should report pruned branches");
    assert_eq!(ex_stats.pruned, 0, "exhaustive never prunes");
}

#[test]
fn pruned_branches_do_not_burn_the_execution_budget() {
    let s = scenario();
    // A budget DPOR exhausts: executed interleavings alone must hit the cap.
    let budget = InferenceBudget::executions(8);
    let (_, stats) = enumerate_failures(&s, &budget, SearchStrategy::Dpor { max_depth: 5 });
    assert_eq!(
        stats.explored, 8,
        "executed runs stop exactly at the budget"
    );
    // Pruning is accounted separately from the execution budget: a budget
    // of exactly the executed count must still cover the whole tree. Under
    // the pre-fix conflation, pruned branches would burn budget and the
    // exact-budget run would stop `pruned` executions short.
    let generous = InferenceBudget::executions(4_000);
    let (full_failures, full) =
        enumerate_failures(&s, &generous, SearchStrategy::Dpor { max_depth: 5 });
    assert!(full.pruned > 0, "racy counter must offer pruning");
    assert!(full.explored < generous.max_executions, "tree fits budget");
    let exact = InferenceBudget::executions(full.explored);
    let (exact_failures, capped) =
        enumerate_failures(&s, &exact, SearchStrategy::Dpor { max_depth: 5 });
    assert_eq!(
        capped.explored, full.explored,
        "a budget equal to the executed count must cover the whole tree \
         — pruned branches may not burn it"
    );
    assert_eq!(capped.pruned, full.pruned);
    assert_eq!(exact_failures, full_failures);
}

#[test]
fn systematic_search_is_deterministic() {
    let s = scenario();
    let budget = InferenceBudget::executions(256);
    for strategy in [
        SearchStrategy::Exhaustive { max_depth: 5 },
        SearchStrategy::Dpor { max_depth: 5 },
    ] {
        let a = search_with(&s, &budget, strategy, None, lost_updates);
        let b = search_with(&s, &budget, strategy, None, lost_updates);
        assert_eq!(a.stats, b.stats, "{strategy:?}");
        assert_eq!(
            a.run.map(|r| r.io),
            b.run.map(|r| r.io),
            "{strategy:?}: accepted runs must be identical"
        );
    }
}

#[test]
fn budget_strategy_drives_plain_search() {
    let s = scenario();
    let budget = InferenceBudget::dpor(512, 6);
    let r = dd_replay::search(&s, &budget, None, lost_updates);
    assert!(r.stats.found, "budget-selected DPOR should find the race");
    let spec = r.spec.unwrap();
    assert!(
        matches!(spec.policy, dd_replay::PolicyChoice::Prefix(..)),
        "systematic strategies produce prefix-forced specs"
    );
}

/// Checkpointed (fork-based) DFS is an *execution strategy*, not a search
/// strategy: it must visit the same interleavings in the same order, find
/// the same failures, and prune the same branches as from-scratch DFS —
/// while executing fewer kernel operations once the branching horizon is
/// deep enough for prefixes to carry real work.
#[test]
fn checkpointed_dfs_matches_scratch_dfs_exactly() {
    let s = scenario();
    for strategy in [
        SearchStrategy::Exhaustive { max_depth: 24 },
        SearchStrategy::Dpor { max_depth: 24 },
    ] {
        let budget = InferenceBudget::executions(120);
        let (scratch_failures, scratch) = enumerate_failures(&s, &budget, strategy);
        let (ck_failures, ck) = enumerate_failures(&s, &budget.with_checkpoints(1), strategy);
        assert_eq!(
            ck_failures, scratch_failures,
            "{strategy:?}: failure sets diverged"
        );
        assert_eq!(
            ck.explored, scratch.explored,
            "{strategy:?}: walk order changed"
        );
        assert_eq!(ck.pruned, scratch.pruned, "{strategy:?}: pruning changed");
        // Scratch and checkpointed walks cover the same interleavings, so
        // executed + skipped must equal scratch's executed total.
        assert_eq!(
            ck.steps_executed + ck.steps_skipped,
            scratch.steps_executed,
            "{strategy:?}: step accounting inconsistent"
        );
        assert!(
            ck.steps_skipped > 0,
            "{strategy:?}: nothing was skipped at depth 24"
        );
        let ck_speedup = ck.replay_speedup().expect("depth 24 executes live steps");
        assert!(ck_speedup > 1.0);
        assert_eq!(scratch.replay_speedup(), Some(1.0));
    }
}

/// The snapshot-interval policy trades snapshot count for restore depth:
/// any interval must leave the walk's results untouched.
#[test]
fn snapshot_interval_does_not_change_results() {
    let s = scenario();
    let strategy = SearchStrategy::Exhaustive { max_depth: 16 };
    let base = enumerate_failures(&s, &InferenceBudget::executions(80), strategy);
    for interval in [1u64, 2, 5] {
        let ck = enumerate_failures(
            &s,
            &InferenceBudget::executions(80).with_checkpoints(interval),
            strategy,
        );
        assert_eq!(ck.0, base.0, "interval {interval}: failure set changed");
        assert_eq!(ck.1.explored, base.1.explored);
        assert_eq!(
            ck.1.steps_executed + ck.1.steps_skipped,
            base.1.steps_executed,
            "interval {interval}"
        );
    }
}

/// A found run from a checkpointed search must carry a spec that reproduces
/// it from scratch (the returned prefix is always the full one).
#[test]
fn checkpointed_search_returns_scratch_reproducible_specs() {
    let s = scenario();
    let budget = InferenceBudget::executions(200).with_checkpoints(1);
    let found = search_with(
        &s,
        &budget,
        SearchStrategy::Exhaustive { max_depth: 24 },
        None,
        |out| {
            out.io
                .outputs_on("result")
                .first()
                .and_then(|v| v.as_int())
                .is_some_and(|t| t < 20)
        },
    );
    assert!(
        found.stats.found,
        "racy counter must lose updates somewhere"
    );
    let run = found.run.expect("accepting run returned");
    let spec = found.spec.expect("accepting spec returned");
    // Re-execute the spec from scratch: identical observable behaviour.
    let again = s.execute(&spec, vec![]);
    assert_eq!(again.io, run.io);
    assert_eq!(again.decisions, run.decisions);
}

/// The parallel determinism contract at the unit level: `DporParallel`
/// returns the byte-identical failure set *and statistics* as sequential
/// `Dpor`, for every worker count, with and without checkpointing — the
/// coordinator charges every consumed run against its canonical snapshot
/// pool, so even `steps_executed`/`steps_skipped`/`ticks` are
/// worker-count-invariant.
#[test]
fn parallel_dpor_is_byte_identical_to_sequential_dpor() {
    let s = scenario();
    for interval in [0u64, 1, 3] {
        let budget = InferenceBudget::executions(120).with_checkpoints(interval);
        let (seq_failures, seq) =
            enumerate_failures(&s, &budget, SearchStrategy::Dpor { max_depth: 24 });
        for workers in [1u32, 2, 4, 7] {
            let (par_failures, par) = enumerate_failures(
                &s,
                &budget,
                SearchStrategy::DporParallel {
                    max_depth: 24,
                    workers,
                },
            );
            assert_eq!(
                par_failures, seq_failures,
                "interval {interval}, {workers} workers: failure set diverged"
            );
            assert_eq!(
                par, seq,
                "interval {interval}, {workers} workers: statistics diverged"
            );
        }
    }
}

/// A parallel search that *finds* a run must return the same accepting run,
/// spec and `found_at` position as the sequential search.
#[test]
fn parallel_search_finds_the_same_run_as_sequential() {
    let s = scenario();
    let budget = InferenceBudget::executions(200).with_checkpoints(1);
    let seq = search_with(
        &s,
        &budget,
        SearchStrategy::Dpor { max_depth: 24 },
        None,
        lost_updates,
    );
    let par = search_with(
        &s,
        &budget,
        SearchStrategy::DporParallel {
            max_depth: 24,
            workers: 4,
        },
        None,
        lost_updates,
    );
    assert!(seq.stats.found, "sequential search must find lost updates");
    assert_eq!(par.stats, seq.stats);
    let (seq_run, par_run) = (seq.run.expect("seq run"), par.run.expect("par run"));
    assert_eq!(par_run.io, seq_run.io);
    assert_eq!(par_run.decisions, seq_run.decisions);
}

/// `DporParallel { workers: 0 }` defers to `InferenceBudget::workers`, and
/// the budget-level constructor wires depth, checkpointing and the pool
/// size together.
#[test]
fn deferred_worker_count_reads_the_budget() {
    let s = scenario();
    let budget = InferenceBudget::dpor_parallel(80, 24, 3);
    assert_eq!(budget.workers, 3);
    assert_eq!(
        budget.checkpoint_interval,
        InferenceBudget::DEFAULT_CHECKPOINT_INTERVAL
    );
    let par = search_with(&s, &budget, budget.strategy, None, lost_updates);
    let seq = search_with(
        &s,
        &budget,
        SearchStrategy::Dpor { max_depth: 24 },
        None,
        lost_updates,
    );
    assert_eq!(par.stats, seq.stats);
}
