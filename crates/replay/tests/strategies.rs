//! Search-strategy integration tests: random vs PCT candidate generation,
//! determinism of inference results.

use dd_replay::{search_with, InferenceBudget, NondetSpace, Scenario, SearchStrategy};
use dd_sim::{Builder, ChanClass, EnvConfig, InputScript, Program};
use std::sync::Arc;

/// A counter whose failure (lost updates) needs a racy interleaving.
struct RacyCounter;

impl Program for RacyCounter {
    fn name(&self) -> &'static str {
        "racy"
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let total = b.var("total", 0i64);
        let out = b.out_port("result");
        let done = b.channel::<i64>("done", ChanClass::Local);
        for i in 0..2 {
            b.spawn(&format!("w{i}"), "g", move |ctx| {
                for _ in 0..10 {
                    let v = ctx.read(&total, "w::read")?;
                    ctx.write(&total, v + 1, "w::write")?;
                }
                ctx.send(&done, 1, "w::done")
            });
        }
        b.spawn("r", "g", move |ctx| {
            for _ in 0..2 {
                ctx.recv(&done, "r::recv")?;
            }
            let v = ctx.read(&total, "r::read")?;
            ctx.output(out, v, "r::out")
        });
    }
}

fn scenario() -> Scenario {
    Scenario {
        program: Arc::new(RacyCounter),
        seed: 3,
        sched_seed: 3,
        inputs: InputScript::new(),
        env: EnvConfig::clean(),
        max_steps: 100_000,
        failure_of: Arc::new(|_| None),
        space: NondetSpace::schedules_only(32, InputScript::new()),
    }
}

fn lost_updates(out: &dd_sim::RunOutput) -> bool {
    out.io
        .outputs_on("result")
        .first()
        .and_then(|v| v.as_int())
        .is_some_and(|t| t < 20)
}

#[test]
fn both_strategies_find_the_race() {
    let s = scenario();
    let budget = InferenceBudget::executions(32);
    let random = search_with(&s, &budget, SearchStrategy::Random, None, lost_updates);
    assert!(random.stats.found, "random search should find lost updates");
    let pct = search_with(
        &s,
        &budget,
        SearchStrategy::Pct {
            expected_len: 60,
            depth: 2,
        },
        None,
        lost_updates,
    );
    assert!(pct.stats.found, "PCT search should find lost updates");
}

#[test]
fn search_results_are_deterministic() {
    let s = scenario();
    let budget = InferenceBudget::executions(32);
    for strategy in [
        SearchStrategy::Random,
        SearchStrategy::Pct {
            expected_len: 60,
            depth: 2,
        },
    ] {
        let a = search_with(&s, &budget, strategy, None, lost_updates);
        let b = search_with(&s, &budget, strategy, None, lost_updates);
        assert_eq!(a.stats, b.stats, "{strategy:?}");
        assert_eq!(
            a.run.map(|r| r.io),
            b.run.map(|r| r.io),
            "{strategy:?}: accepted runs must be identical"
        );
    }
}

#[test]
fn tick_budget_bounds_the_search() {
    let s = scenario();
    // A tick budget smaller than one run: at most one candidate executes.
    let budget = InferenceBudget {
        max_executions: 100,
        max_ticks: 10,
    };
    let r = search_with(&s, &budget, SearchStrategy::Random, None, |_| false);
    assert!(r.stats.explored <= 2, "tick budget ignored: {:?}", r.stats);
}
