//! The baseline determinism models as recorder/replayer pairs.
//!
//! Each model implements [`DeterminismModel`]: `record` runs the production
//! execution with that model's recorder attached (paying its overhead), and
//! `replay` produces an execution from the artifact alone — by exact
//! re-execution where the artifact allows it, by value feeding for value
//! determinism, and by bounded search (standing in for symbolic inference)
//! for the ultra-relaxed models.

use crate::explorer::{search, search_with, InferenceBudget, InferenceStats, SearchStrategy};
use crate::guided::{
    pinned_completion_digest, racing_outcomes, GuidedOrderPolicy, OrderCostObserver, OrderEntry,
    OrderLog, OrderRecorder, OutcomeFeed, PinSet,
};
use crate::recordings::{costs, Artifact, CrewObserver, ModelKind, OriginalRun, Recording};
use crate::scenario::{NondetSpace, PolicyChoice, RunSpec, Scenario};
use dd_detect::HbRaceDetector;
use dd_sim::{EnvConfig, InputScript, IoSummary, Observer, RunOutput, StopReason};
use dd_trace::{
    FailureSnapshot, InputRecorder, LogStats, OutputRecorder, ScheduleRecorder, Trace,
    ValueRecorder,
};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;

/// The execution a replayer produced, with fidelity bookkeeping.
#[derive(Debug)]
pub struct ReplayResult {
    /// Observable behaviour of the replayed execution.
    pub io: IoSummary,
    /// Analysis trace of the replayed execution.
    pub trace: Trace,
    /// Name tables of the replayed execution.
    pub registry: dd_sim::Registry,
    /// How the replayed execution stopped.
    pub stop: StopReason,
    /// Failure verdict of the replayed execution.
    pub failure: Option<FailureSnapshot>,
    /// Whether the replay exhibits the same failure as the original.
    pub reproduced_failure: bool,
    /// Whether the recorded artifact's constraints hold on the replayed
    /// execution (e.g. outputs match, schedule replayed without divergence).
    pub artifact_satisfied: bool,
    /// Inference search statistics (zero for non-inference models).
    pub inference: InferenceStats,
    /// Execution ticks of the replayed run itself.
    pub replay_ticks: u64,
    /// Value-feed divergences (value determinism only).
    pub value_divergences: u64,
}

/// A determinism model: a recording scheme plus a replay procedure.
pub trait DeterminismModel: Send + Sync {
    /// Which model this is.
    fn kind(&self) -> ModelKind;

    /// Runs the production execution, recording under this model.
    fn record(&self, scenario: &Scenario) -> Recording;

    /// Produces a replay execution from the artifact.
    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult;
}

/// Returns the failure id of a run, per the scenario's oracle.
fn failure_of(scenario: &Scenario, io: &IoSummary) -> Option<FailureSnapshot> {
    (scenario.failure_of)(io)
}

fn same_failure(original: &Option<FailureSnapshot>, replayed: &Option<FailureSnapshot>) -> bool {
    match (original, replayed) {
        (Some(a), Some(b)) => a.failure_id == b.failure_id,
        (None, None) => true,
        _ => false,
    }
}

fn original_run(scenario: &Scenario, out: &RunOutput) -> OriginalRun {
    OriginalRun {
        io: out.io.clone(),
        trace: Trace::from_run(out),
        registry: out.registry.clone(),
        stop: out.stop.clone(),
        failure: failure_of(scenario, &out.io),
        duration: out.stats.exec_ticks,
    }
}

fn replay_result_from_run(
    scenario: &Scenario,
    recording: &Recording,
    out: RunOutput,
    artifact_satisfied: bool,
    inference: InferenceStats,
    value_divergences: u64,
) -> ReplayResult {
    let failure = failure_of(scenario, &out.io);
    let reproduced_failure = same_failure(&recording.original.failure, &failure);
    ReplayResult {
        trace: Trace::from_run(&out),
        registry: out.registry.clone(),
        stop: out.stop.clone(),
        replay_ticks: out.stats.exec_ticks,
        io: out.io,
        failure,
        reproduced_failure,
        artifact_satisfied,
        inference,
        value_divergences,
    }
}

// ---------------------------------------------------------------------------
// Perfect determinism (SMP-ReVirt-style CREW)
// ---------------------------------------------------------------------------

/// Checkpoint cadence of recording runs: coarse (every 8th decision, first
/// 128 decisions) — enough for artifacts to advertise intermediate replay
/// starting points without cloning the world on every decision.
pub const RECORDING_CHECKPOINTS: dd_sim::CheckpointPlan = dd_sim::CheckpointPlan {
    every: 8,
    max_decision: 128,
};

/// Perfect determinism: records the full interleaving, inputs and
/// environment, paying a CREW ownership-transfer penalty on every cross-CPU
/// shared access. Replay is exact re-execution.
#[derive(Debug, Default)]
pub struct PerfectModel;

impl DeterminismModel for PerfectModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Perfect
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let observers: Vec<Box<dyn Observer>> = vec![
            Box::new(CrewObserver::new()),
            Box::new(ScheduleRecorder::new(costs::SCHEDULE)),
            Box::new(InputRecorder::new(costs::INPUT)),
        ];
        // The recording run checkpoints at a coarse cadence so the artifact
        // records where resumable replay starting points exist (the
        // availability-guarantee idea: replay need not start from the first
        // instruction). Snapshot collection never perturbs the trace.
        let mut out = scenario.execute_checkpointed(
            &scenario.original_spec(),
            RECORDING_CHECKPOINTS,
            observers,
        );
        let snapshots = std::mem::take(&mut out.snapshots);
        let schedule = {
            let rec = out
                .observer_mut::<ScheduleRecorder>()
                .expect("schedule recorder attached");
            rec.absorb_epochs(&snapshots);
            rec.take_log()
        };
        let input_rec = out
            .observer::<InputRecorder>()
            .expect("input recorder attached");
        let inputs = input_rec.to_log(&out.registry);
        let mut log = out
            .observer::<ScheduleRecorder>()
            .expect("attached")
            .stats();
        log.merge(input_rec.stats());
        Recording {
            model: ModelKind::Perfect,
            artifact: Artifact::Perfect {
                schedule,
                inputs,
                env: scenario.env.clone(),
                seed: scenario.seed,
            },
            overhead_factor: out.stats.overhead_factor(),
            log,
            original: original_run(scenario, &out),
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        _budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::Perfect {
            schedule,
            inputs,
            env,
            seed,
        } = &recording.artifact
        else {
            panic!("perfect replay requires a perfect artifact");
        };
        let spec = RunSpec {
            seed: *seed,
            policy: PolicyChoice::Replay(schedule.clone()),
            inputs: inputs.to_script(),
            env: env.clone(),
        };
        let out = scenario.execute(&spec, vec![]);
        let satisfied = !matches!(out.stop, StopReason::ReplayDivergence { .. });
        replay_result_from_run(
            scenario,
            recording,
            out,
            satisfied,
            InferenceStats::default(),
            0,
        )
    }
}

// ---------------------------------------------------------------------------
// Value determinism (iDNA)
// ---------------------------------------------------------------------------

/// Value determinism: logs every value each task observes (reads, receives,
/// inputs, RNG draws). Replay feeds the logs back per task under an
/// arbitrary schedule — cross-CPU causal order is *not* reproduced, exactly
/// as in iDNA.
#[derive(Debug, Default)]
pub struct ValueModel;

impl DeterminismModel for ValueModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Value
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let observers: Vec<Box<dyn Observer>> = vec![Box::new(ValueRecorder::new(costs::VALUE))];
        let mut out = scenario.execute(&scenario.original_spec(), observers);
        let rec = out
            .observer_mut::<ValueRecorder>()
            .expect("value recorder attached");
        let log = rec.stats();
        let values = rec.take_log();
        Recording {
            model: ModelKind::Value,
            artifact: Artifact::Value { values },
            overhead_factor: out.stats.overhead_factor(),
            log,
            original: original_run(scenario, &out),
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        _budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::Value { values } = &recording.artifact else {
            panic!("value replay requires a value artifact");
        };
        let (cursor, stats) = values.clone().into_cursor();
        let spec = RunSpec {
            // The schedule and environment are deliberately arbitrary: value
            // determinism guarantees nothing about them.
            seed: 0x1D0_5EED,
            policy: PolicyChoice::Random(0xFEED_FACE),
            inputs: InputScript::new(),
            env: EnvConfig::clean(),
        };
        let out = scenario.execute_with_override(&spec, vec![], Some(Box::new(cursor)));
        let divergences = stats.divergences();
        replay_result_from_run(
            scenario,
            recording,
            out,
            divergences == 0,
            InferenceStats::default(),
            divergences,
        )
    }
}

// ---------------------------------------------------------------------------
// Output determinism (ODR)
// ---------------------------------------------------------------------------

/// Output determinism, lightweight scheme: records outputs only and infers
/// *everything* else (inputs, schedule, environment) by search.
#[derive(Debug, Default)]
pub struct OutputLiteModel;

/// Output determinism, heavier scheme: additionally records inputs, leaving
/// only schedule and environment to inference — trading recording overhead
/// for tractable inference, as ODR does.
#[derive(Debug, Default)]
pub struct OutputHeavyModel;

fn record_outputs(scenario: &Scenario, with_inputs: bool) -> Recording {
    let mut observers: Vec<Box<dyn Observer>> = vec![Box::new(OutputRecorder::new(costs::OUTPUT))];
    if with_inputs {
        observers.push(Box::new(InputRecorder::new(costs::INPUT)));
    }
    let out = scenario.execute(&scenario.original_spec(), observers);
    let out_rec = out
        .observer::<OutputRecorder>()
        .expect("output recorder attached");
    let outputs = out_rec.to_log(&out.registry);
    let mut log = out_rec.stats();
    let artifact = if with_inputs {
        let input_rec = out
            .observer::<InputRecorder>()
            .expect("input recorder attached");
        log.merge(input_rec.stats());
        Artifact::OutputHeavy {
            outputs,
            inputs: input_rec.to_log(&out.registry),
        }
    } else {
        Artifact::OutputLite { outputs }
    };
    Recording {
        model: if with_inputs {
            ModelKind::OutputHeavy
        } else {
            ModelKind::OutputLite
        },
        artifact,
        overhead_factor: out.stats.overhead_factor(),
        log,
        original: original_run(scenario, &out),
    }
}

fn replay_outputs(
    scenario: &Scenario,
    recording: &Recording,
    budget: &InferenceBudget,
    outputs: &dd_trace::OutputLog,
    fixed_inputs: Option<&InputScript>,
) -> ReplayResult {
    let result = search(scenario, budget, fixed_inputs, |out| {
        outputs.matches(&out.io)
    });
    match result.run {
        Some(out) => replay_result_from_run(scenario, recording, out, true, result.stats, 0),
        None => {
            // Inference failed within budget: produce a best-effort run so
            // the developer still gets *an* execution, flagged unsatisfied.
            let spec = RunSpec {
                seed: 0,
                policy: PolicyChoice::Random(0),
                inputs: fixed_inputs.cloned().unwrap_or_default(),
                env: EnvConfig::clean(),
            };
            let out = scenario.execute(&spec, vec![]);
            replay_result_from_run(scenario, recording, out, false, result.stats, 0)
        }
    }
}

impl DeterminismModel for OutputLiteModel {
    fn kind(&self) -> ModelKind {
        ModelKind::OutputLite
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        record_outputs(scenario, false)
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::OutputLite { outputs } = &recording.artifact else {
            panic!("output-lite replay requires an output artifact");
        };
        replay_outputs(scenario, recording, budget, outputs, None)
    }
}

impl DeterminismModel for OutputHeavyModel {
    fn kind(&self) -> ModelKind {
        ModelKind::OutputHeavy
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        record_outputs(scenario, true)
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::OutputHeavy { outputs, inputs } = &recording.artifact else {
            panic!("output-heavy replay requires an output+input artifact");
        };
        let script = inputs.to_script();
        replay_outputs(scenario, recording, budget, outputs, Some(&script))
    }
}

// ---------------------------------------------------------------------------
// Order-guided determinism (MsgOrder / RaceComplete)
// ---------------------------------------------------------------------------

/// Runs the production execution with the scheduling policy wrapped in an
/// [`OrderRecorder`] over the given pin set, returning the run plus the
/// recorded grant log.
fn record_grants(
    scenario: &Scenario,
    pin: PinSet,
    observers: Vec<Box<dyn Observer>>,
) -> (RunOutput, Vec<OrderEntry>) {
    let grants = Arc::new(Mutex::new(Vec::new()));
    let spec = scenario.original_spec();
    let policy = Box::new(OrderRecorder::new(
        spec.policy.build(),
        pin,
        Arc::clone(&grants),
    ));
    let out = scenario.execute_with_policy(&spec, policy, observers);
    let entries = std::mem::take(&mut *grants.lock());
    (out, entries)
}

/// Replays an order log under a [`GuidedOrderPolicy`]; returns the run and
/// whether the log was consumed exactly (no divergence, no forced-grant
/// drift, no leftover entries).
fn replay_guided(
    scenario: &Scenario,
    order: &OrderLog,
    pin: PinSet,
    inputs: &dd_trace::InputLog,
    env: &EnvConfig,
    seed: u64,
) -> (RunOutput, bool) {
    let (policy, handle) = GuidedOrderPolicy::new(order, pin);
    let spec = RunSpec {
        seed,
        // Unused: the guided policy is attached directly.
        policy: PolicyChoice::RoundRobin,
        inputs: inputs.to_script(),
        env: env.clone(),
    };
    let out = scenario.execute_with_policy(&spec, Box::new(policy), vec![]);
    let clean = !matches!(out.stop, StopReason::ReplayDivergence { .. }) && handle.fully_consumed();
    (out, clean)
}

/// Message-order determinism (Aumayr et al.): records the order in which
/// the scheduler granted operations (2-byte run-length-encoded task runs —
/// no candidate sets, no value payloads, no CREW ownership machinery) plus
/// inputs. Under the simulator's shared per-operation clock the grant order
/// *is* the receive order of every nondeterminism source, so guided replay
/// is time-faithful and exact; the model's separation from Perfect is the
/// recording cost, not the fidelity.
#[derive(Debug, Default)]
pub struct MsgOrderModel;

impl DeterminismModel for MsgOrderModel {
    fn kind(&self) -> ModelKind {
        ModelKind::MsgOrder
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let observers: Vec<Box<dyn Observer>> = vec![
            Box::new(OrderCostObserver::new(costs::MSG_ORDER, PinSet::Total)),
            Box::new(InputRecorder::new(costs::INPUT)),
        ];
        let (out, entries) = record_grants(scenario, PinSet::Total, observers);
        let order = OrderLog { entries };
        let input_rec = out
            .observer::<InputRecorder>()
            .expect("input recorder attached");
        let inputs = input_rec.to_log(&out.registry);
        let mut log = order.stats();
        log.merge(input_rec.stats());
        Recording {
            model: ModelKind::MsgOrder,
            artifact: Artifact::MsgOrder {
                order,
                inputs,
                env: scenario.env.clone(),
                seed: scenario.seed,
            },
            overhead_factor: out.stats.overhead_factor(),
            log,
            original: original_run(scenario, &out),
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        _budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::MsgOrder {
            order,
            inputs,
            env,
            seed,
        } = &recording.artifact
        else {
            panic!("msg-order replay requires a msg-order artifact");
        };
        let (out, clean) = replay_guided(scenario, order, PinSet::Total, inputs, env, *seed);
        replay_result_from_run(
            scenario,
            recording,
            out,
            clean,
            InferenceStats::default(),
            0,
        )
    }
}

/// Race-complete determinism (Guo et al.): an online vector-clock pass
/// flags every racing variable; the recording keeps the race report, the
/// outcomes of racing accesses, and the grant order of the racing pin set.
/// Accesses to race-free variables are *not* recorded — their order is
/// happens-before-determined by the pinned operations, so guided replay
/// reconstructs it; if that ever drifts, a DPOR prefix search over the
/// recorded seed/inputs/environment re-finds an interleaving matching the
/// pinned completion order and the racing outcomes.
#[derive(Debug, Default)]
pub struct RaceCompleteModel;

impl DeterminismModel for RaceCompleteModel {
    fn kind(&self) -> ModelKind {
        ModelKind::RaceComplete
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let observers: Vec<Box<dyn Observer>> = vec![
            Box::new(HbRaceDetector::with_cost(costs::RACE_DETECT_ACCESS)),
            Box::new(OrderCostObserver::new(
                costs::RACE_COMPLETE,
                PinSet::NonLocal,
            )),
            Box::new(InputRecorder::new(costs::INPUT)),
        ];
        let (out, entries) = record_grants(scenario, PinSet::NonLocal, observers);
        let races = out
            .observer::<HbRaceDetector>()
            .expect("race detector attached")
            .races()
            .to_vec();
        let pin = PinSet::racing(&races);
        let racing: BTreeSet<u32> = races.iter().map(|r| r.var.0).collect();
        // A race-free execution needs no order log: the digest still pins
        // the channel/lock/io completion order, and any divergence from it
        // is recovered by the constrained search at replay time. This keeps
        // the artifact input-only on race-free workloads, like Perfect's.
        let order = if races.is_empty() {
            OrderLog::default()
        } else {
            OrderLog { entries }.retain_pinned(&pin)
        };
        let trace = Trace::from_run(&out);
        let outcomes = racing_outcomes(&trace, &racing);
        let order_digest = pinned_completion_digest(&trace, &pin);
        let input_rec = out
            .observer::<InputRecorder>()
            .expect("input recorder attached");
        let inputs = input_rec.to_log(&out.registry);
        let mut log = order.stats();
        log.merge(LogStats {
            records: races.len() as u64 + outcomes.len() as u64,
            bytes: races.len() as u64 * costs::RACE_REPORT_BYTES
                + outcomes.len() as u64 * costs::RACE_OUTCOME_BYTES,
        });
        log.merge(input_rec.stats());
        Recording {
            model: ModelKind::RaceComplete,
            artifact: Artifact::RaceComplete {
                races,
                outcomes,
                order,
                order_digest,
                inputs,
                env: scenario.env.clone(),
                seed: scenario.seed,
            },
            overhead_factor: out.stats.overhead_factor(),
            log,
            original: original_run(scenario, &out),
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::RaceComplete {
            races,
            outcomes,
            order,
            order_digest,
            inputs,
            env,
            seed,
        } = &recording.artifact
        else {
            panic!("race-complete replay requires a race-complete artifact");
        };
        let pin = PinSet::racing(races);
        let racing: BTreeSet<u32> = races.iter().map(|r| r.var.0).collect();
        let satisfies = |out: &RunOutput| {
            let trace = Trace::from_run(out);
            pinned_completion_digest(&trace, &pin) == *order_digest
                && racing_outcomes(&trace, &racing) == *outcomes
        };

        // Primary path: guided re-execution from the order log. Race-free
        // recordings carry no order log — any deterministic schedule under
        // the recorded seed/inputs/env is a candidate, judged by the digest.
        let (out, clean) = if races.is_empty() {
            let spec = RunSpec {
                seed: *seed,
                policy: PolicyChoice::Random(0x0C0_FEED),
                inputs: inputs.to_script(),
                env: env.clone(),
            };
            (scenario.execute(&spec, vec![]), true)
        } else {
            replay_guided(scenario, order, pin.clone(), inputs, env, *seed)
        };
        let mut stats = InferenceStats::default();
        stats.charge_run(&out);
        if clean && satisfies(&out) {
            stats.found = true;
            stats.found_at = Some(0);
            return replay_result_from_run(scenario, recording, out, true, stats, 0);
        }

        // Fallback: DPOR prefix search over the recorded configuration,
        // constrained by the pinned completion order and racing outcomes.
        let strategy = match budget.strategy {
            s @ (SearchStrategy::Exhaustive { .. }
            | SearchStrategy::Dpor { .. }
            | SearchStrategy::DporParallel { .. }) => s,
            _ => SearchStrategy::Dpor { max_depth: 8 },
        };
        let constrained = Scenario {
            space: NondetSpace {
                seeds: vec![*seed],
                inputs: vec![],
                envs: vec![env.clone()],
            },
            ..scenario.clone()
        };
        let script = inputs.to_script();
        let result = search_with(&constrained, budget, strategy, Some(&script), satisfies);
        stats.explored += result.stats.explored;
        stats.pruned += result.stats.pruned;
        stats.ticks += result.stats.ticks;
        stats.steps_executed += result.stats.steps_executed;
        stats.steps_skipped += result.stats.steps_skipped;
        stats.found = result.stats.found;
        stats.found_at = result.stats.found_at.map(|i| i + 1);
        if let Some(found) = result.run {
            return replay_result_from_run(scenario, recording, found, true, stats, 0);
        }
        if outcomes.is_empty() {
            // Nothing to feed: the search exhausted its budget without
            // matching the recorded completion digest.
            return replay_result_from_run(scenario, recording, out, false, stats, 0);
        }

        // Last resort, for time-driven programs where no search budget will
        // re-find the exact global interleaving: re-deliver the recorded
        // racing-read outcomes directly (Guo et al.'s core observation —
        // the failure depends on what the racing reads observed, which the
        // artifact carries). Race-free reads execute live; the artifact is
        // satisfied when every recorded racing read was re-delivered.
        let (feed, handle) = OutcomeFeed::new(outcomes);
        let spec = RunSpec {
            seed: *seed,
            // Arbitrary deterministic schedule: the racing outcomes, not
            // the interleaving, carry the recorded nondeterminism.
            policy: PolicyChoice::Random(0x0C0_FEED),
            inputs: inputs.to_script(),
            env: env.clone(),
        };
        let fed = scenario.execute_with_override(&spec, vec![], Some(Box::new(feed)));
        stats.charge_run(&fed);
        let satisfied = handle.fully_consumed();
        stats.found = satisfied;
        if satisfied {
            stats.found_at = Some(stats.explored - 1);
        }
        replay_result_from_run(scenario, recording, fed, satisfied, stats, 0)
    }
}

// ---------------------------------------------------------------------------
// Failure determinism (ESD)
// ---------------------------------------------------------------------------

/// Failure determinism: records nothing at runtime; the artifact is the
/// failure evidence (bug report / core dump). Replay synthesises *some*
/// execution exhibiting the same failure — which root cause it exhibits is
/// unconstrained.
#[derive(Debug, Default)]
pub struct FailureModel;

impl DeterminismModel for FailureModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Failure
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let out = scenario.execute(&scenario.original_spec(), vec![]);
        let snapshot = failure_of(scenario, &out.io).unwrap_or_default();
        Recording {
            model: ModelKind::Failure,
            artifact: Artifact::Failure { snapshot },
            // No recording: the production run is native speed.
            overhead_factor: 1.0,
            log: LogStats::default(),
            original: original_run(scenario, &out),
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::Failure { snapshot } = &recording.artifact else {
            panic!("failure replay requires a failure artifact");
        };
        let want = snapshot.failure_id.clone();
        let result = search(scenario, budget, None, |out| {
            match failure_of(scenario, &out.io) {
                Some(f) => f.failure_id == want,
                None => want.is_empty(),
            }
        });
        match result.run {
            Some(out) => replay_result_from_run(scenario, recording, out, true, result.stats, 0),
            None => {
                let spec = RunSpec {
                    seed: 0,
                    policy: PolicyChoice::Random(0),
                    inputs: InputScript::new(),
                    env: EnvConfig::clean(),
                };
                let out = scenario.execute(&spec, vec![]);
                replay_result_from_run(scenario, recording, out, false, result.stats, 0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NondetSpace;
    use dd_sim::{Builder, ChanClass, Program};
    use std::sync::Arc;

    /// Two adders racing on a shared total; spec says the final total must
    /// equal 2×iters.
    struct RacyCounter;
    impl Program for RacyCounter {
        fn name(&self) -> &'static str {
            "racy_counter"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let total = b.var("total", 0i64);
            let out = b.out_port("result");
            let done = b.channel::<i64>("done", ChanClass::Local);
            for i in 0..2 {
                b.spawn(&format!("adder{i}"), "workers", move |mut ctx| async move {
                    for _ in 0..8 {
                        let v = ctx.read(&total, "adder::read").await?;
                        ctx.write(&total, v + 1, "adder::write").await?;
                    }
                    ctx.send(&done, 1, "adder::done").await
                });
            }
            b.spawn("reporter", "main", move |mut ctx| async move {
                for _ in 0..2 {
                    ctx.recv(&done, "reporter::recv").await?;
                }
                let v = ctx.read(&total, "reporter::read").await?;
                ctx.output(out, v, "reporter::out").await
            });
        }
    }

    fn counter_oracle() -> crate::scenario::FailureOracle {
        Arc::new(|io: &IoSummary| {
            let total = io.outputs_on("result").first().and_then(|v| v.as_int())?;
            if total < 16 {
                Some(FailureSnapshot {
                    failure_id: "lost-updates".into(),
                    description: format!("total {total} < 16"),
                    crashes: vec![],
                    counters: Default::default(),
                })
            } else {
                None
            }
        })
    }

    /// Finds a seed whose original run loses updates (fails).
    fn failing_scenario() -> Scenario {
        let oracle = counter_oracle();
        for seed in 0..64u64 {
            let s = Scenario {
                program: Arc::new(RacyCounter),
                seed,
                sched_seed: seed,
                inputs: InputScript::new(),
                env: EnvConfig::clean(),
                max_steps: 100_000,
                failure_of: oracle.clone(),
                space: NondetSpace::schedules_only(64, InputScript::new()),
            };
            let out = s.execute(&s.original_spec(), vec![]);
            if (s.failure_of)(&out.io).is_some() {
                return s;
            }
        }
        panic!("no failing seed found for racy counter");
    }

    #[test]
    fn perfect_model_round_trips_exactly() {
        let s = failing_scenario();
        let rec = PerfectModel.record(&s);
        assert!(rec.original.failure.is_some());
        assert!(rec.overhead_factor > 1.0, "CREW must cost something");
        let replay = PerfectModel.replay(&s, &rec, &InferenceBudget::default());
        assert!(replay.artifact_satisfied);
        assert!(replay.reproduced_failure);
        assert_eq!(replay.io, rec.original.io);
    }

    #[test]
    fn perfect_artifacts_record_resumable_epochs() {
        let s = failing_scenario();
        let rec = PerfectModel.record(&s);
        let Artifact::Perfect { schedule, .. } = &rec.artifact else {
            panic!("perfect recording produces a perfect artifact");
        };
        assert_eq!(schedule.version, dd_trace::SCHEDULE_LOG_VERSION);
        // The racy counter makes plenty of multi-candidate decisions, so
        // the recording run's checkpoint cadence must yield epochs.
        assert!(
            !schedule.epochs.is_empty(),
            "recording runs must advertise resumable replay starting points"
        );
        let deepest = schedule
            .deepest_epoch_at_or_before(u64::MAX)
            .expect("epochs exist");
        assert!(deepest.decision > 0);
        assert!((deepest.decision as usize) <= schedule.decisions.len());
    }

    #[test]
    fn value_model_reproduces_failure_under_different_schedule() {
        let s = failing_scenario();
        let rec = ValueModel.record(&s);
        assert!(rec.overhead_factor > 1.0);
        assert!(rec.log.bytes > 0);
        let replay = ValueModel.replay(&s, &rec, &InferenceBudget::default());
        assert!(
            replay.reproduced_failure,
            "value feeding must reproduce the failure"
        );
        assert_eq!(
            replay.io.outputs_on("result")[0],
            rec.original.io.outputs_on("result")[0]
        );
    }

    #[test]
    fn output_lite_matches_outputs_or_reports_honestly() {
        let s = failing_scenario();
        let rec = OutputLiteModel.record(&s);
        let replay = OutputLiteModel.replay(&s, &rec, &InferenceBudget::executions(64));
        if replay.artifact_satisfied {
            // Outputs matched: by construction the counter value matches, so
            // the failure is reproduced too.
            assert!(replay.reproduced_failure);
            assert!(replay.inference.found);
        } else {
            assert!(replay.inference.explored > 0);
        }
    }

    #[test]
    fn failure_model_records_nothing_and_reproduces_failure() {
        let s = failing_scenario();
        let rec = FailureModel.record(&s);
        assert_eq!(rec.overhead_factor, 1.0);
        assert_eq!(rec.log.bytes, 0);
        let replay = FailureModel.replay(&s, &rec, &InferenceBudget::executions(64));
        assert!(
            replay.artifact_satisfied,
            "search should find a lost-update run"
        );
        assert!(replay.reproduced_failure);
        assert!(replay.inference.explored >= 1);
    }

    #[test]
    fn failure_model_on_passing_run_is_vacuous() {
        // A scenario whose original run passes: failure artifact is empty,
        // and replay accepts any passing run.
        let oracle = counter_oracle();
        let s = Scenario {
            program: Arc::new(RacyCounter),
            seed: 999,
            sched_seed: 1_000_003,
            inputs: InputScript::new(),
            env: EnvConfig::clean(),
            max_steps: 100_000,
            failure_of: oracle,
            space: NondetSpace::schedules_only(8, InputScript::new()),
        };
        let rec = FailureModel.record(&s);
        if rec.original.failure.is_none() {
            let replay = FailureModel.replay(&s, &rec, &InferenceBudget::executions(16));
            if replay.artifact_satisfied {
                assert!(replay.failure.is_none());
            }
        }
    }
}
