//! Recording artifacts and model cost constants.

use dd_sim::{observer_boilerplate, EnvConfig, Event, EventMeta, IoSummary, Observer, StopReason};
use dd_trace::{FailureSnapshot, InputLog, LogStats, OutputLog, ScheduleLog, Trace, ValueLog};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Cost constants per determinism model.
///
/// Calibrated so the published overhead *ordering* holds on the bundled
/// workloads (see DESIGN.md and the calibration test in `dd-bench`):
/// CREW-style perfect determinism ≫ value logging ≫ output/input logging ≫
/// schedule logging ≫ failure recording (free).
pub mod costs {
    use dd_trace::CostModel;

    /// Schedule (interleaving) log appends: run-length-encoded tiny records
    /// (well under one tick each).
    pub const SCHEDULE: CostModel = CostModel {
        record_milli: 400,
        byte_milli: 0,
    };
    /// Value logging: per-access record plus payload copy. The dominant
    /// recording cost of iDNA-style value determinism.
    pub const VALUE: CostModel = CostModel {
        record_milli: 2000,
        byte_milli: 150,
    };
    /// Output logging.
    pub const OUTPUT: CostModel = CostModel {
        record_milli: 1000,
        byte_milli: 30,
    };
    /// Input logging.
    pub const INPUT: CostModel = CostModel {
        record_milli: 1000,
        byte_milli: 30,
    };
    /// Control-plane record logging (RCSE low-fidelity records).
    pub const CONTROL: CostModel = CostModel {
        record_milli: 500,
        byte_milli: 30,
    };
    /// CREW ownership-transfer penalty (page-protection fault + shootdown),
    /// charged by perfect determinism per cross-task shared access.
    pub const CREW_TRANSFER: u64 = 40;
    /// Message-receive-order logging (Aumayr et al.): one packed append per
    /// pinned operation — schedule-log territory, far below value logging.
    pub const MSG_ORDER: CostModel = CostModel {
        record_milli: 400,
        byte_milli: 0,
    };
    /// Race-complete order/outcome logging (Guo et al.): per pinned append,
    /// plus the per-access vector-clock cost below.
    pub const RACE_COMPLETE: CostModel = CostModel {
        record_milli: 500,
        byte_milli: 30,
    };
    /// Wall ticks the online race pass charges per shared access (vector
    /// clock compare-and-join).
    pub const RACE_DETECT_ACCESS: u64 = 2;
    /// Accounted bytes of one run-length-encoded order-log record.
    pub const ORDER_ENTRY_BYTES: u64 = 2;
    /// Accounted bytes of one race report (packed var + two site ids).
    pub const RACE_REPORT_BYTES: u64 = 12;
    /// Accounted bytes of one racing-access outcome record.
    pub const RACE_OUTCOME_BYTES: u64 = 2;
}

/// Which determinism model produced a recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Full multiprocessor determinism (SMP-ReVirt-style CREW).
    Perfect,
    /// Same values read/written at same per-task points (iDNA).
    Value,
    /// Same outputs, nothing else recorded (ODR lightweight scheme).
    OutputLite,
    /// Same outputs with inputs recorded (ODR heavier scheme).
    OutputHeavy,
    /// Same failure only (ESD).
    Failure,
    /// Same failure and same root cause (this paper).
    Debug,
    /// Pinned-operation (message-receive) order logging (Aumayr et al.).
    MsgOrder,
    /// Race report + racing outcomes, rest reconstructed (Guo et al.).
    RaceComplete,
}

impl core::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ModelKind::Perfect => "perfect",
            ModelKind::Value => "value",
            ModelKind::OutputLite => "output-lite",
            ModelKind::OutputHeavy => "output-heavy",
            ModelKind::Failure => "failure",
            ModelKind::Debug => "debug (RCSE)",
            ModelKind::MsgOrder => "msg-order",
            ModelKind::RaceComplete => "race-complete",
        };
        f.write_str(s)
    }
}

/// A `--model` string naming no known [`ModelKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModelKind(pub String);

impl core::fmt::Display for UnknownModelKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown model kind {:?} (expected one of: perfect, value, output-lite, \
             output-heavy, failure, debug, msg-order, race-complete)",
            self.0
        )
    }
}

impl std::error::Error for UnknownModelKind {}

impl core::str::FromStr for ModelKind {
    type Err = UnknownModelKind;

    /// Parses every [`Display`](core::fmt::Display) rendering back to its
    /// kind (so display/parse round-trips), plus the bare `"debug"` the CLI
    /// uses for the RCSE model.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "perfect" => ModelKind::Perfect,
            "value" => ModelKind::Value,
            "output-lite" => ModelKind::OutputLite,
            "output-heavy" => ModelKind::OutputHeavy,
            "failure" => ModelKind::Failure,
            "debug" | "debug (RCSE)" | "rcse" => ModelKind::Debug,
            "msg-order" => ModelKind::MsgOrder,
            "race-complete" => ModelKind::RaceComplete,
            other => return Err(UnknownModelKind(other.to_owned())),
        })
    }
}

/// What a determinism model persisted at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Artifact {
    /// Perfect determinism: everything needed for exact re-execution.
    Perfect {
        /// The interleaving.
        schedule: ScheduleLog,
        /// All external inputs.
        inputs: InputLog,
        /// The production environment configuration.
        env: EnvConfig,
        /// The kernel RNG seed.
        seed: u64,
    },
    /// Value determinism: per-task value observations.
    Value {
        /// The per-task value logs.
        values: ValueLog,
    },
    /// Output determinism, lightweight scheme: outputs only.
    OutputLite {
        /// The observable output.
        outputs: OutputLog,
    },
    /// Output determinism, heavier scheme: outputs plus inputs.
    OutputHeavy {
        /// The observable output.
        outputs: OutputLog,
        /// All external inputs.
        inputs: InputLog,
    },
    /// Failure determinism: the failure evidence only.
    Failure {
        /// The failure snapshot (bug-report / core-dump equivalent).
        snapshot: FailureSnapshot,
    },
    /// Debug determinism (RCSE): selectively recorded events plus schedule.
    Debug {
        /// The interleaving.
        schedule: ScheduleLog,
        /// Control-plane (and dialed-up) event log.
        control: dd_trace::EventLog,
        /// Inputs on control-plane ports.
        inputs: InputLog,
        /// The production environment configuration.
        env: EnvConfig,
        /// The kernel RNG seed (control-plane configuration).
        seed: u64,
    },
    /// Message-order determinism: the total grant order plus inputs — no
    /// per-decision candidate sets, no value payloads.
    MsgOrder {
        /// Grant-order log (run-length encoded over task runs).
        order: crate::guided::OrderLog,
        /// All external inputs.
        inputs: InputLog,
        /// The production environment configuration.
        env: EnvConfig,
        /// The kernel RNG seed.
        seed: u64,
    },
    /// Race-complete determinism: the dd-detect race report, the outcomes
    /// of racing accesses, and the order of the (much smaller) pinned set —
    /// non-racing order is reconstructed, not recorded.
    RaceComplete {
        /// Data races the online vector-clock pass flagged.
        races: Vec<dd_detect::RaceReport>,
        /// Ordered outcomes of every access to a racing variable.
        outcomes: Vec<crate::guided::RaceOutcome>,
        /// Order log over the racing pin set (non-racing vars released).
        order: crate::guided::OrderLog,
        /// Digest of the pinned completion order (DPOR fallback constraint).
        order_digest: u64,
        /// All external inputs.
        inputs: InputLog,
        /// The production environment configuration.
        env: EnvConfig,
        /// The kernel RNG seed.
        seed: u64,
    },
}

/// Ground truth about the original run, used only for *evaluating* replay
/// fidelity (never handed to replayer logic).
#[derive(Debug, Clone)]
pub struct OriginalRun {
    /// Observable behaviour.
    pub io: IoSummary,
    /// Full analysis trace.
    pub trace: Trace,
    /// Name tables.
    pub registry: dd_sim::Registry,
    /// Stop reason.
    pub stop: StopReason,
    /// The failure the I/O spec assigned, if any.
    pub failure: Option<FailureSnapshot>,
    /// Execution-clock duration.
    pub duration: u64,
}

/// The product of recording one production run under some model.
#[derive(Debug, Clone)]
pub struct Recording {
    /// Which model recorded.
    pub model: ModelKind,
    /// The persisted artifact.
    pub artifact: Artifact,
    /// Recording overhead factor (wall / exec).
    pub overhead_factor: f64,
    /// Log volume.
    pub log: LogStats,
    /// Ground truth for evaluation.
    pub original: OriginalRun,
}

/// Models the CREW (concurrent-read exclusive-write) protocol SMP-ReVirt
/// uses for perfect multiprocessor determinism: every time a shared
/// variable's accessor set changes owner, a page-protection fault and
/// ownership transfer is charged.
pub struct CrewObserver {
    /// Ticks charged per ownership transfer.
    pub transfer_cost: u64,
    owner: HashMap<u32, dd_sim::TaskId>,
    chan_owner: HashMap<u32, dd_sim::TaskId>,
    /// Number of transfers charged.
    pub transfers: u64,
}

impl CrewObserver {
    /// Creates a CREW cost observer with the default transfer cost.
    pub fn new() -> Self {
        Self::with_cost(costs::CREW_TRANSFER)
    }

    /// Creates a CREW cost observer with an explicit transfer cost.
    pub fn with_cost(transfer_cost: u64) -> Self {
        CrewObserver {
            transfer_cost,
            owner: HashMap::new(),
            chan_owner: HashMap::new(),
            transfers: 0,
        }
    }
}

impl Default for CrewObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl Observer for CrewObserver {
    fn name(&self) -> &'static str {
        "crew"
    }

    fn on_event(&mut self, _meta: &EventMeta, event: &Event) -> u64 {
        // Channel buffers are shared pages too: cross-task sends/receives
        // fault exactly like cross-task variable accesses.
        let (task, slot) = match event {
            Event::Read { task, var, .. } | Event::Write { task, var, .. } => {
                (*task, self.owner.insert(var.0, *task))
            }
            Event::Send { task, chan, .. }
            | Event::Recv { task, chan, .. }
            | Event::SendDropped { task, chan, .. } => {
                (*task, self.chan_owner.insert(chan.0, *task))
            }
            _ => return 0,
        };
        match slot {
            Some(prev) if prev != task => {
                self.transfers += 1;
                self.transfer_cost
            }
            // Same owner, or first access: no fault.
            _ => 0,
        }
    }

    observer_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{TaskId, Value, VarId};

    #[test]
    fn crew_charges_only_on_ownership_transfer() {
        let mut crew = CrewObserver::with_cost(10);
        let meta = EventMeta { step: 0, time: 0 };
        let read = |t: u32, v: u32| Event::Read {
            task: TaskId(t),
            var: VarId(v),
            value: Value::Int(0),
            site: "s".into(),
        };
        assert_eq!(crew.on_event(&meta, &read(0, 0)), 0, "first access is free");
        assert_eq!(crew.on_event(&meta, &read(0, 0)), 0, "same owner is free");
        assert_eq!(crew.on_event(&meta, &read(1, 0)), 10, "transfer faults");
        assert_eq!(crew.on_event(&meta, &read(1, 0)), 0);
        assert_eq!(
            crew.on_event(&meta, &read(0, 1)),
            0,
            "per-variable ownership"
        );
        assert_eq!(crew.transfers, 1);
    }

    #[test]
    fn model_kind_display() {
        assert_eq!(ModelKind::Perfect.to_string(), "perfect");
        assert_eq!(ModelKind::Debug.to_string(), "debug (RCSE)");
    }

    #[test]
    fn artifact_serde_round_trip() {
        let a = Artifact::OutputLite {
            outputs: OutputLog::default(),
        };
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<Artifact>(&s).unwrap(), a);
    }
}
