//! First-divergence replay: hash-compared re-execution of a recorded run.
//!
//! A recorded trace carries, for every scheduling decision, an FNV-1a digest
//! of the machine state *before* that decision was applied (see
//! [`dd_sim::RunConfig::hash_decisions`]), plus a final digest one past the
//! last decision. Replaying the schedule with hashing enabled yields a second
//! digest stream; the first index where the streams differ localises the
//! first diverging decision:
//!
//! - digest `i` covers the world after decisions `0..i` were applied, so a
//!   mismatch at stream index `i` implicates decision `i - 1`;
//! - a mismatch at index `0` means the initial worlds already differ (wrong
//!   seed, inputs or environment — not a scheduling divergence);
//! - a strict-replay stop ([`StopReason::ReplayDivergence`]) names the
//!   diverging decision index directly (the recorded choice was infeasible);
//! - a final-digest mismatch with identical streams implicates the last
//!   decision (the runs agreed at every decision point but drifted after).

use dd_sim::{Observer, RunOutput, StopReason};
use dd_trace::JsonlTrace;
use serde::{Deserialize, Serialize};

use crate::scenario::{PolicyChoice, RunSpec, Scenario};

/// Where and why a replay first left the recorded execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Divergence {
    /// 0-based index of the first diverging decision in the recorded trace.
    pub decision: u64,
    /// Recorded state digest at the comparison point that failed, when the
    /// divergence was found by digest comparison (absent for policy stops).
    pub recorded_hash: Option<u64>,
    /// Replayed state digest at the same comparison point.
    pub replayed_hash: Option<u64>,
    /// Human-readable account of what went wrong.
    pub detail: String,
}

/// Outcome of a hash-compared replay of a recorded trace.
#[derive(Debug)]
pub struct DivergenceReport {
    /// The first divergence, or `None` if the replay matched the recording
    /// at every comparison point including the final digest.
    pub divergence: Option<Divergence>,
    /// How many digest comparison points agreed before the replay ended
    /// (including the final digest when it was reached and matched).
    pub matched: u64,
    /// Decisions the replay actually executed.
    pub replayed_decisions: u64,
    /// The replayed run, for oracle checks and state inspection.
    pub out: RunOutput,
}

impl DivergenceReport {
    /// True when the replay reproduced the recording exactly.
    pub fn identical(&self) -> bool {
        self.divergence.is_none()
    }
}

/// Replays `trace` against `scenario` under the strict schedule policy with
/// state hashing enabled, and reports the first divergence (if any).
///
/// The scenario must describe the same program the trace was recorded from;
/// seed, inputs and environment are taken from `spec` (normally
/// [`Scenario::original_spec`] with the policy replaced — use
/// [`replay_trace`] for the common case).
pub fn replay_trace_with(
    scenario: &Scenario,
    spec: &RunSpec,
    trace: &JsonlTrace,
    observers: Vec<Box<dyn Observer>>,
) -> DivergenceReport {
    let out = scenario.execute_hashed(spec, observers);
    let recorded = trace.hashes();
    let report = compare_streams(
        &recorded,
        trace.footer.final_hash,
        &out.decision_hashes.iter().copied().collect::<Vec<u64>>(),
        out.final_state_hash,
        &out.stop,
    );
    DivergenceReport {
        divergence: report.0,
        matched: report.1,
        replayed_decisions: out.decisions.len() as u64,
        out,
    }
}

/// Replays `trace` against `scenario` starting from a mid-run world
/// snapshot (typically restored from the trace's on-disk
/// [`SnapshotStore`](dd_trace::SnapshotStore)) instead of from scratch —
/// the `dd replay --from` fast path.
///
/// The restored world already contains the effects of the first
/// `snapshot.at_decision()` recorded decisions, so the strict replay policy
/// resumes at the next one. The report still covers the *whole* run: a
/// resumed run's digest stream is cumulative (the snapshot carries the
/// recorded prefix's digests; re-execution appends the tail), so the
/// comparison against the trace is index-for-index identical to a scratch
/// [`replay_trace`].
pub fn replay_trace_from(
    scenario: &Scenario,
    trace: &JsonlTrace,
    snapshot: &dd_sim::WorldSnapshot,
) -> DivergenceReport {
    let spec = scenario.original_spec();
    let consumed = snapshot.at_decision() as usize;
    let policy = dd_sim::ReplayPolicy::resuming_at(trace.schedule_log().decisions, consumed);
    let out = scenario.resume_hashed(&spec, snapshot, Box::new(policy));
    let recorded = trace.hashes();
    let report = compare_streams(
        &recorded,
        trace.footer.final_hash,
        &out.decision_hashes.iter().copied().collect::<Vec<u64>>(),
        out.final_state_hash,
        &out.stop,
    );
    DivergenceReport {
        divergence: report.0,
        matched: report.1,
        replayed_decisions: out.decisions.len() as u64,
        out,
    }
}

/// Replays `trace` against `scenario` using the scenario's own seed, inputs
/// and environment, driving the scheduler from the trace's schedule log.
pub fn replay_trace(
    scenario: &Scenario,
    trace: &JsonlTrace,
    observers: Vec<Box<dyn Observer>>,
) -> DivergenceReport {
    let spec = RunSpec {
        policy: PolicyChoice::Replay(trace.schedule_log()),
        ..scenario.original_spec()
    };
    replay_trace_with(scenario, &spec, trace, observers)
}

/// Compares a recorded digest stream against a replayed one and localises
/// the first divergence. Pure stream logic, exposed for testing.
///
/// Returns the divergence (if any) and the number of comparison points that
/// matched before it.
pub fn compare_streams(
    recorded: &[u64],
    recorded_final: u64,
    replayed: &[u64],
    replayed_final: Option<u64>,
    stop: &StopReason,
) -> (Option<Divergence>, u64) {
    let common = recorded.len().min(replayed.len());
    for i in 0..common {
        if recorded[i] != replayed[i] {
            let (decision, detail) = if i == 0 {
                (
                    0,
                    "initial state digest mismatch: the replay started from a \
                     different world (seed, inputs or environment differ)"
                        .to_string(),
                )
            } else {
                (
                    (i - 1) as u64,
                    format!(
                        "state digest mismatch before decision {i}: decision {} \
                         produced a different machine state than recorded",
                        i - 1
                    ),
                )
            };
            return (
                Some(Divergence {
                    decision,
                    recorded_hash: Some(recorded[i]),
                    replayed_hash: Some(replayed[i]),
                    detail,
                }),
                i as u64,
            );
        }
    }

    // Every shared digest agreed. A strict-policy stop now names the
    // diverging decision directly: the recorded choice was not feasible.
    if let StopReason::ReplayDivergence { step, detail } = stop {
        return (
            Some(Divergence {
                decision: *step,
                recorded_hash: None,
                replayed_hash: None,
                detail: format!("replay policy stop at decision {step}: {detail}"),
            }),
            common as u64,
        );
    }

    // Same prefix, different lengths: the replay ran out of (or past) the
    // recorded decisions without the strict policy objecting.
    if replayed.len() != recorded.len() {
        let detail = format!(
            "replay made {} decisions but the recording holds {}",
            replayed.len(),
            recorded.len()
        );
        return (
            Some(Divergence {
                decision: common as u64,
                recorded_hash: recorded.get(common).copied(),
                replayed_hash: replayed.get(common).copied(),
                detail,
            }),
            common as u64,
        );
    }

    // Streams identical; the final digest covers drift after the last
    // decision point.
    match replayed_final {
        Some(f) if f == recorded_final => (None, recorded.len() as u64 + 1),
        Some(f) => (
            Some(Divergence {
                decision: (recorded.len() as u64).saturating_sub(1),
                recorded_hash: Some(recorded_final),
                replayed_hash: Some(f),
                detail: "final state digest mismatch: the runs agreed at every \
                         decision point but diverged after the last one"
                    .to_string(),
            }),
            recorded.len() as u64,
        ),
        None => (
            Some(Divergence {
                decision: (recorded.len() as u64).saturating_sub(1),
                recorded_hash: Some(recorded_final),
                replayed_hash: None,
                detail: "replay produced no final state digest (hashing was \
                         not enabled on the replay run)"
                    .to_string(),
            }),
            recorded.len() as u64,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STOP: StopReason = StopReason::Quiescent;

    #[test]
    fn identical_streams_report_no_divergence() {
        let (d, matched) = compare_streams(&[1, 2, 3], 9, &[1, 2, 3], Some(9), &STOP);
        assert!(d.is_none());
        assert_eq!(matched, 4);
    }

    #[test]
    fn mismatch_implicates_previous_decision() {
        let (d, matched) = compare_streams(&[1, 2, 3], 9, &[1, 2, 4], Some(9), &STOP);
        let d = d.expect("divergence");
        assert_eq!(d.decision, 1);
        assert_eq!(d.recorded_hash, Some(3));
        assert_eq!(d.replayed_hash, Some(4));
        assert_eq!(matched, 2);
    }

    #[test]
    fn mismatch_at_index_zero_blames_setup() {
        let (d, _) = compare_streams(&[1, 2], 9, &[7, 2], Some(9), &STOP);
        let d = d.expect("divergence");
        assert_eq!(d.decision, 0);
        assert!(d.detail.contains("initial state"));
    }

    #[test]
    fn policy_stop_names_decision_directly() {
        let stop = StopReason::ReplayDivergence {
            step: 2,
            detail: "recorded task not runnable".into(),
        };
        let (d, _) = compare_streams(&[1, 2, 3], 9, &[1, 2], None, &stop);
        let d = d.expect("divergence");
        assert_eq!(d.decision, 2);
        assert!(d.recorded_hash.is_none());
    }

    #[test]
    fn short_replay_diverges_at_first_missing_decision() {
        let (d, _) = compare_streams(&[1, 2, 3], 9, &[1, 2], Some(5), &STOP);
        let d = d.expect("divergence");
        assert_eq!(d.decision, 2);
        assert_eq!(d.recorded_hash, Some(3));
    }

    #[test]
    fn final_hash_mismatch_implicates_last_decision() {
        let (d, matched) = compare_streams(&[1, 2, 3], 9, &[1, 2, 3], Some(8), &STOP);
        let d = d.expect("divergence");
        assert_eq!(d.decision, 2);
        assert_eq!(d.recorded_hash, Some(9));
        assert_eq!(d.replayed_hash, Some(8));
        assert_eq!(matched, 3);
    }

    #[test]
    fn empty_recording_matches_on_final_hash_alone() {
        let (d, matched) = compare_streams(&[], 42, &[], Some(42), &STOP);
        assert!(d.is_none());
        assert_eq!(matched, 1);
    }
}
