//! Multi-worker schedule exploration: a work-stealing frontier over the
//! snapshot pool.
//!
//! Independent subtrees of the schedule tree are embarrassingly parallel —
//! every pending backtrack branch's first run depends only on its forced
//! prefix, not on when (or where) it executes. This module exploits that
//! while keeping the search *byte-identical* to the sequential explorer:
//!
//! - A single **coordinator** thread runs the exact sequential DFS
//!   (`dpor::walk`): the stack, DPOR backtrack sets, budget
//!   checks, pruning counts, snapshot-pool evolution and statistics all
//!   live on one thread and are consumed in sequential order. Nothing a
//!   caller can observe — the interleavings visited, their order, the
//!   failure set, per-interleaving trace hashes, or any
//!   [`InferenceStats`] field — depends on the
//!   worker count.
//! - N **workers** each own a private execution shell (their runs build
//!   their own kernels, observers, policy clones and coroutine engines —
//!   see `dd-sim`'s world/shell split). They pull
//!   jobs from a shared LIFO frontier of `(forced prefix, deepest usable
//!   WorldSnapshot)` items, restore the snapshot, force the remaining
//!   prefix, and post the finished [`RunOutput`] back. Restoring is cheap
//!   everywhere: a snapshot's history lives in `Send + Sync`
//!   `dd_sim::ChunkedLog` chunks shared across the whole pool and all
//!   worker threads, so a fork clones O(live state), never the trace.
//! - After consuming each run, the coordinator **speculatively enqueues**
//!   every branch pending anywhere on its stack (all of them will be
//!   consumed eventually; DPOR backtrack sets only grow). The frontier is
//!   popped deepest-first — the branch the DFS consumes next — so workers
//!   race just ahead of the walk. When the coordinator needs a run that is
//!   still queued, it bumps that job to the top and blocks until a worker
//!   posts it.
//!
//! # Why determinism survives the parallelism
//!
//! Every cross-thread interaction is canonicalized at the coordinator:
//!
//! - **Run outputs** are prefix-deterministic: restore + re-run is
//!   bit-identical to scratch execution (the `dd-sim` snapshot guarantee),
//!   so a worker forking from whichever snapshot existed at enqueue time
//!   produces the same trace the sequential explorer would.
//! - **Budget and statistics accounting** happens only at consumption, in
//!   sequential order, and is charged against the walk's *canonical*
//!   snapshot pool rather than the worker's actual resume depth — so
//!   `explored`/`pruned`/`ticks`/`steps_executed`/`steps_skipped` are
//!   exact and worker-count-invariant (a worker resuming shallower than
//!   the canonical point only spends real wall-clock, never budget).
//! - **Backtrack-set merges** happen at consumption-order join points on
//!   the coordinator: conflict analysis of run *k* is applied before run
//!   *k + 1* is consumed, exactly as in the sequential walk.
//! - **Snapshot-pool merges** drop any snapshot a worker reports at or
//!   below the canonical resume point, so the pool evolves exactly as the
//!   sequential explorer's pool would.
//!
//! Speculative runs the budget cut off before consumption are wasted
//! wall-clock only; they are never charged. The scaling limit is *subtree
//! granularity* — parallelism comes from independent pending branches, so
//! a near-trivial tree (the one-run sum/bufoverflow rows of ABL-8) has
//! nothing to overlap, a deep chain-shaped region serializes on branch
//! discovery (each next branch is only exposed by executing the previous
//! run), and at shallow horizons every speculative run is a full
//! re-execution (no snapshot sits inside a 4-decision prefix), so workers
//! overlap whole runs but fork savings contribute nothing. The deep-wide
//! regime — the ABL-8 deep-horizon msgserver row — is where both effects
//! compound: many pending subtrees in flight, each forked from a deep
//! snapshot.

use crate::dpor::{
    deepest_compatible, explore_tree, plan_of, walk, RunFetcher, SnapshotPool, TreeConfig,
};
use crate::explorer::{InferenceBudget, InferenceStats};
use crate::scenario::{PolicyChoice, RunSpec, Scenario};
use dd_sim::{CheckpointPlan, PrefixPolicy, RunOutput};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};

/// One unit of speculative work: a forced schedule prefix. The snapshot to
/// fork from is *not* bound here — the worker re-binds the deepest
/// compatible snapshot from the shared pool mirror when it actually starts
/// the job, so a branch queued early still benefits from snapshots
/// discovered later.
struct Job {
    prefix: Vec<u32>,
}

/// Frontier state behind the mutex.
struct FrontierQueue {
    /// Pending jobs, popped LIFO (deepest branch last = first out).
    jobs: Vec<Job>,
    /// Finished runs awaiting consumption, keyed by forced prefix.
    results: HashMap<Vec<u32>, RunOutput>,
    /// The prefix the coordinator is currently blocked on, if any. Workers
    /// may run it even when the result buffer is at its high-water mark.
    needed: Option<Vec<u32>>,
    /// Set once the walk returns; workers drain and exit.
    shutdown: bool,
    /// A worker's panic message, if one died mid-run. The coordinator
    /// re-raises it instead of waiting forever for the lost result.
    poisoned: Option<String>,
}

/// The shared frontier: job queue, result buffer, pool mirror and wake-up
/// plumbing.
struct Frontier {
    q: Mutex<FrontierQueue>,
    /// A mirror of the coordinator's canonical snapshot pool, refreshed at
    /// every consumption. Workers re-bind jobs against it at pop time;
    /// entries that the walk has since abandoned are harmless because
    /// compatibility is checked against the job's own prefix, never
    /// assumed.
    mirror: Mutex<SnapshotPool>,
    /// Signalled when jobs arrive, the needed prefix changes, or results
    /// are consumed (workers re-check the high-water mark).
    work: Condvar,
    /// Signalled when a worker posts a result.
    done: Condvar,
    /// Bound on buffered results: workers pause speculation past this point
    /// so a fast pool cannot balloon memory arbitrarily far ahead of the
    /// walk. The job the coordinator is blocked on is exempt.
    high_water: usize,
}

/// Executes one job inside a worker's private shell, forking from the
/// deepest compatible snapshot currently mirrored.
fn execute_job(
    scenario: &Scenario,
    cfg: &TreeConfig<'_>,
    plan: Option<CheckpointPlan>,
    fr: &Frontier,
    job: &Job,
) -> RunOutput {
    let spec = RunSpec {
        seed: cfg.seed,
        policy: PolicyChoice::Prefix(job.prefix.clone(), cfg.tail_seed),
        inputs: cfg.inputs.clone(),
        env: cfg.env.clone(),
    };
    let resume = match plan {
        Some(_) => deepest_compatible(&fr.mirror.lock(), &job.prefix),
        None => None,
    };
    match (plan, resume) {
        (Some(plan), Some((d, snap))) => {
            let forced: Vec<u32> = job.prefix[d as usize..].to_vec();
            scenario.resume(
                &spec,
                &snap,
                Box::new(PrefixPolicy::new(forced, cfg.tail_seed)),
                plan,
            )
        }
        (Some(plan), None) => scenario.execute_checkpointed(&spec, plan, vec![]),
        (None, _) => scenario.execute(&spec, vec![]),
    }
}

/// The worker loop: pop the deepest job, execute it, post the result.
///
/// A panicking run poisons the frontier instead of silently dying: the
/// coordinator would otherwise block forever on a result that will never
/// arrive. The poison re-raises the panic on the coordinator thread, which
/// is where the sequential explorer would have surfaced it.
fn worker_loop(
    scenario: &Scenario,
    cfg: &TreeConfig<'_>,
    plan: Option<CheckpointPlan>,
    fr: &Frontier,
) {
    loop {
        let job = {
            let mut q = fr.q.lock();
            loop {
                if q.shutdown {
                    return;
                }
                let unthrottled = q.results.len() < fr.high_water
                    || q.jobs
                        .last()
                        .is_some_and(|j| q.needed.as_deref() == Some(j.prefix.as_slice()));
                if unthrottled {
                    if let Some(j) = q.jobs.pop() {
                        break j;
                    }
                }
                fr.work.wait(&mut q);
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(scenario, cfg, plan, fr, &job)
        }));
        let mut q = fr.q.lock();
        match result {
            Ok(out) => {
                q.results.insert(job.prefix, out);
                fr.done.notify_all();
            }
            Err(payload) => {
                q.poisoned = Some(panic_message(payload.as_ref()));
                q.shutdown = true;
                fr.done.notify_all();
                fr.work.notify_all();
                return;
            }
        }
    }
}

/// Best-effort extraction of a worker panic's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

/// The coordinator-side fetcher: schedules jobs on the frontier and blocks
/// on the one the walk needs next.
struct ParallelRuns<'a, 'cfg> {
    fr: &'a Frontier,
    scenario: &'a Scenario,
    cfg: &'a TreeConfig<'cfg>,
    plan: Option<CheckpointPlan>,
    /// Prefixes already enqueued (or already consumed); the walk never
    /// fetches the same prefix twice, so this only prevents duplicate
    /// speculation.
    scheduled: HashSet<Vec<u32>>,
}

impl ParallelRuns<'_, '_> {
    /// Refreshes the workers' pool mirror from the walk's canonical pool
    /// (`Arc` clones — the worlds themselves are shared, not copied).
    fn refresh_mirror(&self, pool: &SnapshotPool) {
        *self.fr.mirror.lock() = pool.clone();
    }
}

impl RunFetcher for ParallelRuns<'_, '_> {
    fn fetch(&mut self, _spec: &RunSpec, prefix: &[u32], pool: &SnapshotPool) -> RunOutput {
        self.refresh_mirror(pool);
        let mut q = self.fr.q.lock();
        if let Some(out) = q.results.remove(prefix) {
            self.fr.work.notify_all(); // Buffer shrank below the high-water mark.
            return out;
        }
        // Not finished. If no worker has claimed the job yet (still
        // queued, or never scheduled), execute it inline on this thread:
        // waiting for a worker to wake, pop, execute and post back would
        // insert a cross-thread round trip into the serial discovery chain
        // — exactly the path that dominates when subtrees are shallow.
        let claimed = self.scheduled.insert(prefix.to_vec());
        let queued = q.jobs.iter().position(|j| j.prefix == prefix);
        if claimed || queued.is_some() {
            if let Some(pos) = queued {
                q.jobs.remove(pos);
            }
            drop(q);
            let job = Job {
                prefix: prefix.to_vec(),
            };
            return execute_job(self.scenario, self.cfg, self.plan, self.fr, &job);
        }
        // In flight on a worker: block until it posts the result.
        q.needed = Some(prefix.to_vec());
        self.fr.work.notify_all();
        loop {
            if let Some(msg) = &q.poisoned {
                panic!("a parallel-exploration worker panicked: {msg}");
            }
            if let Some(out) = q.results.remove(prefix) {
                q.needed = None;
                // Consuming a result frees buffer space below the
                // high-water mark.
                self.fr.work.notify_all();
                return out;
            }
            self.fr.done.wait(&mut q);
        }
    }

    fn speculate(&mut self, branches: Vec<Vec<u32>>, pool: &SnapshotPool) {
        self.refresh_mirror(pool);
        let fresh: Vec<Job> = branches
            .into_iter()
            .filter(|prefix| self.scheduled.insert(prefix.clone()))
            .map(|prefix| Job { prefix })
            .collect();
        if !fresh.is_empty() {
            let mut q = self.fr.q.lock();
            q.jobs.extend(fresh);
            self.fr.work.notify_all();
        }
    }
}

/// [`explore_tree`](crate::dpor::explore_tree) with the run executions
/// spread over `workers` threads.
///
/// `workers <= 1` falls through to the sequential explorer — which is also
/// the equivalence oracle: for any worker count the parallel walk returns
/// the byte-identical failure set, walk order, per-interleaving traces and
/// statistics (pinned by `tests/conformance.rs`, the `DporParallel`
/// proptests, and CI's `determinism-matrix` job).
pub(crate) fn explore_tree_parallel(
    scenario: &Scenario,
    cfg: &TreeConfig<'_>,
    budget: &InferenceBudget,
    workers: u32,
    stats: &mut InferenceStats,
    visit: &mut dyn FnMut(&RunOutput, &RunSpec) -> bool,
) -> Option<(RunOutput, RunSpec)> {
    // An explicit worker count is honored as-is — the determinism contract
    // makes any pool size return identical results, so the only cost of
    // oversubscription is wall-clock, and tests/benches need the frontier
    // to actually run to measure (or pin) anything. Host-sizing the pool
    // is the *defaulted* path's job: `InferenceBudget::default_worker_pool`
    // resolves to 1 on single-core hosts, where speculating workers could
    // only steal cycles from the coordinator.
    if workers <= 1 {
        return explore_tree(scenario, cfg, budget, stats, visit);
    }
    let plan = plan_of(cfg);
    let fr = Frontier {
        q: Mutex::new(FrontierQueue {
            jobs: Vec::new(),
            results: HashMap::new(),
            needed: None,
            shutdown: false,
            poisoned: None,
        }),
        mirror: Mutex::new(SnapshotPool::new()),
        work: Condvar::new(),
        done: Condvar::new(),
        high_water: workers as usize * 4 + 16,
    };
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_loop(scenario, cfg, plan, &fr));
        }
        let mut fetcher = ParallelRuns {
            fr: &fr,
            scenario,
            cfg,
            plan,
            scheduled: HashSet::new(),
        };
        let result = walk(cfg, budget, stats, visit, &mut fetcher);
        fr.q.lock().shutdown = true;
        fr.work.notify_all();
        result
    })
}
