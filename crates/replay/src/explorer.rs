//! The inference engine: bounded search over unrecorded nondeterminism.
//!
//! Relaxed determinism models trade recording for *post-factum inference*:
//! ESD synthesises an execution from a failure report, ODR infers unrecorded
//! race outcomes. Both use program analysis; our substitute is explicit
//! search over the scenario's [`NondetSpace`](crate::NondetSpace) (schedule seeds × inputs ×
//! environments), with the same observable semantics — many executions
//! satisfy the artifact, and the replayer returns whichever it finds first.
//! The search cost is reported as inference time and feeds debugging
//! efficiency (DE).

use crate::dpor::TreeConfig;
use crate::parallel::explore_tree_parallel;
use crate::scenario::{PolicyChoice, RunSpec, Scenario};
use dd_sim::{RunOutput, WorldSnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Bounds on inference work, plus the schedule-candidate strategy the
/// replayer should use inside those bounds.
///
/// Construct with [`InferenceBudget::builder`] or the purpose-named
/// constructors ([`executions`](Self::executions), [`dpor`](Self::dpor),
/// [`dpor_parallel`](Self::dpor_parallel)); direct struct-literal assembly
/// is discouraged because the fields are interdependent (`workers` and
/// `checkpoint_interval` only apply to some strategies) and literals skip
/// the builder's validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceBudget {
    /// Maximum candidate executions to try.
    pub max_executions: u64,
    /// Maximum total execution ticks to spend.
    pub max_ticks: u64,
    /// How schedule candidates are generated. Determinism models pick this
    /// up in their `replay` implementations, so callers select the search
    /// strategy the same way they bound its cost.
    pub strategy: SearchStrategy,
    /// Snapshot-interval policy for the systematic strategies: `0` runs
    /// every interleaving from scratch (the pre-checkpointing behaviour);
    /// `k > 0` makes the tree walk snapshot the kernel world every `k`-th
    /// decision inside its branching horizon and, at each backtrack point,
    /// restore the deepest usable snapshot instead of re-executing the
    /// shared prefix. Ignored by the non-systematic strategies. Skipped
    /// (inherited) work is not charged against `max_ticks`, so a
    /// tick-bounded checkpointed walk covers at least as many interleavings
    /// as the scratch walk before cutoff (see `dpor` module docs).
    pub checkpoint_interval: u64,
    /// Worker threads a parallel systematic strategy may use. `1` (the
    /// default) keeps everything on the calling thread;
    /// [`SearchStrategy::DporParallel`] with `workers: 0` reads its pool
    /// size from here, so callers can scale inference without touching the
    /// strategy. The worker count never changes what the search returns —
    /// only how fast (see the `parallel` module's determinism contract).
    pub workers: u32,
}

impl Default for InferenceBudget {
    fn default() -> Self {
        InferenceBudget {
            max_executions: 200,
            max_ticks: u64::MAX,
            strategy: SearchStrategy::Random,
            checkpoint_interval: 0,
            workers: 1,
        }
    }
}

impl InferenceBudget {
    /// Starts a validated [`InferenceBudgetBuilder`]. Prefer this (or the
    /// purpose-named constructors below) over assembling the struct field
    /// by field: the builder rejects incoherent combinations — e.g. a
    /// worker pool without a parallel strategy — at `build()` time instead
    /// of silently ignoring fields at search time.
    pub fn builder() -> InferenceBudgetBuilder {
        InferenceBudgetBuilder {
            budget: Self::default(),
        }
    }

    /// A budget bounded only by execution count.
    pub fn executions(n: u64) -> Self {
        InferenceBudget {
            max_executions: n,
            ..Self::default()
        }
    }

    /// A budget of `n` executions searching with DPOR-reduced systematic
    /// exploration of branching depth `max_depth`.
    pub fn dpor(n: u64, max_depth: u32) -> Self {
        InferenceBudget {
            max_executions: n,
            ..Self::default()
        }
        .with_strategy(SearchStrategy::Dpor { max_depth })
    }

    /// Replaces the search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables checkpointed (fork-based) systematic exploration with the
    /// given snapshot interval (`0` disables it again).
    pub fn with_checkpoints(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Sets the worker-thread pool size parallel systematic strategies may
    /// use (`0` and `1` both mean sequential).
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.workers = workers;
        self
    }

    /// A budget of `n` executions searching with parallel DPOR at branching
    /// depth `max_depth` over `workers` worker threads, with checkpointing
    /// on (parallel exploration forks subtrees from pooled snapshots).
    pub fn dpor_parallel(n: u64, max_depth: u32, workers: u32) -> Self {
        InferenceBudget {
            max_executions: n,
            ..Self::default()
        }
        .with_strategy(SearchStrategy::DporParallel {
            max_depth,
            workers: 0,
        })
        .with_checkpoints(Self::DEFAULT_CHECKPOINT_INTERVAL)
        .with_workers(workers)
    }

    /// The default snapshot interval for callers that just want
    /// checkpointing on (snapshot at every decision in the horizon).
    pub const DEFAULT_CHECKPOINT_INTERVAL: u64 = 1;

    /// The ceiling of [`default_worker_pool`](Self::default_worker_pool).
    pub const DEFAULT_WORKERS: u32 = 4;

    /// The host-sized worker pool for callers that just want parallel
    /// exploration on (e.g. the RCSE replay-divergence fallback):
    /// `min(available cores, DEFAULT_WORKERS)`. Resolves to `1` — the
    /// sequential path — on single-core hosts, where speculating workers
    /// could only steal cycles from the coordinator. Explicit
    /// [`SearchStrategy::DporParallel`] counts are honored as-is; the
    /// determinism contract makes either choice return identical results.
    pub fn default_worker_pool() -> u32 {
        std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1)
            .min(Self::DEFAULT_WORKERS)
    }
}

/// A rejected [`InferenceBudgetBuilder`] combination, explaining which
/// fields conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetError(String);

impl core::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid inference budget: {}", self.0)
    }
}

impl std::error::Error for BudgetError {}

/// Typed, validated construction of an [`InferenceBudget`].
///
/// The budget's fields have grown interdependent: `workers` is only
/// consumed by [`SearchStrategy::DporParallel`], `checkpoint_interval`
/// only by the systematic strategies, and a parallel strategy with an
/// explicit worker count overrides the budget's pool. The builder makes
/// those couplings explicit and turns silent field-ignoring into
/// [`BudgetError`]s:
///
/// ```
/// use dd_replay::{InferenceBudget, SearchStrategy};
///
/// let budget = InferenceBudget::builder()
///     .max_executions(500)
///     .strategy(SearchStrategy::Dpor { max_depth: 8 })
///     .checkpoint_interval(2)
///     .build()
///     .unwrap();
/// assert_eq!(budget.max_executions, 500);
///
/// // A worker pool without a parallel strategy is rejected, not ignored.
/// assert!(InferenceBudget::builder().workers(4).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct InferenceBudgetBuilder {
    budget: InferenceBudget,
}

impl InferenceBudgetBuilder {
    /// Maximum candidate executions to try (must stay above zero).
    pub fn max_executions(mut self, n: u64) -> Self {
        self.budget.max_executions = n;
        self
    }

    /// Maximum total execution ticks to spend (must stay above zero).
    pub fn max_ticks(mut self, ticks: u64) -> Self {
        self.budget.max_ticks = ticks;
        self
    }

    /// How schedule candidates are generated.
    pub fn strategy(mut self, strategy: SearchStrategy) -> Self {
        self.budget.strategy = strategy;
        self
    }

    /// Snapshot interval for the systematic strategies (`0` = from-scratch
    /// exploration). Rejected at `build()` for non-systematic strategies,
    /// which would silently ignore it.
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.budget.checkpoint_interval = interval;
        self
    }

    /// Worker-thread pool for [`SearchStrategy::DporParallel`] (`1` = the
    /// sequential path). Rejected at `build()` for every other strategy.
    pub fn workers(mut self, workers: u32) -> Self {
        self.budget.workers = workers;
        self
    }

    /// Validates the combination and produces the budget.
    pub fn build(self) -> Result<InferenceBudget, BudgetError> {
        let b = self.budget;
        if b.max_executions == 0 {
            return Err(BudgetError(
                "max_executions is 0 — the search could never run a candidate".into(),
            ));
        }
        if b.max_ticks == 0 {
            return Err(BudgetError(
                "max_ticks is 0 — the search could never run a candidate".into(),
            ));
        }
        let systematic = matches!(
            b.strategy,
            SearchStrategy::Exhaustive { .. }
                | SearchStrategy::Dpor { .. }
                | SearchStrategy::DporParallel { .. }
        );
        if b.checkpoint_interval > 0 && !systematic {
            return Err(BudgetError(format!(
                "checkpoint_interval {} is only honored by the systematic \
                 strategies (Exhaustive/Dpor/DporParallel), not {:?}",
                b.checkpoint_interval, b.strategy
            )));
        }
        match b.strategy {
            SearchStrategy::Exhaustive { max_depth }
            | SearchStrategy::Dpor { max_depth }
            | SearchStrategy::DporParallel { max_depth, .. }
                if max_depth == 0 =>
            {
                return Err(BudgetError(
                    "systematic strategy with max_depth 0 explores nothing".into(),
                ));
            }
            _ => {}
        }
        if b.workers > 1 {
            match b.strategy {
                SearchStrategy::DporParallel { workers: 0, .. } => {}
                SearchStrategy::DporParallel { workers, .. } => {
                    return Err(BudgetError(format!(
                        "budget workers {} conflicts with the strategy's explicit \
                         worker count {} (use workers: 0 in the strategy to defer \
                         to the budget)",
                        b.workers, workers
                    )));
                }
                _ => {
                    return Err(BudgetError(format!(
                        "workers {} has no effect under {:?} — only \
                         SearchStrategy::DporParallel consumes the budget's pool",
                        b.workers, b.strategy
                    )));
                }
            }
        }
        Ok(b)
    }
}

/// Statistics of one inference search.
///
/// `explored` counts interleavings actually *executed*; `pruned` counts
/// sibling branches a systematic strategy identified and skipped. Only
/// executed interleavings burn the execution budget and contribute ticks to
/// debugging-efficiency accounting — conflating the two would make DPOR
/// look slower exactly when it prunes best.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceStats {
    /// Candidate executions tried.
    pub explored: u64,
    /// Schedule branches identified but skipped as redundant (DPOR) or
    /// out of reach of the depth bound. Zero for non-systematic strategies.
    pub pruned: u64,
    /// Total execution ticks spent across candidates (for snapshot-resumed
    /// candidates, only the post-restore ticks — inherited prefix work is
    /// not re-spent).
    pub ticks: u64,
    /// Kernel operations actually executed across candidates. For
    /// checkpointed search this excludes the prefix work a restored
    /// snapshot carried; comparing it against
    /// `steps_executed + steps_skipped` (what from-scratch search would
    /// have executed) is the apples-to-apples DE comparison.
    pub steps_executed: u64,
    /// Kernel operations skipped by restoring snapshots instead of
    /// re-executing shared schedule prefixes. Zero for scratch search.
    pub steps_skipped: u64,
    /// Whether an accepting execution was found.
    pub found: bool,
    /// 0-based index of the accepting candidate, if found.
    pub found_at: Option<u64>,
}

impl InferenceStats {
    /// Accounts one candidate execution's step/tick cost.
    pub(crate) fn charge_run(&mut self, out: &RunOutput) {
        self.explored += 1;
        self.ticks += out.stats.exec_ticks - out.stats.resumed_ticks;
        self.steps_executed += out.stats.steps - out.stats.resumed_steps;
        self.steps_skipped += out.stats.resumed_steps;
    }

    /// How much execution the snapshots saved: total kernel operations the
    /// same exploration would have executed from scratch, divided by the
    /// operations actually executed. `Some(1.0)` means no savings (scratch
    /// search); `Some(2.0)` means half the work was skipped.
    ///
    /// Returns `None` when `steps_executed == 0` — an all-skipped search
    /// (every interleaving resumed entirely from snapshots, which deep
    /// horizons can produce) or one that never ran. The ratio is unbounded
    /// there, not `1.0`; renderers print a `-` sentinel instead of a
    /// number.
    pub fn replay_speedup(&self) -> Option<f64> {
        if self.steps_executed == 0 {
            None
        } else {
            Some((self.steps_executed + self.steps_skipped) as f64 / self.steps_executed as f64)
        }
    }
}

/// The result of a search: the accepted run (if any) plus statistics.
pub struct SearchResult {
    /// The accepted execution.
    pub run: Option<RunOutput>,
    /// The spec that produced it.
    pub spec: Option<RunSpec>,
    /// Search statistics.
    pub stats: InferenceStats,
}

/// How schedule candidates are generated during inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStrategy {
    /// Seeded uniform-random scheduling per candidate (the default).
    Random,
    /// Probabilistic concurrency testing per candidate: random priorities
    /// with `depth - 1` change points, biased toward rare interleavings of
    /// bounded depth.
    Pct {
        /// Expected run length in scheduling decisions.
        expected_len: u64,
        /// Targeted bug depth.
        depth: u32,
    },
    /// Systematic depth-first enumeration of the schedule tree: every
    /// branch of the first `max_depth` scheduling decisions, with a
    /// deterministic seeded tail beyond.
    Exhaustive {
        /// Branching-depth bound.
        max_depth: u32,
    },
    /// Partial-order-reduced systematic exploration: like `Exhaustive`,
    /// but dynamic conflict analysis (pending-op footprints from `dd-sim`
    /// plus `dd-detect` vector clocks) prunes sibling branches that only
    /// reorder commuting operations. Finds the same failures as
    /// `Exhaustive` at the same depth while executing far fewer
    /// interleavings.
    Dpor {
        /// Branching-depth bound.
        max_depth: u32,
    },
    /// `Dpor`, with run execution spread over a pool of worker threads: a
    /// coordinator walks the identical DPOR-reduced tree while workers
    /// speculatively execute pending branches from pooled kernel
    /// snapshots (see the `parallel` module). The failure set, walk order,
    /// per-interleaving traces and every statistic are byte-identical to
    /// `Dpor` at the same depth and checkpoint interval, for any worker
    /// count — parallelism buys wall-clock time only.
    DporParallel {
        /// Branching-depth bound.
        max_depth: u32,
        /// Worker threads (`0` defers to [`InferenceBudget::workers`];
        /// `1` runs sequentially).
        workers: u32,
    },
}

impl SearchStrategy {
    /// For the systematic strategies: the branching-depth bound, whether
    /// DPOR pruning is on, and the worker-pool size after resolving a
    /// deferred (`0`) count against the budget. `None` for the
    /// non-systematic strategies.
    fn systematic(&self, budget: &InferenceBudget) -> Option<(u32, bool, u32)> {
        match *self {
            SearchStrategy::Exhaustive { max_depth } => Some((max_depth, false, 1)),
            SearchStrategy::Dpor { max_depth } => Some((max_depth, true, 1)),
            SearchStrategy::DporParallel { max_depth, workers } => {
                let workers = if workers == 0 {
                    budget.workers
                } else {
                    workers
                };
                Some((max_depth, true, workers.max(1)))
            }
            SearchStrategy::Random | SearchStrategy::Pct { .. } => None,
        }
    }
}

/// Searches a scenario's nondeterminism space for an execution satisfying
/// `accept`, using the strategy selected by the budget.
///
/// Candidates are enumerated deterministically, environment-fastest: the
/// replayer tries alternative environments (faults, congestion, memory
/// pressure) before burning through schedule seeds, mirroring how execution
/// synthesis considers all consistent explanations — this is exactly why a
/// failure-deterministic replay may return a *different root cause* than the
/// original execution.
pub fn search(
    scenario: &Scenario,
    budget: &InferenceBudget,
    fixed_inputs: Option<&dd_sim::InputScript>,
    accept: impl Fn(&RunOutput) -> bool,
) -> SearchResult {
    search_with(scenario, budget, budget.strategy, fixed_inputs, accept)
}

/// [`search`] with an explicit schedule-candidate strategy (overriding the
/// budget's).
pub fn search_with(
    scenario: &Scenario,
    budget: &InferenceBudget,
    strategy: SearchStrategy,
    fixed_inputs: Option<&dd_sim::InputScript>,
    accept: impl Fn(&RunOutput) -> bool,
) -> SearchResult {
    search_with_warm(scenario, budget, strategy, fixed_inputs, Vec::new(), accept)
}

/// [`search_with`] additionally seeding systematic tree walks with
/// previously captured world snapshots (warm start).
///
/// The seeds typically come from a persistent
/// [`SnapshotStore`](dd_trace::SnapshotStore) written by a recorded run in
/// another process: the walk's first descents fork from the deepest
/// compatible seed instead of re-executing the shared prefix from scratch.
/// Seeds whose decision path diverges from the walk's current prefix are
/// skipped (compatibility is always checked explicitly), so stale or
/// foreign snapshots degrade to a cold start rather than corrupting the
/// search. Non-systematic strategies and walks without checkpointing ignore
/// the seeds entirely.
pub fn search_with_warm(
    scenario: &Scenario,
    budget: &InferenceBudget,
    strategy: SearchStrategy,
    fixed_inputs: Option<&dd_sim::InputScript>,
    warm: Vec<Arc<WorldSnapshot>>,
    accept: impl Fn(&RunOutput) -> bool,
) -> SearchResult {
    let space = &scenario.space;
    let seeds: &[u64] = if space.seeds.is_empty() {
        &[0]
    } else {
        &space.seeds
    };
    let default_inputs = [dd_sim::InputScript::new()];
    let inputs: &[dd_sim::InputScript] = match fixed_inputs {
        Some(_) => &default_inputs[..0],
        None if space.inputs.is_empty() => &default_inputs,
        None => &space.inputs,
    };
    let n_inputs = if fixed_inputs.is_some() {
        1
    } else {
        inputs.len()
    };
    let envs: &[dd_sim::EnvConfig] = if space.envs.is_empty() {
        std::slice::from_ref(&scenario.env)
    } else {
        &space.envs
    };

    let mut stats = InferenceStats::default();

    if let Some((max_depth, dpor, workers)) = strategy.systematic(budget) {
        // Systematic strategies replace random schedule seeding with a tree
        // walk per (seed, input, environment) combination, sharing one
        // budget; environment still varies fastest.
        let scripts: Vec<&dd_sim::InputScript> = match fixed_inputs {
            Some(s) => vec![s],
            None => inputs.iter().collect(),
        };
        for &seed in seeds {
            for script in &scripts {
                for env in envs {
                    if stats.explored >= budget.max_executions || stats.ticks >= budget.max_ticks {
                        break;
                    }
                    let cfg = TreeConfig {
                        seed,
                        tail_seed: seed.wrapping_mul(0x9E3779B97F4A7C15),
                        inputs: script,
                        env,
                        dpor,
                        max_depth: max_depth as usize,
                        checkpoint_every: (budget.checkpoint_interval > 0)
                            .then_some(budget.checkpoint_interval),
                        warm: warm.clone(),
                    };
                    if let Some((out, spec)) = explore_tree_parallel(
                        scenario,
                        &cfg,
                        budget,
                        workers,
                        &mut stats,
                        &mut |out, _| accept(out),
                    ) {
                        return SearchResult {
                            run: Some(out),
                            spec: Some(spec),
                            stats,
                        };
                    }
                }
            }
        }
        return SearchResult {
            run: None,
            spec: None,
            stats,
        };
    }

    let total = seeds.len() as u64 * n_inputs as u64 * envs.len() as u64;
    for i in 0..total.min(budget.max_executions) {
        if stats.ticks >= budget.max_ticks {
            break;
        }
        // Environment varies fastest, inputs next, schedule seed slowest.
        let env_i = (i % envs.len() as u64) as usize;
        let input_i = ((i / envs.len() as u64) % n_inputs as u64) as usize;
        let seed_i = ((i / (envs.len() as u64 * n_inputs as u64)) % seeds.len() as u64) as usize;

        let sched_seed = seeds[seed_i].wrapping_mul(0x9E3779B97F4A7C15);
        let policy = match strategy {
            SearchStrategy::Random => PolicyChoice::Random(sched_seed),
            SearchStrategy::Pct {
                expected_len,
                depth,
            } => PolicyChoice::Pct {
                seed: sched_seed,
                expected_len,
                depth,
            },
            SearchStrategy::Exhaustive { .. }
            | SearchStrategy::Dpor { .. }
            | SearchStrategy::DporParallel { .. } => {
                unreachable!("systematic strategies handled above")
            }
        };
        let spec = RunSpec {
            seed: seeds[seed_i],
            policy,
            inputs: match fixed_inputs {
                Some(s) => s.clone(),
                None => inputs[input_i].clone(),
            },
            env: envs[env_i].clone(),
        };
        let out = scenario.execute(&spec, vec![]);
        stats.charge_run(&out);
        if accept(&out) {
            stats.found = true;
            stats.found_at = Some(i);
            return SearchResult {
                run: Some(out),
                spec: Some(spec),
                stats,
            };
        }
    }
    SearchResult {
        run: None,
        spec: None,
        stats,
    }
}

/// Enumerates every distinct failure id reachable from the scenario's
/// *production* configuration (original seed, inputs and environment) under
/// the given strategy and budget, without stopping at the first hit.
///
/// This is the apples-to-apples harness for comparing strategies: with the
/// same `max_depth`, [`SearchStrategy::Dpor`] must find the same failure
/// set as [`SearchStrategy::Exhaustive`] while executing strictly fewer
/// interleavings (the pruned ones only reorder commuting operations).
pub fn enumerate_failures(
    scenario: &Scenario,
    budget: &InferenceBudget,
    strategy: SearchStrategy,
) -> (BTreeSet<String>, InferenceStats) {
    let mut stats = InferenceStats::default();
    let mut failures = BTreeSet::new();
    match strategy.systematic(budget) {
        Some((max_depth, dpor, workers)) => {
            let cfg = TreeConfig {
                seed: scenario.seed,
                tail_seed: scenario.sched_seed.wrapping_mul(0x9E3779B97F4A7C15),
                inputs: &scenario.inputs,
                env: &scenario.env,
                dpor,
                max_depth: max_depth as usize,
                checkpoint_every: (budget.checkpoint_interval > 0)
                    .then_some(budget.checkpoint_interval),
                warm: Vec::new(),
            };
            explore_tree_parallel(
                scenario,
                &cfg,
                budget,
                workers,
                &mut stats,
                &mut |out, _| {
                    if let Some(f) = (scenario.failure_of)(&out.io) {
                        failures.insert(f.failure_id);
                    }
                    false
                },
            );
        }
        None => {
            for i in 0..budget.max_executions {
                if stats.ticks >= budget.max_ticks {
                    break;
                }
                let sched_seed = scenario
                    .sched_seed
                    .wrapping_add(i)
                    .wrapping_mul(0x9E3779B97F4A7C15);
                let policy = match strategy {
                    SearchStrategy::Pct {
                        expected_len,
                        depth,
                    } => PolicyChoice::Pct {
                        seed: sched_seed,
                        expected_len,
                        depth,
                    },
                    _ => PolicyChoice::Random(sched_seed),
                };
                let spec = RunSpec {
                    seed: scenario.seed,
                    policy,
                    inputs: scenario.inputs.clone(),
                    env: scenario.env.clone(),
                };
                let out = scenario.execute(&spec, vec![]);
                stats.charge_run(&out);
                if let Some(f) = (scenario.failure_of)(&out.io) {
                    failures.insert(f.failure_id);
                }
            }
        }
    }
    (failures, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NondetSpace;
    use dd_sim::{Builder, EnvConfig, InputScript, Program, Value};
    use std::sync::Arc;

    /// Outputs the pair of inputs it reads plus their sum.
    struct Summer;
    impl Program for Summer {
        fn name(&self) -> &'static str {
            "summer"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let p = b.in_port("operands");
            let out = b.out_port("sum");
            b.spawn("summer", "g", move |mut ctx| async move {
                let a: i64 = ctx.input(p, "sum::a").await?;
                let bb: i64 = ctx.input(p, "sum::b").await?;
                ctx.output(out, a + bb, "sum::out").await
            });
        }
    }

    fn input_pair(a: i64, b: i64) -> InputScript {
        let mut s = InputScript::new();
        s.push("operands", 0, Value::Int(a));
        s.push("operands", 1, Value::Int(b));
        s
    }

    fn scenario_with_inputs(candidates: Vec<InputScript>) -> Scenario {
        Scenario {
            program: Arc::new(Summer),
            seed: 7,
            sched_seed: 7,
            inputs: input_pair(2, 2),
            env: EnvConfig::clean(),
            max_steps: 10_000,
            failure_of: Arc::new(|_| None),
            space: NondetSpace {
                seeds: vec![0, 1],
                inputs: candidates,
                envs: vec![EnvConfig::clean()],
            },
        }
    }

    #[test]
    fn search_finds_matching_inputs() {
        let scenario =
            scenario_with_inputs(vec![input_pair(1, 1), input_pair(1, 4), input_pair(2, 3)]);
        let result = search(&scenario, &InferenceBudget::executions(50), None, |out| {
            out.io.outputs_on("sum").first().and_then(|v| v.as_int()) == Some(5)
        });
        assert!(result.stats.found);
        // The first candidate summing to 5 in enumeration order is (1,4).
        let spec = result.spec.unwrap();
        assert_eq!(spec.inputs.for_port("operands")[0].value, Value::Int(1));
        assert!(result.stats.explored >= 2);
    }

    #[test]
    fn search_respects_budget() {
        let scenario = scenario_with_inputs(vec![input_pair(1, 1)]);
        let result = search(&scenario, &InferenceBudget::executions(1), None, |_| false);
        assert!(!result.stats.found);
        assert_eq!(result.stats.explored, 1);
        assert!(result.run.is_none());
    }

    #[test]
    fn fixed_inputs_skip_input_enumeration() {
        let scenario = scenario_with_inputs(vec![input_pair(9, 9)]);
        let fixed = input_pair(3, 4);
        let result = search(
            &scenario,
            &InferenceBudget::executions(50),
            Some(&fixed),
            |out| out.io.outputs_on("sum").first().and_then(|v| v.as_int()) == Some(7),
        );
        assert!(result.stats.found, "fixed inputs (3,4) must be used");
    }

    #[test]
    fn search_accumulates_ticks() {
        let scenario = scenario_with_inputs(vec![input_pair(1, 1)]);
        let result = search(&scenario, &InferenceBudget::executions(4), None, |_| false);
        assert!(result.stats.ticks > 0);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = InferenceBudget::builder().build().unwrap();
        assert_eq!(built, InferenceBudget::default());
    }

    #[test]
    fn builder_matches_named_constructors() {
        let built = InferenceBudget::builder()
            .max_executions(64)
            .strategy(SearchStrategy::Dpor { max_depth: 6 })
            .build()
            .unwrap();
        assert_eq!(built, InferenceBudget::dpor(64, 6));

        let built = InferenceBudget::builder()
            .max_executions(64)
            .strategy(SearchStrategy::DporParallel {
                max_depth: 6,
                workers: 0,
            })
            .checkpoint_interval(InferenceBudget::DEFAULT_CHECKPOINT_INTERVAL)
            .workers(4)
            .build()
            .unwrap();
        assert_eq!(built, InferenceBudget::dpor_parallel(64, 6, 4));
    }

    #[test]
    fn builder_rejects_incoherent_combinations() {
        // Zero bounds could never execute a candidate.
        assert!(InferenceBudget::builder()
            .max_executions(0)
            .build()
            .is_err());
        assert!(InferenceBudget::builder().max_ticks(0).build().is_err());

        // Worker pools are only consumed by DporParallel.
        assert!(InferenceBudget::builder().workers(4).build().is_err());
        assert!(InferenceBudget::builder()
            .strategy(SearchStrategy::Dpor { max_depth: 4 })
            .workers(4)
            .build()
            .is_err());

        // An explicit strategy worker count conflicts with a budget pool.
        assert!(InferenceBudget::builder()
            .strategy(SearchStrategy::DporParallel {
                max_depth: 4,
                workers: 2,
            })
            .workers(4)
            .build()
            .is_err());

        // Checkpointing is a systematic-strategy facility.
        assert!(InferenceBudget::builder()
            .checkpoint_interval(1)
            .build()
            .is_err());

        // A depth-0 systematic walk explores nothing.
        assert!(InferenceBudget::builder()
            .strategy(SearchStrategy::Exhaustive { max_depth: 0 })
            .build()
            .is_err());
    }
}
