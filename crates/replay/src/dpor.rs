//! Partial-order-reduced exploration of the schedule tree (DPOR-lite).
//!
//! Blind enumeration of schedules wastes most of its budget re-executing
//! interleavings that only reorder *commuting* operations. This module
//! explores the tree of scheduling decisions depth-first via
//! [`PrefixPolicy`]-forced runs and — in DPOR mode —
//! expands only the sibling branches that dynamic conflict analysis proves
//! worth visiting, in the style of Flanagan–Godefroid dynamic partial-order
//! reduction:
//!
//! - `dd-sim` reports, at every recorded decision, the enabled task set and
//!   each candidate's pending-operation footprint
//!   ([`OpDesc`]).
//! - After each run, a vector-clock pass over the trace (the same
//!   happens-before edges `dd-detect`'s race detector uses: spawn, join,
//!   lock hand-off, channel message, notification) finds pairs of
//!   conflicting, concurrent transitions and adds *backtrack points*: the
//!   decision nodes where reordering the pair could reach a new state.
//! - Sibling branches never added to a node's backtrack set are *pruned* —
//!   counted separately from executed interleavings in
//!   [`InferenceStats`] so debugging-efficiency
//!   numbers reflect work actually done.
//!
//! Exploration is bounded by `max_depth` (decisions beyond it follow a
//! deterministic seeded tail) and by the caller's
//! [`InferenceBudget`]. Exhaustive mode uses the
//! same tree walk with every sibling in every backtrack set, which makes
//! "DPOR executes a subset of exhaustive's interleavings" directly
//! measurable.
//!
//! With a checkpoint interval on the budget the walk becomes a *fork-based
//! DFS*: runs snapshot the kernel [`WorldState`](dd_sim::WorldSnapshot) at
//! decision points inside the horizon, and each backtracked branch resumes
//! from the deepest snapshot compatible with its forced prefix instead of
//! re-executing the shared prefix from the first instruction. Forking is
//! invisible to the search: the same interleavings are visited in the same
//! order with bit-identical traces, and only the genuinely executed steps
//! are charged to [`InferenceStats`].
//!
//! One deliberate asymmetry: because inherited (skipped) ticks are not
//! re-spent, a `max_ticks`-bounded budget stretches further under
//! checkpointing — the walk covers *more* interleavings before the tick
//! cutoff than scratch does. Walk-for-walk equivalence (same interleavings,
//! same failure set) is therefore guaranteed under execution-count budgets;
//! under tick budgets checkpointed search dominates scratch rather than
//! mirroring it.
//!
//! The walk itself is factored out of run *execution* (see the `RunFetcher`
//! trait): the single-threaded `walk` owns every piece of cross-run state — the
//! DFS stack, backtrack sets, budget, statistics, and the snapshot pool —
//! and charges each consumed run against the pool's canonical resume point,
//! so swapping the sequential fetcher for the multi-worker one in
//! [`parallel`](crate::parallel) changes wall-clock time and nothing else.

use crate::explorer::{InferenceBudget, InferenceStats};
use crate::scenario::{PolicyChoice, RunSpec, Scenario};
use dd_detect::VectorClock;
use dd_sim::{
    CheckpointPlan, DecisionKind, EnvConfig, Event, InputScript, OpDesc, PrefixPolicy, RunOutput,
    TaskId, WorldSnapshot,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// The walk's snapshot pool: prefix-compatible [`WorldSnapshot`]s along the
/// current DFS path, keyed by the decision index they were taken at.
/// `Arc`-shared so a parallel fetcher can hand the same snapshot to several
/// worker threads without cloning the world per job. Sharing is two-level:
/// the pool shares snapshots by handle, and the snapshots themselves share
/// their sealed history chunks (`dd_sim::ChunkedLog`, `Send + Sync`) with
/// each other and with every run forked from them — so the pool's memory
/// and per-fork clone cost are O(live state) per entry, not O(history).
pub(crate) type SnapshotPool = BTreeMap<u64, Arc<WorldSnapshot>>;

/// One configuration of the tree walk: which run parameters are fixed and
/// how aggressively to prune.
pub(crate) struct TreeConfig<'a> {
    /// Kernel RNG seed for every run in this tree.
    pub seed: u64,
    /// Seed of the deterministic tail policy past the forced prefix.
    pub tail_seed: u64,
    /// Input script for every run.
    pub inputs: &'a InputScript,
    /// Environment for every run.
    pub env: &'a EnvConfig,
    /// `true` for DPOR pruning, `false` for exhaustive enumeration.
    pub dpor: bool,
    /// Decisions beyond this depth are never branched.
    pub max_depth: usize,
    /// `Some(k)`: fork-based DFS — runs snapshot the kernel world every
    /// `k`-th decision inside the branching horizon, and each backtracked
    /// branch resumes from the deepest snapshot compatible with its forced
    /// prefix instead of re-executing from the first instruction. `None`
    /// re-executes every branch from scratch.
    pub checkpoint_every: Option<u64>,
    /// Snapshots restored from a persistent store that seed the walk's
    /// pool (warm start): a fresh process re-exploring the same tree binds
    /// branches to these instead of re-executing the shared prefixes its
    /// predecessor already paid for. Entries whose decision path diverges
    /// from a branch's forced prefix are skipped by the compatibility
    /// check, so stale or foreign snapshots are harmless. Only effective
    /// with `checkpoint_every` set.
    pub warm: Vec<Arc<WorldSnapshot>>,
}

/// One decision node on the DFS stack.
struct Node {
    /// The enabled tasks, sorted by id.
    candidates: Vec<TaskId>,
    /// Candidate index the current path takes at this node.
    chosen_index: u32,
    /// Tasks worth exploring at this node (grows as conflicts are found).
    backtrack: BTreeSet<TaskId>,
    /// Tasks already explored at this node.
    done: BTreeSet<TaskId>,
}

/// A backtrack-set addition derived from one conflicting transition pair.
enum Add {
    /// The conflicting task was enabled at the node: explore it there.
    Task(TaskId),
    /// The conflicting task was not enabled: explore every sibling.
    All,
}

/// How the tree walk obtains the [`RunOutput`] of one forced-prefix run.
///
/// The walk itself — stack, backtrack sets, pruning, budget, statistics,
/// snapshot pool — is single-threaded and identical for every fetcher; the
/// fetcher only decides *where* the execution happens. [`SeqRuns`] executes
/// inline (the classic sequential explorer); the parallel fetcher in
/// [`parallel`](crate::parallel) farms runs out to worker threads and
/// consumes their results in the same order. Because a forced-prefix run's
/// trace is bit-identical however it is produced (the PR-3 snapshot
/// determinism guarantee), the fetcher is invisible to the search.
pub(crate) trait RunFetcher {
    /// Produces the run for `prefix`. `pool` is the walk's canonical
    /// prefix-compatible snapshot pool (entries at decision `d <
    /// prefix.len()` may be restored).
    fn fetch(&mut self, spec: &RunSpec, prefix: &[u32], pool: &SnapshotPool) -> RunOutput;

    /// Offers the walk's current pending branches (forced prefixes that
    /// will all eventually be consumed, shallowest first) for speculative
    /// execution. Sequential fetchers ignore this.
    fn speculate(&mut self, _branches: Vec<Vec<u32>>, _pool: &SnapshotPool) {}
}

/// The checkpoint plan a tree configuration implies.
///
/// A usable snapshot must sit strictly inside a future forced prefix, and
/// prefixes never exceed `max_depth` — so the deepest restorable snapshot
/// is at decision `max_depth - 1`; snapshotting at `max_depth` itself would
/// be a full-world clone nothing can ever restore.
pub(crate) fn plan_of(cfg: &TreeConfig<'_>) -> Option<CheckpointPlan> {
    cfg.checkpoint_every
        .map(|k| CheckpointPlan::new(k, (cfg.max_depth as u64).saturating_sub(1)))
}

/// The deepest snapshot in `pool` that a run forced to `prefix` may fork
/// from: strictly inside the prefix, and leading to the run's own path (the
/// prefix starts with the snapshot's decision path). The pool may hold
/// entries that are not on the current path — warm-start seeds from a
/// persistent store, or (for the parallel fetcher's mirror) snapshots from
/// subtrees the walk has since left — so compatibility is checked
/// explicitly rather than assumed.
pub(crate) fn deepest_compatible(
    pool: &SnapshotPool,
    prefix: &[u32],
) -> Option<(u64, Arc<WorldSnapshot>)> {
    pool.range(..prefix.len() as u64)
        .rev()
        .find(|(&d, snap)| {
            snap.decision_prefix()
                .eq(prefix[..d as usize].iter().copied())
        })
        .map(|(&d, snap)| (d, Arc::clone(snap)))
}

/// The sequential fetcher: executes every run inline, restoring the deepest
/// usable snapshot itself.
struct SeqRuns<'a> {
    scenario: &'a Scenario,
    plan: Option<CheckpointPlan>,
    tail_seed: u64,
}

impl RunFetcher for SeqRuns<'_> {
    fn fetch(&mut self, spec: &RunSpec, prefix: &[u32], pool: &SnapshotPool) -> RunOutput {
        match self.plan {
            None => self.scenario.execute(spec, vec![]),
            Some(plan) => {
                // Fork instead of replaying from scratch: restore the
                // deepest compatible snapshot strictly inside the prefix
                // (the fork decision itself is `prefix.len() - 1`) and
                // force only the remaining prefix decisions.
                match deepest_compatible(pool, prefix) {
                    Some((d, snap)) => {
                        let forced: Vec<u32> = prefix[d as usize..].to_vec();
                        self.scenario.resume(
                            spec,
                            &snap,
                            Box::new(PrefixPolicy::new(forced, self.tail_seed)),
                            plan,
                        )
                    }
                    None => self.scenario.execute_checkpointed(spec, plan, vec![]),
                }
            }
        }
    }
}

/// Walks the schedule tree rooted at `cfg`'s run parameters, calling
/// `visit` on every executed interleaving. Stops when `visit` returns
/// `true` (returning that run), the tree is exhausted (`None`), or the
/// budget runs out (`None`). `stats` accumulates across calls so one budget
/// can span several trees.
pub(crate) fn explore_tree(
    scenario: &Scenario,
    cfg: &TreeConfig<'_>,
    budget: &InferenceBudget,
    stats: &mut InferenceStats,
    visit: &mut dyn FnMut(&RunOutput, &RunSpec) -> bool,
) -> Option<(RunOutput, RunSpec)> {
    let mut fetcher = SeqRuns {
        scenario,
        plan: plan_of(cfg),
        tail_seed: cfg.tail_seed,
    };
    walk(cfg, budget, stats, visit, &mut fetcher)
}

/// The deterministic heart of both explorers: the DFS over the schedule
/// tree, generic over how runs are produced. Everything observable — the
/// interleavings visited and their order, the backtrack/pruning decisions,
/// the failure set, and the `InferenceStats` accounting — is computed here,
/// on one thread, from run outputs that are prefix-deterministic; this is
/// what makes a parallel fetcher byte-equivalent to the sequential one by
/// construction.
///
/// Step/tick charges are *canonical*: each consumed run is charged as if it
/// had been resumed from the deepest snapshot in the walk's own pool,
/// whether or not the fetcher actually restored that snapshot (a worker may
/// have forked from a shallower one that existed when the job was queued).
/// For the same reason, snapshots a run reports below the canonical resume
/// point are dropped — the pool evolves exactly as the sequential
/// explorer's would, keeping the accounting worker-count-invariant.
pub(crate) fn walk(
    cfg: &TreeConfig<'_>,
    budget: &InferenceBudget,
    stats: &mut InferenceStats,
    visit: &mut dyn FnMut(&RunOutput, &RunSpec) -> bool,
    fetcher: &mut dyn RunFetcher,
) -> Option<(RunOutput, RunSpec)> {
    let mut stack: Vec<Node> = Vec::new();
    let mut prefix: Vec<u32> = Vec::new();
    // Snapshots along the *current* DFS path, keyed by decision index. An
    // entry at `d` captures the world before decision `d`, with decisions
    // `0..d` equal to `prefix[0..d]`; the backtrack step drops entries past
    // each fork point, so everything in the pool stays prefix-compatible.
    let mut pool: SnapshotPool = BTreeMap::new();
    let checkpointing = cfg.checkpoint_every.is_some();
    if checkpointing {
        // Warm start: seed the pool with store-restored snapshots. The
        // compatibility check at every resume point skips any that are not
        // on the branch being executed, so seeding is always safe; when a
        // fresh process re-walks the tree its predecessor explored, these
        // replace the scratch re-execution of shared prefixes.
        for s in &cfg.warm {
            pool.entry(s.at_decision()).or_insert_with(|| Arc::clone(s));
        }
    }
    loop {
        if stats.explored >= budget.max_executions || stats.ticks >= budget.max_ticks {
            return None;
        }
        let spec = RunSpec {
            seed: cfg.seed,
            policy: PolicyChoice::Prefix(prefix.clone(), cfg.tail_seed),
            inputs: cfg.inputs.clone(),
            env: cfg.env.clone(),
        };
        // The canonical resume point: the deepest pool snapshot strictly
        // inside the forced prefix. Captured before the fetch so the charge
        // below reflects this walk's pool, not the fetcher's private choice.
        let canon: Option<(u64, u64, u64)> = if checkpointing {
            deepest_compatible(&pool, &prefix).map(|(d, s)| (d, s.steps(), s.time()))
        } else {
            None
        };
        let mut out = fetcher.fetch(&spec, &prefix, &pool);
        for s in std::mem::take(&mut out.snapshots) {
            // Snapshots at or below the canonical resume point would not
            // exist in a sequential walk (its resumed runs only report
            // deeper ones); keeping the pools identical keeps the charges
            // identical.
            if canon.is_none_or(|(d, _, _)| s.at_decision() > d) {
                // Unconditional insert: the just-executed run is on the
                // current path by construction, so its snapshot supersedes
                // any warm-start seed parked at the same decision (which
                // may be from a diverged path).
                pool.insert(s.at_decision(), Arc::new(s));
            }
        }
        let (skip_steps, skip_ticks) = canon.map_or((0, 0), |(_, steps, ticks)| (steps, ticks));
        debug_assert!(out.stats.steps >= skip_steps && out.stats.exec_ticks >= skip_ticks);
        stats.explored += 1;
        stats.ticks += out.stats.exec_ticks.saturating_sub(skip_ticks);
        stats.steps_executed += out.stats.steps.saturating_sub(skip_steps);
        stats.steps_skipped += skip_steps;

        // Extend the stack with the decisions this run took past the forced
        // prefix. The prefix replays deterministically, so decisions the
        // stack already covers are unchanged.
        let horizon = out.decisions.len().min(cfg.max_depth);
        for i in stack.len()..horizon {
            let enabled = &out.decision_enabled[i];
            let chosen = out.decisions[i].chosen;
            let backtrack: BTreeSet<TaskId> = if cfg.dpor {
                BTreeSet::from([chosen])
            } else {
                enabled.iter().map(|(t, _)| *t).collect()
            };
            stack.push(Node {
                candidates: enabled.iter().map(|(t, _)| *t).collect(),
                chosen_index: out.decisions[i].chosen_index,
                backtrack,
                done: BTreeSet::from([chosen]),
            });
        }
        if cfg.dpor {
            for (i, add) in backtrack_points(&out, cfg.max_depth) {
                let Some(node) = stack.get_mut(i) else {
                    continue;
                };
                match add {
                    Add::Task(t) => {
                        node.backtrack.insert(t);
                    }
                    Add::All => {
                        let all: Vec<TaskId> = node.candidates.clone();
                        node.backtrack.extend(all);
                    }
                }
            }
        }
        if visit(&out, &spec) {
            stats.found = true;
            stats.found_at = Some(stats.explored - 1);
            return Some((out, spec));
        }

        // Every branch still pending anywhere on the stack will eventually
        // be consumed (backtrack sets only grow, `done` entries never come
        // back) and its run depends only on its forced prefix — so a
        // parallel fetcher may execute all of them ahead of time.
        let branches = pending_branches(&stack);
        if !branches.is_empty() {
            fetcher.speculate(branches, &pool);
        }

        // Backtrack: pop exhausted nodes (counting their never-explored
        // siblings as pruned), then branch at the deepest pending node.
        loop {
            let Some(top) = stack.last_mut() else {
                return None; // Tree exhausted.
            };
            match top.backtrack.difference(&top.done).next().copied() {
                Some(t) => {
                    top.done.insert(t);
                    top.chosen_index = top
                        .candidates
                        .iter()
                        .position(|&c| c == t)
                        .expect("backtrack tasks are always candidates")
                        as u32;
                    prefix = stack.iter().map(|n| n.chosen_index).collect();
                    // Snapshots at or past the fork decision captured the
                    // abandoned branch; only the shared prefix stays usable.
                    pool.retain(|&d, _| d < prefix.len() as u64);
                    break;
                }
                None => {
                    stats.pruned += (top.candidates.len() - top.done.len()) as u64;
                    stack.pop();
                }
            }
        }
    }
}

/// Every branch currently pending on the DFS stack, as the forced prefix
/// its first run will use: the path to the node plus the sibling's
/// candidate index.
///
/// Ordered for a LIFO frontier: shallow nodes first and, within a node,
/// larger task ids first — so popping from the back yields the deepest
/// node's smallest pending task, which is exactly the branch the walk
/// consumes next.
fn pending_branches(stack: &[Node]) -> Vec<Vec<u32>> {
    let mut branches = Vec::new();
    let mut base: Vec<u32> = Vec::with_capacity(stack.len());
    for node in stack {
        let pending: Vec<TaskId> = node.backtrack.difference(&node.done).copied().collect();
        for &t in pending.iter().rev() {
            let idx = node
                .candidates
                .iter()
                .position(|&c| c == t)
                .expect("backtrack tasks are always candidates") as u32;
            let mut p = base.clone();
            p.push(idx);
            branches.push(p);
        }
        base.push(node.chosen_index);
    }
    branches
}

/// The conflict footprint an executed trace event implies, or `None` for
/// events that commute with everything (and so never create backtracks).
fn event_desc(event: &Event) -> Option<OpDesc> {
    match event {
        Event::Read { var, .. } => Some(OpDesc::Var {
            var: *var,
            write: false,
        }),
        Event::Write { var, .. } => Some(OpDesc::Var {
            var: *var,
            write: true,
        }),
        Event::LockAcquire { lock, .. } | Event::LockRelease { lock, .. } => {
            Some(OpDesc::Lock { lock: *lock })
        }
        Event::CondWait { cvar, lock, .. } => Some(OpDesc::CvWait {
            cvar: *cvar,
            lock: *lock,
        }),
        Event::CondNotify { cvar, .. } => Some(OpDesc::CvNotify { cvar: *cvar }),
        Event::Send { chan, .. } | Event::Recv { chan, .. } | Event::SendDropped { chan, .. } => {
            Some(OpDesc::Chan { chan: *chan })
        }
        Event::InputRead { port, .. } => Some(OpDesc::PortIn { port: *port }),
        Event::Output { port, .. } => Some(OpDesc::PortOut { port: *port }),
        Event::RngDraw { .. } => Some(OpDesc::Rng),
        Event::Crash { .. } => Some(OpDesc::Global),
        _ => None,
    }
}

/// Finds the backtrack points one executed run implies.
///
/// For every executed operation `j` by task `q`, scans the decisions inside
/// the branching horizon for the *latest* one whose transition conflicts
/// with `j` and was taken by a different task. Variable conflicts are
/// additionally filtered through the vector-clock happens-before check (a
/// write that already happened-before the access cannot be reordered with
/// it); resource-competition conflicts (locks, channels, ports, RNG,
/// condition variables) create happens-before edges themselves, so they are
/// always treated as reorderable.
fn backtrack_points(out: &RunOutput, max_depth: usize) -> Vec<(usize, Add)> {
    let decisions = &out.decisions;
    let enabled = &out.decision_enabled;
    let horizon = decisions.len().min(max_depth);
    let Some(trace) = out.trace.as_ref() else {
        return Vec::new();
    };
    if horizon == 0 {
        return Vec::new();
    }

    // Footprint of each decision's transition: the op the chosen task was
    // parked on when granted (known even when the attempt blocked).
    let exec_op: Vec<OpDesc> = decisions
        .iter()
        .zip(enabled)
        .map(|(d, en)| {
            en.iter()
                .find(|(t, _)| *t == d.chosen)
                .and_then(|(_, desc)| *desc)
                .unwrap_or(OpDesc::Global)
        })
        .collect();

    let mut task_clocks: HashMap<u32, VectorClock> = HashMap::new();
    let mut lock_clocks: HashMap<u32, VectorClock> = HashMap::new();
    let mut chan_clocks: HashMap<u32, VecDeque<VectorClock>> = HashMap::new();
    // Clock of each in-horizon decision's transition, once it executes.
    let mut decision_clock: Vec<Option<VectorClock>> = vec![None; horizon];
    // Index of the latest Decision event seen (-1 before the first).
    let mut cursor: isize = -1;
    // Decision whose transition's clock snapshot is still outstanding.
    let mut awaiting: Option<(usize, TaskId)> = None;

    let mut adds: BTreeSet<(usize, Option<u32>)> = BTreeSet::new();

    for (_, event) in trace {
        // 1. Happens-before bookkeeping (same edges as dd-detect's
        //    race detector).
        match event {
            Event::Decision { kind, chosen, .. } => {
                cursor += 1;
                let i = cursor as usize;
                awaiting = match kind {
                    // The next op event after a NextTask grant is the chosen
                    // task's transition. WakeOne decisions happen inside a
                    // notifier's op; their transition clock is not needed
                    // (cvar conflicts never take the clock path).
                    DecisionKind::NextTask if i < horizon => Some((i, *chosen)),
                    _ => None,
                };
                continue;
            }
            Event::TaskSpawn { parent, child, .. } => {
                if let Some(p) = parent {
                    let pvc = task_clocks.entry(p.0).or_default().clone();
                    task_clocks.entry(child.0).or_default().join(&pvc);
                }
                task_clocks.entry(child.0).or_default().tick(*child);
                continue;
            }
            Event::LockAcquire { task, lock, .. } => {
                if let Some(lvc) = lock_clocks.get(&lock.0).cloned() {
                    task_clocks.entry(task.0).or_default().join(&lvc);
                }
                task_clocks.entry(task.0).or_default().tick(*task);
            }
            Event::LockRelease { task, lock, .. } => {
                let c = task_clocks.entry(task.0).or_default();
                c.tick(*task);
                lock_clocks.insert(lock.0, c.clone());
            }
            Event::CondNotify { task, woken, .. } => {
                task_clocks.entry(task.0).or_default().tick(*task);
                let nvc = task_clocks.entry(task.0).or_default().clone();
                for w in woken {
                    task_clocks.entry(w.0).or_default().join(&nvc);
                }
            }
            Event::Send { task, chan, .. } => {
                let c = task_clocks.entry(task.0).or_default();
                c.tick(*task);
                chan_clocks.entry(chan.0).or_default().push_back(c.clone());
            }
            Event::Recv { task, chan, .. } => {
                if let Some(mvc) = chan_clocks.entry(chan.0).or_default().pop_front() {
                    task_clocks.entry(task.0).or_default().join(&mvc);
                }
                task_clocks.entry(task.0).or_default().tick(*task);
            }
            Event::Joined { task, target, .. } => {
                let tvc = task_clocks.entry(target.0).or_default().clone();
                let c = task_clocks.entry(task.0).or_default();
                c.join(&tvc);
                c.tick(*task);
            }
            e => {
                if let Some(task) = e.task() {
                    task_clocks.entry(task.0).or_default().tick(task);
                }
            }
        }

        let Some(q) = event.task() else { continue };

        // 2. Snapshot the awaited decision-transition clock.
        if let Some((i, t)) = awaiting {
            if t == q {
                decision_clock[i] = Some(task_clocks.entry(q.0).or_default().clone());
                awaiting = None;
            }
        }

        // 3. Conflict scan for this executed operation.
        let Some(o_j) = event_desc(event) else {
            continue;
        };
        let c_j = task_clocks.entry(q.0).or_default().clone();
        let upto = (cursor.min(horizon as isize - 1)).max(-1);
        for i in (0..=upto).rev() {
            let i = i as usize;
            if decisions[i].chosen == q {
                continue;
            }
            if !exec_op[i].conflicts(&o_j) {
                continue;
            }
            let both_vars =
                matches!(exec_op[i], OpDesc::Var { .. }) && matches!(o_j, OpDesc::Var { .. });
            if both_vars {
                if let Some(c_i) = &decision_clock[i] {
                    if c_i.leq(&c_j) {
                        // Already happens-before ordered: not reorderable.
                        continue;
                    }
                }
            }
            let add = if enabled[i].iter().any(|(t, _)| *t == q) {
                (i, Some(q.0))
            } else {
                (i, None)
            };
            adds.insert(add);
            break; // Only the latest reorderable conflict matters.
        }
    }

    adds.into_iter()
        .map(|(i, t)| match t {
            Some(t) => (i, Add::Task(TaskId(t))),
            None => (i, Add::All),
        })
        .collect()
}
