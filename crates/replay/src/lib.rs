//! # dd-replay — baseline determinism models and inference
//!
//! The replay-debugging systems the paper positions debug determinism
//! against, re-implemented over `dd-sim`:
//!
//! | Model | System | Records | Replays by |
//! |---|---|---|---|
//! | [`PerfectModel`] | SMP-ReVirt | schedule + inputs + env (CREW cost) | exact re-execution |
//! | [`ValueModel`] | iDNA | every value observed per task | feeding logs back |
//! | [`OutputLiteModel`] | ODR (light) | outputs | searching inputs × schedules × envs |
//! | [`OutputHeavyModel`] | ODR (heavy) | outputs + inputs | searching schedules × envs |
//! | [`MsgOrderModel`] | message-order replay | total grant order (RLE task runs) + inputs | order-guided re-execution |
//! | [`RaceCompleteModel`] | race-complete replay | race report + racing outcomes + racing grant order | guided re-execution, DPOR prefix search, outcome feeding |
//! | [`FailureModel`] | ESD | failure evidence only | searching for the same failure |
//!
//! The debug-determinism model (RCSE) lives in `dd-core`, built from the
//! same pieces.
//!
//! Inference is explicit bounded [`search`] over a scenario's
//! [`NondetSpace`] — the substitution for symbolic execution documented in
//! DESIGN.md. Its cost is measured and feeds debugging efficiency. The
//! systematic strategies can run multi-worker
//! ([`SearchStrategy::DporParallel`], see [`parallel`]) with byte-identical
//! results for any worker count.

pub mod divergence;
pub mod dpor;
pub mod explorer;
pub mod guided;
pub mod models;
pub mod parallel;
pub mod recordings;
pub mod scenario;

pub use divergence::{
    compare_streams, replay_trace, replay_trace_from, replay_trace_with, Divergence,
    DivergenceReport,
};
pub use explorer::{
    enumerate_failures, search, search_with, search_with_warm, BudgetError, InferenceBudget,
    InferenceBudgetBuilder, InferenceStats, SearchResult, SearchStrategy,
};
pub use guided::{
    pinned_completion_digest, racing_outcomes, FeedHandle, GuidedHandle, GuidedOrderPolicy,
    OrderCostObserver, OrderEntry, OrderLog, OrderRecorder, OutcomeFeed, PinSet, RaceOutcome,
};
pub use models::{
    DeterminismModel, FailureModel, MsgOrderModel, OutputHeavyModel, OutputLiteModel, PerfectModel,
    RaceCompleteModel, ReplayResult, ValueModel, RECORDING_CHECKPOINTS,
};
pub use recordings::{
    costs, Artifact, CrewObserver, ModelKind, OriginalRun, Recording, UnknownModelKind,
};
pub use scenario::{FailureOracle, NondetSpace, PolicyChoice, RunSpec, Scenario};
