//! Scenarios and run specifications: what a replayer knows and may try.
//!
//! A [`Scenario`] is the "production incident": the program, the (hidden)
//! nondeterminism of the original run, a failure oracle, and the
//! [`NondetSpace`] a replayer is allowed to search when inference is needed.
//! Replayers receive the original seed/inputs/environment only through what
//! their recording artifact captured — the scenario's own values are used
//! once, to produce the original run.

use dd_sim::{
    EnvConfig, InputScript, IoSummary, NondetOverride, Observer, Program, RunConfig, RunOutput,
    SchedulePolicy,
};
use dd_trace::{FailureSnapshot, ScheduleLog};
use std::sync::Arc;

/// Decides whether a run's observable behaviour constitutes a failure, and
/// if so assigns it a stable identity. Supplied by the workload's I/O
/// specification (see `dd-core`).
pub type FailureOracle = Arc<dyn Fn(&IoSummary) -> Option<FailureSnapshot> + Send + Sync>;

/// The space of nondeterminism a replayer may search during inference.
///
/// This models what ESD-style execution synthesis explores symbolically:
/// schedules (seeds), alternative inputs, and alternative environments
/// (faults, congestion, resource limits).
#[derive(Clone)]
pub struct NondetSpace {
    /// Candidate schedule seeds.
    pub seeds: Vec<u64>,
    /// Candidate input scripts (for models that did not record inputs).
    pub inputs: Vec<InputScript>,
    /// Candidate environments (for models that did not record the
    /// environment).
    pub envs: Vec<EnvConfig>,
}

impl NondetSpace {
    /// A space of schedule seeds only, with the given input script and a
    /// clean environment as the sole candidates.
    pub fn schedules_only(n_seeds: u64, inputs: InputScript) -> Self {
        NondetSpace {
            seeds: (0..n_seeds).collect(),
            inputs: vec![inputs],
            envs: vec![EnvConfig::clean()],
        }
    }

    /// Total number of candidate combinations.
    pub fn size(&self) -> u64 {
        self.seeds.len() as u64 * self.inputs.len().max(1) as u64 * self.envs.len().max(1) as u64
    }
}

/// A production incident to be debugged via replay.
#[derive(Clone)]
pub struct Scenario {
    /// The program.
    pub program: Arc<dyn Program>,
    /// Kernel RNG seed of the original run.
    pub seed: u64,
    /// Schedule-policy seed of the original run.
    pub sched_seed: u64,
    /// Inputs of the original run.
    pub inputs: InputScript,
    /// Environment of the original run.
    pub env: EnvConfig,
    /// Step bound for every run.
    pub max_steps: u64,
    /// Failure oracle (the I/O specification's verdict).
    pub failure_of: FailureOracle,
    /// What a replayer may search.
    pub space: NondetSpace,
}

impl Scenario {
    /// Builds the [`RunSpec`] of the original production run.
    pub fn original_spec(&self) -> RunSpec {
        RunSpec {
            seed: self.seed,
            policy: PolicyChoice::Random(self.sched_seed),
            inputs: self.inputs.clone(),
            env: self.env.clone(),
        }
    }

    /// Runs a spec against this scenario's program.
    pub fn execute(&self, spec: &RunSpec, observers: Vec<Box<dyn Observer>>) -> RunOutput {
        self.execute_with_override(spec, observers, None)
    }

    /// Runs a spec with per-decision state digests enabled (see
    /// [`dd_sim::RunConfig::hash_decisions`]). The run itself is
    /// bit-identical to [`Scenario::execute`]; the output additionally
    /// carries `decision_hashes` and `final_state_hash` for divergence
    /// localisation.
    pub fn execute_hashed(&self, spec: &RunSpec, observers: Vec<Box<dyn Observer>>) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            hash_decisions: true,
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, spec.policy.build(), observers)
    }

    /// Runs a spec collecting resumable world snapshots per `plan`
    /// (see [`dd_sim::CheckpointPlan`]). Snapshot collection does not
    /// perturb the run: the trace is bit-identical to [`Scenario::execute`].
    pub fn execute_checkpointed(
        &self,
        spec: &RunSpec,
        plan: dd_sim::CheckpointPlan,
        observers: Vec<Box<dyn Observer>>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            checkpoints: Some(plan),
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, spec.policy.build(), observers)
    }

    /// Runs a spec with both snapshot collection (per `plan`) and
    /// per-decision state digests enabled — the configuration `dd record`
    /// uses to produce a replayable JSONL trace artifact. Neither facility
    /// perturbs the run: the trace is bit-identical to [`Scenario::execute`].
    pub fn execute_recorded(
        &self,
        spec: &RunSpec,
        plan: dd_sim::CheckpointPlan,
        observers: Vec<Box<dyn Observer>>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            checkpoints: Some(plan),
            hash_decisions: true,
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, spec.policy.build(), observers)
    }

    /// [`Scenario::execute_recorded`] with snapshot retention redirected to
    /// a persistent [`dd_sim::SnapshotSink`]: each checkpoint the plan fires
    /// is offered to the sink (typically a `dd-trace` `SnapshotStore`
    /// spilling to disk) instead of accumulating in memory. The run is still
    /// bit-identical to [`Scenario::execute`]; the output's `spilled` marks
    /// identify the snapshots the sink accepted and `snapshots` stays empty.
    pub fn execute_spilled(
        &self,
        spec: &RunSpec,
        plan: dd_sim::CheckpointPlan,
        sink: Box<dyn dd_sim::SnapshotSink>,
        observers: Vec<Box<dyn Observer>>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            checkpoints: Some(plan),
            hash_decisions: true,
            snapshot_sink: Some(sink),
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, spec.policy.build(), observers)
    }

    /// Resumes this scenario's program from a snapshot under `policy`,
    /// continuing to collect deeper snapshots per `plan`. `spec` must carry
    /// the same seed/inputs/environment as the run the snapshot came from.
    pub fn resume(
        &self,
        spec: &RunSpec,
        snapshot: &dd_sim::WorldSnapshot,
        policy: Box<dyn SchedulePolicy>,
        plan: dd_sim::CheckpointPlan,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            checkpoints: Some(plan),
            ..RunConfig::default()
        };
        dd_sim::resume_program(self.program.as_ref(), cfg, snapshot, Some(policy), vec![])
    }

    /// Resumes this scenario's program from a snapshot under `policy`,
    /// with per-decision state digests enabled and no further snapshot
    /// collection — the configuration `dd replay --from` uses to
    /// fast-forward from a stored checkpoint while still localising
    /// divergence. The snapshot carries the digest prefix of the recorded
    /// run, so the output's `decision_hashes` covers the *whole* run:
    /// restored prefix plus re-executed tail.
    pub fn resume_hashed(
        &self,
        spec: &RunSpec,
        snapshot: &dd_sim::WorldSnapshot,
        policy: Box<dyn SchedulePolicy>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            hash_decisions: true,
            ..RunConfig::default()
        };
        dd_sim::resume_program(self.program.as_ref(), cfg, snapshot, Some(policy), vec![])
    }

    /// Runs a spec under an explicitly constructed policy instance,
    /// ignoring `spec.policy`. This is how the order-guided models attach
    /// stateful policies ([`crate::guided::OrderRecorder`],
    /// [`crate::guided::GuidedOrderPolicy`]) that [`PolicyChoice`] cannot
    /// describe.
    pub fn execute_with_policy(
        &self,
        spec: &RunSpec,
        policy: Box<dyn SchedulePolicy>,
        observers: Vec<Box<dyn Observer>>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, policy, observers)
    }

    /// Runs a spec with an optional nondeterminism override (value replay).
    pub fn execute_with_override(
        &self,
        spec: &RunSpec,
        observers: Vec<Box<dyn Observer>>,
        nondet_override: Option<Box<dyn NondetOverride>>,
    ) -> RunOutput {
        let cfg = RunConfig {
            seed: spec.seed,
            max_steps: self.max_steps,
            inputs: spec.inputs.clone(),
            env: spec.env.clone(),
            nondet_override,
            ..RunConfig::default()
        };
        dd_sim::run_program(self.program.as_ref(), cfg, spec.policy.build(), observers)
    }
}

impl core::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Scenario")
            .field("program", &self.program.name())
            .field("seed", &self.seed)
            .field("sched_seed", &self.sched_seed)
            .field("inputs", &self.inputs.len())
            .field("space", &self.space.size())
            .finish()
    }
}

/// How to drive the scheduler for one run.
#[derive(Debug, Clone)]
pub enum PolicyChoice {
    /// Seeded random scheduling (models the production scheduler).
    Random(u64),
    /// Deterministic round-robin.
    RoundRobin,
    /// Strict replay of a recorded schedule.
    Replay(ScheduleLog),
    /// Replay a recorded schedule, then continue randomly.
    ReplayLoose(ScheduleLog, u64),
    /// Force a decision-index prefix, then continue randomly (search).
    Prefix(Vec<u32>, u64),
    /// Probabilistic concurrency testing: random priorities with `depth-1`
    /// change points — good at exposing rare interleavings during search.
    Pct {
        /// Policy seed.
        seed: u64,
        /// Expected run length in decisions.
        expected_len: u64,
        /// Bug depth to target.
        depth: u32,
    },
}

impl PolicyChoice {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyChoice::Random(seed) => Box::new(dd_sim::RandomPolicy::new(*seed)),
            PolicyChoice::RoundRobin => Box::new(dd_sim::RoundRobinPolicy::new()),
            PolicyChoice::Replay(log) => Box::new(log.clone().into_replay_policy()),
            PolicyChoice::ReplayLoose(log, seed) => Box::new(
                dd_sim::ReplayPolicy::with_random_tail(log.decisions.clone(), *seed),
            ),
            PolicyChoice::Prefix(prefix, seed) => {
                Box::new(dd_sim::PrefixPolicy::new(prefix.clone(), *seed))
            }
            PolicyChoice::Pct {
                seed,
                expected_len,
                depth,
            } => Box::new(dd_sim::PctPolicy::new(*seed, *expected_len, *depth)),
        }
    }
}

/// One fully specified run: seed, policy, inputs, environment.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Kernel RNG seed.
    pub seed: u64,
    /// Scheduling policy.
    pub policy: PolicyChoice,
    /// Input script.
    pub inputs: InputScript,
    /// Environment.
    pub env: EnvConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{Builder, StopReason, Value};

    struct Echo;
    impl Program for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let p = b.in_port("in");
            let out = b.out_port("out");
            b.spawn("echo", "g", move |mut ctx| async move {
                let v: i64 = ctx.input(p, "echo::in").await?;
                ctx.output(out, v * 2, "echo::out").await
            });
        }
    }

    fn scenario() -> Scenario {
        let mut inputs = InputScript::new();
        inputs.push("in", 0, Value::Int(21));
        Scenario {
            program: Arc::new(Echo),
            seed: 1,
            sched_seed: 1,
            inputs: inputs.clone(),
            env: EnvConfig::clean(),
            max_steps: 10_000,
            failure_of: Arc::new(|_| None),
            space: NondetSpace::schedules_only(4, inputs),
        }
    }

    #[test]
    fn original_spec_reproduces_configuration() {
        let s = scenario();
        let out = s.execute(&s.original_spec(), vec![]);
        assert_eq!(out.stop, StopReason::Quiescent);
        assert_eq!(out.io.outputs_on("out")[0].as_int(), Some(42));
    }

    #[test]
    fn space_size_multiplies() {
        let s = NondetSpace {
            seeds: vec![1, 2, 3],
            inputs: vec![InputScript::new(), InputScript::new()],
            envs: vec![EnvConfig::clean()],
        };
        assert_eq!(s.size(), 6);
    }

    #[test]
    fn policy_choices_build() {
        for p in [
            PolicyChoice::Random(1),
            PolicyChoice::RoundRobin,
            PolicyChoice::Replay(ScheduleLog::default()),
            PolicyChoice::ReplayLoose(ScheduleLog::default(), 2),
            PolicyChoice::Prefix(vec![0, 1], 3),
            PolicyChoice::Pct {
                seed: 4,
                expected_len: 100,
                depth: 3,
            },
        ] {
            let _ = p.build();
        }
    }
}
