//! Order-guided recording and replay: the machinery behind the
//! [`MsgOrder`](crate::recordings::ModelKind::MsgOrder) and
//! [`RaceComplete`](crate::recordings::ModelKind::RaceComplete) models.
//!
//! Both models record a *pinned-operation order log* instead of a full
//! decision stream. An operation grant is **pinned** when replay must
//! reproduce its position; everything else is **filler** the guided policy
//! re-schedules in deterministic first-candidate order.
//!
//! One simulator property dictates how much must be pinned: every kernel
//! operation charges the global virtual clock (`OpCosts`), so re-ordering
//! *any* two grants shifts the absolute time of everything after them. On
//! time-driven programs (sleep pacing, receive deadlines, timed stops) that
//! shift changes wake-ups and therefore behaviour. The pin sets respond
//! differently:
//!
//! - [`PinSet::Total`] pins every grant — the message-order scheme of
//!   Aumayr et al. mapped onto a shared-clock simulator: the log is the
//!   full receive order of the scheduler's grant stream (run-length-encoded
//!   task ids, no values, no candidate sets, no CREW machinery), and guided
//!   replay is time-faithful and therefore exact.
//! - [`PinSet::Racing`] pins only non-[`OpDesc::Local`] grants that touch
//!   racing state — the race-complete scheme of Guo et al.: accesses to
//!   variables the vector-clock pass proved race-free are
//!   happens-before-ordered by the pinned operations around them, so their
//!   *values* reconstruct themselves even when their timing does not.
//!   Guided replay of a racing pin set is best-effort (it drifts on
//!   time-driven programs); the model backs it with a constrained DPOR
//!   search and, last, with [`OutcomeFeed`] — re-delivering the recorded
//!   racing-read outcomes, which pins the failure without pinning time.
//! - [`PinSet::NonLocal`] (all non-local footprints) sits in between and is
//!   the recording-side superset both models filter from.
//!
//! [`OrderRecorder`] wraps the production scheduling policy and logs pinned
//! grants (including *forced* single-candidate grants, which never reach the
//! decision stream); [`GuidedOrderPolicy`] replays the log, granting filler
//! in deterministic first-candidate order between pinned grants.

use crate::recordings::costs;
use dd_sim::{
    DecisionPoint, Event, EventMeta, Observer, OpDesc, SchedulePolicy, StopReason, TaskId, Value,
    VarId,
};
use dd_trace::{ChargeAcc, CostModel, LogStats, Trace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One pinned grant in an operation-order log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrderEntry {
    /// The granted task.
    pub task: TaskId,
    /// The task's pending footprint at grant time (`None` when the kernel
    /// had not yet seen the task's next operation — treated as pinned).
    pub op: Option<OpDesc>,
}

/// A per-run pinned-operation order log.
///
/// The in-memory representation keeps the full footprint per entry (replay
/// needs it to match grants); the *accounted* on-disk encoding is
/// run-length-compressed — consecutive grants to the same task pack into
/// one `(task, class, run-length)` record of
/// [`costs::ORDER_ENTRY_BYTES`] bytes, mirroring how the schedule log
/// charges [`dd_trace::log_size`] 4 bytes per decision.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OrderLog {
    /// Pinned grants, in grant order.
    pub entries: Vec<OrderEntry>,
}

impl OrderLog {
    /// Accounted size in bytes (run-length-encoded by task).
    pub fn byte_size(&self) -> u64 {
        let runs = self
            .entries
            .iter()
            .zip(self.entries.iter().skip(1))
            .filter(|(a, b)| a.task != b.task)
            .count() as u64
            + u64::from(!self.entries.is_empty());
        runs * costs::ORDER_ENTRY_BYTES
    }

    /// Log-volume statistics for [`Recording::log`](crate::Recording).
    pub fn stats(&self) -> LogStats {
        LogStats {
            records: self.entries.len() as u64,
            bytes: self.byte_size(),
        }
    }

    /// Keeps only the entries the given pin set still pins.
    pub fn retain_pinned(mut self, pin: &PinSet) -> Self {
        self.entries.retain(|e| pin.pinned(e.op.as_ref()));
        self
    }
}

/// Which pending footprints an order-guided model pins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PinSet {
    /// Every grant, local or not (message-order determinism — the only
    /// time-faithful subset under a shared per-operation clock).
    Total,
    /// Every non-[`OpDesc::Local`] footprint.
    NonLocal,
    /// Non-[`OpDesc::Local`] footprints, with accesses to variables *not*
    /// in the racing set released as filler (race-complete determinism).
    Racing(BTreeSet<u32>),
}

impl PinSet {
    /// Builds the racing-variable pin set from a dd-detect race report.
    pub fn racing(races: &[dd_detect::RaceReport]) -> Self {
        PinSet::Racing(races.iter().map(|r| r.var.0).collect())
    }

    /// Returns `true` if a pending footprint must replay in recorded order.
    pub fn pinned(&self, op: Option<&OpDesc>) -> bool {
        if matches!(self, PinSet::Total) {
            return true;
        }
        match op {
            // No pending operation: the grant only lets the task run to its
            // next announce — task-local work with no shared effect, so the
            // partial-order pins treat it like `Local` filler.
            None => false,
            Some(OpDesc::Local) => false,
            Some(OpDesc::Var { var, .. }) => match self {
                PinSet::Total => true,
                PinSet::NonLocal => true,
                PinSet::Racing(vars) => vars.contains(&var.0),
            },
            Some(_) => true,
        }
    }
}

// ---------------------------------------------------------------------------
// Recording
// ---------------------------------------------------------------------------

/// Wraps a production scheduling policy and logs every pinned grant —
/// including forced (single-candidate) grants, which the kernel resolves
/// without consulting the policy and without logging a decision. Delegation
/// never alters the inner policy's choices, so the recorded run is
/// bit-identical to an unwrapped run.
pub struct OrderRecorder {
    inner: Box<dyn SchedulePolicy>,
    pin: PinSet,
    log: Arc<Mutex<Vec<OrderEntry>>>,
}

impl OrderRecorder {
    /// Wraps `inner`, sharing the grant log through `log`.
    pub fn new(
        inner: Box<dyn SchedulePolicy>,
        pin: PinSet,
        log: Arc<Mutex<Vec<OrderEntry>>>,
    ) -> Self {
        OrderRecorder { inner, pin, log }
    }
}

impl SchedulePolicy for OrderRecorder {
    fn label(&self) -> &'static str {
        "order-recorder"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(OrderRecorder {
            inner: self.inner.clone_box(),
            pin: self.pin.clone(),
            log: Arc::clone(&self.log),
        })
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        let idx = self.inner.decide(point)?;
        if let Some(&(task, op)) = point.enabled.get(idx) {
            if self.pin.pinned(op.as_ref()) {
                self.log.lock().push(OrderEntry { task, op });
            }
        }
        Ok(idx)
    }

    fn note_forced(&mut self, task: TaskId, pending: Option<&OpDesc>) {
        self.inner.note_forced(task, pending);
        if self.pin.pinned(pending) {
            self.log.lock().push(OrderEntry {
                task,
                op: pending.copied(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct GuidedCursor {
    consumed: usize,
    desync: Option<String>,
}

/// Post-run view of a [`GuidedOrderPolicy`]'s progress through its log.
#[derive(Clone)]
pub struct GuidedHandle {
    state: Arc<Mutex<GuidedCursor>>,
    total: usize,
}

impl GuidedHandle {
    /// How many order entries the replay consumed.
    pub fn consumed(&self) -> usize {
        self.state.lock().consumed
    }

    /// `true` when every recorded entry was consumed without drift.
    pub fn fully_consumed(&self) -> bool {
        let st = self.state.lock();
        st.desync.is_none() && st.consumed == self.total
    }

    /// The first forced-grant drift the replay hit, if any.
    pub fn desync(&self) -> Option<String> {
        self.state.lock().desync.clone()
    }
}

/// Replays a pinned-operation [`OrderLog`]: grants the log's next entry
/// whenever its task is enabled with the recorded footprint, grants filler
/// (the first candidate with an unpinned footprint) otherwise, and reports
/// [`StopReason::ReplayDivergence`] when neither is possible.
pub struct GuidedOrderPolicy {
    entries: Arc<Vec<OrderEntry>>,
    pin: PinSet,
    state: Arc<Mutex<GuidedCursor>>,
}

impl GuidedOrderPolicy {
    /// Builds the policy plus the handle the replayer inspects afterwards.
    pub fn new(log: &OrderLog, pin: PinSet) -> (Self, GuidedHandle) {
        let state = Arc::new(Mutex::new(GuidedCursor::default()));
        let handle = GuidedHandle {
            state: Arc::clone(&state),
            total: log.entries.len(),
        };
        (
            GuidedOrderPolicy {
                entries: Arc::new(log.entries.clone()),
                pin,
                state,
            },
            handle,
        )
    }
}

impl SchedulePolicy for GuidedOrderPolicy {
    fn label(&self) -> &'static str {
        "order-guided"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(GuidedOrderPolicy {
            entries: Arc::clone(&self.entries),
            pin: self.pin.clone(),
            state: Arc::clone(&self.state),
        })
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        let mut st = self.state.lock();
        if let Some(d) = &st.desync {
            return Err(StopReason::ReplayDivergence {
                step: point.seq,
                detail: d.clone(),
            });
        }
        if let Some(want) = self.entries.get(st.consumed) {
            if let Some(idx) = point.candidates.iter().position(|&t| t == want.task) {
                if point.enabled[idx].1 == want.op {
                    st.consumed += 1;
                    return Ok(idx);
                }
            }
        }
        // The next pinned operation is not enabled (or not yet pending):
        // run commuting filler until it is.
        if let Some(idx) = point
            .enabled
            .iter()
            .position(|(_, op)| !self.pin.pinned(op.as_ref()))
        {
            return Ok(idx);
        }
        let detail = match self.entries.get(st.consumed) {
            Some(want) => format!(
                "order log expects {:?} by {}, but only other pinned operations are enabled",
                want.op, want.task
            ),
            None => "order log exhausted with pinned operations still enabled".into(),
        };
        Err(StopReason::ReplayDivergence {
            step: point.seq,
            detail,
        })
    }

    fn note_forced(&mut self, task: TaskId, pending: Option<&OpDesc>) {
        if !self.pin.pinned(pending) {
            return;
        }
        let mut st = self.state.lock();
        if st.desync.is_some() {
            return;
        }
        match self.entries.get(st.consumed) {
            Some(want) if want.task == task && want.op.as_ref() == pending => {
                st.consumed += 1;
            }
            Some(want) => {
                st.desync = Some(format!(
                    "forced grant of {pending:?} by {task} where the order log \
                     expects {:?} by {}",
                    want.op, want.task
                ));
            }
            None => {
                st.desync = Some(format!(
                    "forced grant of {pending:?} by {task} past the end of the order log"
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace projections (soundness checks and search constraints)
// ---------------------------------------------------------------------------

/// One racing access and its outcome, as recorded by race-complete
/// determinism. The accounted encoding is
/// [`costs::RACE_OUTCOME_BYTES`] per record (packed site id plus value
/// delta), following Guo et al.'s observation that only racing accesses
/// need their outcomes persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaceOutcome {
    /// The accessing task.
    pub task: TaskId,
    /// The racing variable.
    pub var: VarId,
    /// `true` for a store.
    pub write: bool,
    /// The value read or written.
    pub value: Value,
}

/// Extracts the ordered outcomes of all accesses to racing variables.
pub fn racing_outcomes(trace: &Trace, racing: &BTreeSet<u32>) -> Vec<RaceOutcome> {
    trace
        .iter()
        .filter_map(|e| match &e.event {
            Event::Read {
                task, var, value, ..
            } if racing.contains(&var.0) => Some(RaceOutcome {
                task: *task,
                var: *var,
                write: false,
                value: value.clone(),
            }),
            Event::Write {
                task, var, value, ..
            } if racing.contains(&var.0) => Some(RaceOutcome {
                task: *task,
                var: *var,
                write: true,
                value: value.clone(),
            }),
            _ => None,
        })
        .collect()
}

#[derive(Debug, Default)]
struct FeedProgress {
    consumed: usize,
}

/// Post-run view of an [`OutcomeFeed`]'s progress through its queues.
#[derive(Clone)]
pub struct FeedHandle {
    state: Arc<Mutex<FeedProgress>>,
    total: usize,
}

impl FeedHandle {
    /// How many recorded racing-read outcomes were re-delivered.
    pub fn consumed(&self) -> usize {
        self.state.lock().consumed
    }

    /// `true` when every recorded racing read was re-delivered — the replay
    /// observed at least the recorded racing behaviour, access for access.
    pub fn fully_consumed(&self) -> bool {
        self.state.lock().consumed == self.total
    }
}

/// Re-delivers recorded racing-*read* outcomes during a replay run,
/// regardless of the live schedule: each task's reads of each racing
/// variable receive the recorded values in recorded per-task order, while
/// every other read (race-free by the vector-clock pass) executes live.
///
/// This is the last-resort replay path of race-complete determinism on
/// time-driven programs, where no search budget will re-find the exact
/// global interleaving: what the failure depends on — the values the racing
/// reads observed — is pinned directly, Guo et al.'s core observation.
pub struct OutcomeFeed {
    queues: std::collections::HashMap<(u32, u32), std::collections::VecDeque<Value>>,
    state: Arc<Mutex<FeedProgress>>,
}

impl OutcomeFeed {
    /// Builds the feed from a recorded outcome log, plus the handle the
    /// replayer inspects afterwards.
    pub fn new(outcomes: &[RaceOutcome]) -> (Self, FeedHandle) {
        let mut queues: std::collections::HashMap<(u32, u32), std::collections::VecDeque<Value>> =
            std::collections::HashMap::new();
        let mut total = 0;
        for o in outcomes.iter().filter(|o| !o.write) {
            queues
                .entry((o.task.0, o.var.0))
                .or_default()
                .push_back(o.value.clone());
            total += 1;
        }
        let state = Arc::new(Mutex::new(FeedProgress::default()));
        let handle = FeedHandle {
            state: Arc::clone(&state),
            total,
        };
        (OutcomeFeed { queues, state }, handle)
    }
}

impl dd_sim::NondetOverride for OutcomeFeed {
    fn override_read(&mut self, task: TaskId, var: VarId, _actual: &Value) -> Option<Value> {
        let v = self.queues.get_mut(&(task.0, var.0))?.pop_front()?;
        self.state.lock().consumed += 1;
        Some(v)
    }
}

/// FNV-1a digest of a trace's pinned-operation *completion* order.
///
/// Grants and completions differ (a blocked receive is granted more than
/// once but completes once), so this digest is the schedule-independent
/// check that two runs performed the same pinned operations in the same
/// order: it is stored in race-complete artifacts and used both to validate
/// a guided replay and as the acceptance constraint of the DPOR fallback
/// search.
pub fn pinned_completion_digest(trace: &Trace, pin: &PinSet) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |words: &[u64]| {
        for w in words {
            for b in w.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
    };
    for e in trace.iter() {
        match &e.event {
            Event::Read { task, var, .. }
                if pin.pinned(Some(&OpDesc::Var {
                    var: *var,
                    write: false,
                })) =>
            {
                mix(&[1, u64::from(task.0), u64::from(var.0)]);
            }
            Event::Write { task, var, .. }
                if pin.pinned(Some(&OpDesc::Var {
                    var: *var,
                    write: true,
                })) =>
            {
                mix(&[2, u64::from(task.0), u64::from(var.0)]);
            }
            Event::Send { task, chan, .. } => mix(&[3, u64::from(task.0), u64::from(chan.0)]),
            Event::Recv { task, chan, .. } => mix(&[4, u64::from(task.0), u64::from(chan.0)]),
            Event::SendDropped { task, chan, .. } => {
                mix(&[5, u64::from(task.0), u64::from(chan.0)])
            }
            Event::InputRead { task, port, .. } => mix(&[6, u64::from(task.0), u64::from(port.0)]),
            Event::Output { task, port, .. } => mix(&[7, u64::from(task.0), u64::from(port.0)]),
            Event::LockAcquire { task, lock, .. } => {
                mix(&[8, u64::from(task.0), u64::from(lock.0)])
            }
            Event::LockRelease { task, lock, .. } => {
                mix(&[9, u64::from(task.0), u64::from(lock.0)])
            }
            Event::CondWait { task, cvar, .. } => mix(&[10, u64::from(task.0), u64::from(cvar.0)]),
            Event::CondNotify { task, cvar, .. } => {
                mix(&[11, u64::from(task.0), u64::from(cvar.0)])
            }
            Event::RngDraw { task, value, .. } => mix(&[12, u64::from(task.0), *value]),
            Event::TaskSpawn { parent, child, .. } => mix(&[
                13,
                parent.map_or(u64::MAX, |p| u64::from(p.0)),
                u64::from(child.0),
            ]),
            Event::Crash { task, .. } => mix(&[14, u64::from(task.0)]),
            _ => {}
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Recording cost observer
// ---------------------------------------------------------------------------

/// Charges the wall clock for order-log appends during a recording run:
/// one [`CostModel`] charge per pinned operation *completion* (the event
/// stream's view of a grant that executed). Pure instrumentation — never
/// changes the trace.
pub struct OrderCostObserver {
    model: CostModel,
    pin: PinSet,
    acc: ChargeAcc,
    /// Records/bytes charged so far (per-completion approximation; the
    /// recording's [`LogStats`] use the artifact's exact RLE accounting).
    pub stats: LogStats,
}

impl OrderCostObserver {
    /// Creates the observer for the given cost model and pin set.
    pub fn new(model: CostModel, pin: PinSet) -> Self {
        OrderCostObserver {
            model,
            pin,
            acc: ChargeAcc::default(),
            stats: LogStats::default(),
        }
    }

    fn completion_footprint(event: &Event) -> Option<OpDesc> {
        Some(match event {
            Event::Read { var, .. } => OpDesc::Var {
                var: *var,
                write: false,
            },
            Event::Write { var, .. } => OpDesc::Var {
                var: *var,
                write: true,
            },
            Event::Send { chan, .. }
            | Event::Recv { chan, .. }
            | Event::SendDropped { chan, .. } => OpDesc::Chan { chan: *chan },
            Event::InputRead { port, .. } => OpDesc::PortIn { port: *port },
            Event::Output { port, .. } => OpDesc::PortOut { port: *port },
            Event::LockAcquire { lock, .. } | Event::LockRelease { lock, .. } => {
                OpDesc::Lock { lock: *lock }
            }
            Event::CondWait { cvar, lock, .. } => OpDesc::CvWait {
                cvar: *cvar,
                lock: *lock,
            },
            Event::CondNotify { cvar, .. } => OpDesc::CvNotify { cvar: *cvar },
            Event::RngDraw { .. } => OpDesc::Rng,
            Event::TaskSpawn { .. } | Event::Crash { .. } => OpDesc::Global,
            // Task-local completions, charged only under a total pin.
            Event::Probe { .. }
            | Event::Counter { .. }
            | Event::Alloc { .. }
            | Event::Sleep { .. }
            | Event::Joined { .. }
            | Event::Yield { .. } => OpDesc::Local,
            _ => return None,
        })
    }
}

impl Observer for OrderCostObserver {
    fn name(&self) -> &'static str {
        "order-log"
    }

    fn on_event(&mut self, _meta: &EventMeta, event: &Event) -> u64 {
        let Some(op) = Self::completion_footprint(event) else {
            return 0;
        };
        if !self.pin.pinned(Some(&op)) {
            return 0;
        }
        self.stats.add(costs::ORDER_ENTRY_BYTES);
        self.acc
            .add(self.model.cost_milli(costs::ORDER_ENTRY_BYTES))
    }

    dd_sim::observer_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{ChanId, DecisionKind};

    fn entry(t: u32, op: Option<OpDesc>) -> OrderEntry {
        OrderEntry {
            task: TaskId(t),
            op,
        }
    }

    const CHAN: OpDesc = OpDesc::Chan { chan: ChanId(0) };

    #[test]
    fn pin_sets_classify_footprints() {
        let total = PinSet::Total;
        assert!(total.pinned(None));
        assert!(total.pinned(Some(&OpDesc::Local)));
        let non_local = PinSet::NonLocal;
        assert!(!non_local.pinned(None), "announce-only grants are filler");
        assert!(!non_local.pinned(Some(&OpDesc::Local)));
        assert!(non_local.pinned(Some(&CHAN)));
        let racy = OpDesc::Var {
            var: VarId(3),
            write: true,
        };
        let benign = OpDesc::Var {
            var: VarId(4),
            write: true,
        };
        assert!(non_local.pinned(Some(&racy)));
        let racing = PinSet::Racing([3u32].into_iter().collect());
        assert!(racing.pinned(Some(&racy)));
        assert!(!racing.pinned(Some(&benign)), "non-racing vars are filler");
        assert!(racing.pinned(Some(&OpDesc::Rng)));
        assert!(!racing.pinned(Some(&OpDesc::Local)));
    }

    #[test]
    fn order_log_bytes_are_run_length_encoded() {
        let log = OrderLog {
            entries: vec![
                entry(0, Some(CHAN)),
                entry(0, Some(CHAN)),
                entry(1, Some(CHAN)),
                entry(0, Some(CHAN)),
            ],
        };
        // Three task runs: [0,0], [1], [0].
        assert_eq!(log.byte_size(), 3 * costs::ORDER_ENTRY_BYTES);
        assert_eq!(log.stats().records, 4);
        assert_eq!(OrderLog::default().byte_size(), 0);
    }

    #[test]
    fn guided_policy_follows_log_and_fills_with_local() {
        let log = OrderLog {
            entries: vec![entry(1, Some(CHAN)), entry(0, Some(CHAN))],
        };
        let (mut p, handle) = GuidedOrderPolicy::new(&log, PinSet::NonLocal);
        let cands = [TaskId(0), TaskId(1)];
        // Task 1's pinned op is next in the log: granted.
        let enabled = [(TaskId(0), Some(CHAN)), (TaskId(1), Some(CHAN))];
        let got = p
            .decide(&DecisionPoint {
                seq: 0,
                kind: DecisionKind::NextTask,
                candidates: &cands,
                enabled: &enabled,
            })
            .unwrap();
        assert_eq!(got, 1);
        // Task 0 pending Local while the log expects its CHAN op: filler.
        let enabled = [
            (TaskId(0), Some(OpDesc::Local)),
            (TaskId(1), Some(OpDesc::Local)),
        ];
        let got = p
            .decide(&DecisionPoint {
                seq: 1,
                kind: DecisionKind::NextTask,
                candidates: &cands,
                enabled: &enabled,
            })
            .unwrap();
        assert_eq!(got, 0, "first unpinned candidate is filler");
        assert_eq!(handle.consumed(), 1);
        // Forced grant of the expected op advances the cursor.
        p.note_forced(TaskId(0), Some(&CHAN));
        assert!(handle.fully_consumed());
    }

    #[test]
    fn guided_policy_reports_divergence_when_stuck() {
        let log = OrderLog {
            entries: vec![entry(1, Some(CHAN))],
        };
        let (mut p, handle) = GuidedOrderPolicy::new(&log, PinSet::NonLocal);
        // Only task 0 is enabled, with a pinned op that is not next.
        let cands = [TaskId(0)];
        let enabled = [(TaskId(0), Some(OpDesc::Rng))];
        let err = p
            .decide(&DecisionPoint {
                seq: 0,
                kind: DecisionKind::NextTask,
                candidates: &cands,
                enabled: &enabled,
            })
            .unwrap_err();
        assert!(matches!(err, StopReason::ReplayDivergence { .. }));
        assert!(!handle.fully_consumed());
    }

    #[test]
    fn guided_policy_desyncs_on_unexpected_forced_grant() {
        let log = OrderLog {
            entries: vec![entry(1, Some(CHAN))],
        };
        let (mut p, handle) = GuidedOrderPolicy::new(&log, PinSet::NonLocal);
        p.note_forced(TaskId(0), Some(&OpDesc::Rng));
        assert!(handle.desync().is_some());
        let cands = [TaskId(1)];
        let enabled = [(TaskId(1), Some(CHAN))];
        let err = p
            .decide(&DecisionPoint {
                seq: 0,
                kind: DecisionKind::NextTask,
                candidates: &cands,
                enabled: &enabled,
            })
            .unwrap_err();
        assert!(matches!(err, StopReason::ReplayDivergence { .. }));
    }

    #[test]
    fn retain_pinned_filters_non_racing_vars() {
        let racy = OpDesc::Var {
            var: VarId(1),
            write: true,
        };
        let benign = OpDesc::Var {
            var: VarId(2),
            write: true,
        };
        let log = OrderLog {
            entries: vec![
                entry(0, Some(racy)),
                entry(1, Some(benign)),
                entry(0, Some(CHAN)),
            ],
        };
        let pin = PinSet::Racing([1u32].into_iter().collect());
        let filtered = log.retain_pinned(&pin);
        assert_eq!(filtered.entries.len(), 2);
        assert!(filtered.entries.iter().all(|e| pin.pinned(e.op.as_ref())));
    }
}
