//! The hyperstore workload: spec, root causes, search space, and discovery
//! of the failing production incident.

use crate::config::HyperConfig;
use crate::program::HyperstoreProgram;
use dd_classify::Plane;
use dd_core::{snapshot, CauseCtx, FnSpec, RootCause, RunSetup, Spec, Workload};
use dd_replay::NondetSpace;
use dd_sim::{
    CrashEvent, EnvConfig, Event, IoSummary, PartitionEvent, Program, RandomPolicy, RestartEvent,
    RunConfig,
};
use dd_trace::{FailureSnapshot, Trace};
use std::sync::Arc;

/// The failure id assigned when a dump returns fewer rows than were loaded.
pub const ROWS_MISSING: &str = "hyperstore.rows-missing";
/// The failure id for runs that never produced their load/dump summary.
pub const INCOMPLETE: &str = "hyperstore.incomplete";
/// The failure id when the dump could not reach every range's replica set
/// (availability loss, as opposed to the silent loss of [`ROWS_MISSING`]).
pub const RANGES_UNAVAILABLE: &str = "hyperstore.ranges-unavailable";

/// Root-cause id: the issue-63 migration/commit race.
pub const RC_MIGRATION_RACE: &str = "migration-commit-race";
/// Root-cause id: a range server crashed after rows were loaded.
pub const RC_SERVER_CRASH: &str = "server-crash-after-load";
/// Root-cause id: the dump client ran out of memory mid-dump.
pub const RC_CLIENT_OOM: &str = "client-oom-during-dump";
/// Root-cause id (failover): promotion merged a follower replica that was
/// missing the failed primary's un-shipped commit-log suffix.
pub const RC_LOST_LOG_SUFFIX: &str = "promotion-loses-log-suffix";
/// Root-cause id (failover): a network partition swallowed log shipments,
/// so the replica was stale when it was promoted.
pub const RC_PARTITION_SHIPPING: &str = "partition-stalled-shipping";
/// Root-cause id (failover): a whole replica set was down at dump time, so
/// its ranges went unanswered (availability, not silent loss).
pub const RC_REPLICA_DOWN: &str = "replica-set-down";

/// Builds the hyperstore I/O specification.
///
/// The spec compares the coordinator's loaded count with the dumper's
/// returned count: fewer dumped rows than loaded rows is the §4 failure
/// ("subsequent dumps of the table do not return all rows").
pub fn hyperstore_spec() -> Arc<dyn Spec> {
    Arc::new(FnSpec::new("hyperstore-dump-complete", |io: &IoSummary| {
        let loaded = io.outputs_on("loaded").first().and_then(|v| v.as_int());
        let dumped = io.outputs_on("dumped").first().and_then(|v| v.as_int());
        match (loaded, dumped) {
            (Some(l), Some(d)) if d < l => Some(snapshot(
                ROWS_MISSING,
                format!("dump returned {d} of {l} rows"),
                io,
            )),
            (Some(_), Some(_)) => None,
            _ => Some(snapshot(
                INCOMPLETE,
                "run ended without a load/dump summary".into(),
                io,
            )),
        }
    }))
}

/// Builds the three §4 potential root causes for the missing-rows failure.
pub fn hyperstore_root_causes() -> Vec<RootCause> {
    vec![
        RootCause::new(
            RC_MIGRATION_RACE,
            ROWS_MISSING,
            "rows committed to a server concurrently losing their range \
             (unsynchronised commit vs. migration)",
            |ctx: &CauseCtx<'_>| {
                // Manifestation A: a commit observed its range already gone.
                let unowned_commit = ctx
                    .trace
                    .probes("hyperstore.commit_owned")
                    .iter()
                    .any(|(_, v)| v.as_bool() == Some(false));
                if unowned_commit {
                    return true;
                }
                // Manifestation B: a commit and a migration partition
                // clobbered each other's index update.
                !dd_detect::lost_updates(ctx.trace, ctx.registry, |name| {
                    name.ends_with(".index") || name.ends_with(".ranges")
                })
                .is_empty()
            },
        ),
        RootCause::new(
            RC_SERVER_CRASH,
            ROWS_MISSING,
            "a range server crashed after rows were committed to it \
             (expected data loss, not a code defect)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace.any(|e| match e {
                    Event::GroupKilled { group, .. } => group.starts_with("server"),
                    _ => false,
                })
            },
        ),
        RootCause::new(
            RC_CLIENT_OOM,
            ROWS_MISSING,
            "the dump client exhausted its memory budget before finishing \
             the dump (apparent data corruption)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace
                    .any(|e| matches!(e, Event::AllocFail { site, .. } if site == "dumper::alloc"))
            },
        ),
    ]
}

/// Environment candidates a replayer may consider: fault scenarios that can
/// also explain missing rows, plus the clean production environment.
///
/// Fault hypotheses come first: execution synthesis favours the *simplest*
/// execution consistent with the failure evidence, and a node crash or OOM
/// is a much shorter causal path than a precise racy interleaving — this is
/// exactly how a failure-deterministic replayer ends up reporting a
/// different root cause than the original run (§2, §4).
pub fn env_candidates(cfg: &HyperConfig) -> Vec<EnvConfig> {
    let mut envs = Vec::new();
    let crash_time = cfg.migrations.first().map(|m| m.time + 60).unwrap_or(300);
    for j in 0..cfg.n_servers.min(2) {
        envs.push(EnvConfig {
            crashes: vec![CrashEvent {
                time: crash_time,
                group: format!("server{j}"),
            }],
            ..EnvConfig::clean()
        });
    }
    let mut oom = EnvConfig::clean();
    oom.mem_budget.insert(
        "dumper".into(),
        (cfg.row_size as u64) * (cfg.n_rows as u64 / 2).max(1),
    );
    envs.push(oom);
    envs.push(EnvConfig::clean());
    envs
}

/// Builds the failover-cluster I/O specification.
///
/// Checks availability first — a dump that could not reach every range's
/// replica set ([`RANGES_UNAVAILABLE`]) explains its own missing rows — and
/// only then durability: a fully-covered dump returning fewer rows than the
/// clients got acknowledged is silent data loss ([`ROWS_MISSING`]).
pub fn failover_spec(n_ranges: u32) -> Arc<dyn Spec> {
    Arc::new(FnSpec::new(
        "hyperstore-failover-durable",
        move |io: &IoSummary| {
            let loaded = io.outputs_on("loaded").first().and_then(|v| v.as_int());
            let dumped = io.outputs_on("dumped").first().and_then(|v| v.as_int());
            let covered = io.outputs_on("covered").first().and_then(|v| v.as_int());
            match (loaded, dumped, covered) {
                (Some(_), Some(_), Some(c)) if c < n_ranges as i64 => Some(snapshot(
                    RANGES_UNAVAILABLE,
                    format!("dump reached {c} of {n_ranges} ranges"),
                    io,
                )),
                (Some(l), Some(d), Some(_)) if d < l => Some(snapshot(
                    ROWS_MISSING,
                    format!("dump returned {d} of {l} acknowledged rows"),
                    io,
                )),
                (Some(_), Some(_), Some(_)) => None,
                _ => Some(snapshot(
                    INCOMPLETE,
                    "run ended without a load/dump/coverage summary".into(),
                    io,
                )),
            }
        },
    ))
}

/// Builds the potential root causes for the failover cluster's failures.
pub fn failover_root_causes() -> Vec<RootCause> {
    vec![
        RootCause::new(
            RC_LOST_LOG_SUFFIX,
            ROWS_MISSING,
            "promotion merged a follower replica missing the failed \
             primary's un-shipped commit-log suffix (acknowledged rows \
             silently lost)",
            |ctx: &CauseCtx<'_>| ctx.io.counter("promote_lost_rows") > 0,
        ),
        RootCause::new(
            RC_PARTITION_SHIPPING,
            ROWS_MISSING,
            "a network partition swallowed log shipments, leaving the \
             replica stale when it was promoted",
            |ctx: &CauseCtx<'_>| ctx.trace.any(|e| matches!(e, Event::PartitionStart { .. })),
        ),
        RootCause::new(
            RC_SERVER_CRASH,
            ROWS_MISSING,
            "a range server crashed after rows were committed to it \
             (expected to be masked by replication)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace.any(|e| match e {
                    Event::GroupKilled { group, .. } => group.starts_with("server"),
                    _ => false,
                })
            },
        ),
        RootCause::new(
            RC_CLIENT_OOM,
            ROWS_MISSING,
            "the dump client exhausted its memory budget before finishing \
             the dump (apparent data corruption)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace
                    .any(|e| matches!(e, Event::AllocFail { site, .. } if site == "dumper::alloc"))
            },
        ),
        RootCause::new(
            RC_REPLICA_DOWN,
            RANGES_UNAVAILABLE,
            "a replica set was entirely down at dump time, so its ranges \
             went unanswered",
            |ctx: &CauseCtx<'_>| {
                ctx.trace.any(|e| match e {
                    Event::GroupKilled { group, .. } => group.starts_with("server"),
                    _ => false,
                })
            },
        ),
    ]
}

/// The production fault schedule the failover bug needs: a primary dies
/// mid-migration-window, while clients still have acknowledged puts whose
/// shipment batch has not been flushed.
pub fn failover_fault_env(cfg: &HyperConfig) -> EnvConfig {
    let crash_time = cfg.migrations.first().map(|m| m.time + 50).unwrap_or(270);
    EnvConfig {
        crashes: vec![CrashEvent {
            time: crash_time,
            group: "server1".into(),
        }],
        ..EnvConfig::clean()
    }
}

/// Environment candidates for the failover workload: the crash schedule
/// that triggers the bug, a shipping-window partition, a crash+restart
/// (recovery) schedule, and the clean environment.
pub fn failover_env_candidates(cfg: &HyperConfig) -> Vec<EnvConfig> {
    let crash_time = cfg.migrations.first().map(|m| m.time + 50).unwrap_or(270);
    let mut envs = vec![failover_fault_env(cfg)];
    // A partition between two replica-set halves across the early load
    // window. It must heal before the first migration: a `Transfer` dropped
    // on the floor is a plain availability loss in *any* build, not the
    // lost-suffix bug this workload hunts.
    let first_migration = cfg.migrations.first().map(|m| m.time).unwrap_or(u64::MAX);
    envs.push(EnvConfig {
        partitions: vec![PartitionEvent {
            start: 40,
            heal: (40 + cfg.ack_timeout).min(first_migration.saturating_sub(20)),
            a: "server1".into(),
            b: "server2".into(),
        }],
        ..EnvConfig::clean()
    });
    // Crash then restart: recovery replays the commit log and rejoins.
    envs.push(EnvConfig {
        crashes: vec![CrashEvent {
            time: crash_time,
            group: "server1".into(),
        }],
        restarts: vec![RestartEvent {
            time: crash_time + 2 * cfg.ack_timeout,
            group: "server1".into(),
        }],
        ..EnvConfig::clean()
    });
    envs.push(EnvConfig::clean());
    envs
}

/// The hyperstore workload, pinned to a discovered failing production run.
pub struct HyperstoreWorkload {
    cfg: HyperConfig,
    production: RunSetup,
    training: Vec<RunSetup>,
}

impl HyperstoreWorkload {
    /// Configuration accessor.
    pub fn config(&self) -> &HyperConfig {
        &self.cfg
    }

    /// Searches schedule seeds for a production run that fails with the
    /// missing-rows failure *caused by the migration race* (clean
    /// environment), and for passing training runs. Returns `None` if no
    /// failing seed exists within `max_seeds`.
    pub fn discover(cfg: HyperConfig, max_seeds: u64) -> Option<Self> {
        let program = HyperstoreProgram::buggy(cfg.clone());
        let spec = hyperstore_spec();
        let inputs = cfg.input_script();
        let causes = hyperstore_root_causes();
        let race = causes
            .iter()
            .find(|c| c.id == RC_MIGRATION_RACE)
            .expect("race cause declared");

        let mut production = None;
        for seed in 0..max_seeds {
            let out = run_once(&program, seed, &inputs);
            let Some(f) = spec.check(&out.io) else {
                continue;
            };
            if f.failure_id != ROWS_MISSING {
                continue;
            }
            let trace = Trace::from_run(&out);
            let ctx = CauseCtx {
                trace: &trace,
                registry: &out.registry,
                io: &out.io,
            };
            if race.active_in(&ctx) {
                production = Some(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: EnvConfig::clean(),
                    max_steps: 500_000,
                });
                break;
            }
        }
        let production = production?;

        // Training: passing runs only (pre-release test-cluster runs).
        let mut training = Vec::new();
        let mut seed = 1_000;
        while training.len() < 6 && seed < 1_000 + 200 {
            let out = run_once(&program, seed, &inputs);
            if spec.check(&out.io).is_none() {
                training.push(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: EnvConfig::clean(),
                    max_steps: 500_000,
                });
            }
            seed += 1;
        }
        Some(HyperstoreWorkload {
            cfg,
            production,
            training,
        })
    }
}

fn run_once(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
) -> dd_sim::RunOutput {
    run_once_env(program, seed, inputs, EnvConfig::clean())
}

fn run_once_env(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
    env: EnvConfig,
) -> dd_sim::RunOutput {
    let cfg = RunConfig {
        seed,
        max_steps: 500_000,
        inputs: inputs.clone(),
        env,
        ..RunConfig::default()
    };
    dd_sim::run_program(program, cfg, Box::new(RandomPolicy::new(seed)), vec![])
}

impl Workload for HyperstoreWorkload {
    fn name(&self) -> &'static str {
        "hyperstore-issue63"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(HyperstoreProgram::buggy(self.cfg.clone()))
    }

    fn spec(&self) -> Arc<dyn Spec> {
        hyperstore_spec()
    }

    fn root_causes(&self) -> Vec<RootCause> {
        hyperstore_root_causes()
    }

    fn production(&self) -> RunSetup {
        self.production.clone()
    }

    fn space(&self) -> NondetSpace {
        NondetSpace {
            seeds: (0..24).collect(),
            inputs: vec![self.cfg.input_script()],
            envs: env_candidates(&self.cfg),
        }
    }

    fn training(&self) -> Vec<RunSetup> {
        self.training.clone()
    }

    fn plane_truth(&self) -> Vec<(&'static str, Plane)> {
        vec![
            ("master::", Plane::Control),
            ("client::locate", Plane::Control),
            ("client::input", Plane::Control),
            ("client::done", Plane::Control),
            ("client::ack_recv", Plane::Control),
            ("client::put_send", Plane::Data),
            ("server::commit_log", Plane::Data),
            ("server::ack_send", Plane::Control),
            ("serverctl::recv", Plane::Control),
            ("serverctl::transfer_send", Plane::Data),
            ("serverctl::merge_ingest", Plane::Data),
            ("serverctl::done_send", Plane::Control),
            ("serverctl::dump_send", Plane::Control),
            ("coord::", Plane::Control),
            ("dumper::dump_send", Plane::Control),
        ]
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(HyperstoreProgram::fixed(self.cfg.clone())))
    }
}

/// The replicated failover workload, pinned to a discovered production
/// incident: a primary crash during the migration window that makes
/// promotion silently lose the un-shipped commit-log suffix.
pub struct HyperstoreFailoverWorkload {
    cfg: HyperConfig,
    production: RunSetup,
    training: Vec<RunSetup>,
}

impl HyperstoreFailoverWorkload {
    /// Configuration accessor.
    pub fn config(&self) -> &HyperConfig {
        &self.cfg
    }

    /// Searches schedule seeds for a production run of the buggy failover
    /// build that fails with silent row loss *caused by the lost log
    /// suffix* under the crash-during-migration fault schedule, plus
    /// passing clean-environment training runs. Returns `None` if no
    /// failing seed exists within `max_seeds`.
    pub fn discover(cfg: HyperConfig, max_seeds: u64) -> Option<Self> {
        let program = HyperstoreProgram::buggy_failover(cfg.clone());
        let spec = failover_spec(cfg.n_ranges);
        let inputs = cfg.input_script();
        let fault_env = failover_fault_env(&cfg);
        let causes = failover_root_causes();
        let lost_suffix = causes
            .iter()
            .find(|c| c.id == RC_LOST_LOG_SUFFIX)
            .expect("lost-suffix cause declared");

        let mut production = None;
        for seed in 0..max_seeds {
            let out = run_once_env(&program, seed, &inputs, fault_env.clone());
            let Some(f) = spec.check(&out.io) else {
                continue;
            };
            if f.failure_id != ROWS_MISSING {
                continue;
            }
            let trace = Trace::from_run(&out);
            let ctx = CauseCtx {
                trace: &trace,
                registry: &out.registry,
                io: &out.io,
            };
            if lost_suffix.active_in(&ctx) {
                production = Some(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: fault_env.clone(),
                    max_steps: 500_000,
                });
                break;
            }
        }
        let production = production?;

        // Training: passing clean-environment runs (pre-release test
        // cluster, no faults injected).
        let mut training = Vec::new();
        let mut seed = 1_000;
        while training.len() < 6 && seed < 1_000 + 200 {
            let out = run_once(&program, seed, &inputs);
            if spec.check(&out.io).is_none() {
                training.push(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: EnvConfig::clean(),
                    max_steps: 500_000,
                });
            }
            seed += 1;
        }
        Some(HyperstoreFailoverWorkload {
            cfg,
            production,
            training,
        })
    }
}

impl Workload for HyperstoreFailoverWorkload {
    fn name(&self) -> &'static str {
        "hyperstore-failover"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(HyperstoreProgram::buggy_failover(self.cfg.clone()))
    }

    fn spec(&self) -> Arc<dyn Spec> {
        failover_spec(self.cfg.n_ranges)
    }

    fn root_causes(&self) -> Vec<RootCause> {
        failover_root_causes()
    }

    fn production(&self) -> RunSetup {
        self.production.clone()
    }

    fn space(&self) -> NondetSpace {
        NondetSpace {
            seeds: (0..24).collect(),
            inputs: vec![self.cfg.input_script()],
            envs: failover_env_candidates(&self.cfg),
        }
    }

    fn training(&self) -> Vec<RunSetup> {
        self.training.clone()
    }

    fn plane_truth(&self) -> Vec<(&'static str, Plane)> {
        vec![
            ("master::", Plane::Control),
            ("client::locate", Plane::Control),
            ("client::input", Plane::Control),
            ("client::done", Plane::Control),
            ("client::ack_recv", Plane::Control),
            ("client::suspect", Plane::Control),
            ("client::backoff", Plane::Control),
            ("client::put_send", Plane::Data),
            ("server::commit_log", Plane::Data),
            ("server::ack_send", Plane::Control),
            ("server::ship", Plane::Control),
            ("server::ship_ack", Plane::Control),
            ("serverctl::recv", Plane::Control),
            ("serverctl::transfer_send", Plane::Data),
            ("serverctl::merge_ingest", Plane::Data),
            ("serverctl::done_send", Plane::Control),
            ("serverctl::dump_send", Plane::Control),
            ("serverctl::ship_ack", Plane::Control),
            ("serverctl::pong", Plane::Control),
            ("coord::", Plane::Control),
            ("dumper::dump_send", Plane::Control),
            ("dumper::covered", Plane::Control),
        ]
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(HyperstoreProgram::fixed_failover(
            self.cfg.clone(),
        )))
    }
}

/// Returns the failure snapshot of one run of the given program under the
/// workload's spec (test helper).
pub fn check_run(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
) -> Option<FailureSnapshot> {
    let out = run_once(program, seed, inputs);
    hyperstore_spec().check(&out.io)
}

/// Like [`check_run`] but under an injected fault environment and the
/// failover spec (test helper for the replicated cluster).
pub fn check_failover_run(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
    env: EnvConfig,
) -> Option<FailureSnapshot> {
    let n_ranges = program.cfg.n_ranges;
    let out = run_once_env(program, seed, inputs, env);
    failover_spec(n_ranges).check(&out.io)
}
