//! The hyperstore workload: spec, root causes, search space, and discovery
//! of the failing production incident.

use crate::config::HyperConfig;
use crate::program::HyperstoreProgram;
use dd_classify::Plane;
use dd_core::{snapshot, CauseCtx, FnSpec, RootCause, RunSetup, Spec, Workload};
use dd_replay::NondetSpace;
use dd_sim::{CrashEvent, EnvConfig, Event, IoSummary, Program, RandomPolicy, RunConfig};
use dd_trace::{FailureSnapshot, Trace};
use std::sync::Arc;

/// The failure id assigned when a dump returns fewer rows than were loaded.
pub const ROWS_MISSING: &str = "hyperstore.rows-missing";
/// The failure id for runs that never produced their load/dump summary.
pub const INCOMPLETE: &str = "hyperstore.incomplete";

/// Root-cause id: the issue-63 migration/commit race.
pub const RC_MIGRATION_RACE: &str = "migration-commit-race";
/// Root-cause id: a range server crashed after rows were loaded.
pub const RC_SERVER_CRASH: &str = "server-crash-after-load";
/// Root-cause id: the dump client ran out of memory mid-dump.
pub const RC_CLIENT_OOM: &str = "client-oom-during-dump";

/// Builds the hyperstore I/O specification.
///
/// The spec compares the coordinator's loaded count with the dumper's
/// returned count: fewer dumped rows than loaded rows is the §4 failure
/// ("subsequent dumps of the table do not return all rows").
pub fn hyperstore_spec() -> Arc<dyn Spec> {
    Arc::new(FnSpec::new("hyperstore-dump-complete", |io: &IoSummary| {
        let loaded = io.outputs_on("loaded").first().and_then(|v| v.as_int());
        let dumped = io.outputs_on("dumped").first().and_then(|v| v.as_int());
        match (loaded, dumped) {
            (Some(l), Some(d)) if d < l => Some(snapshot(
                ROWS_MISSING,
                format!("dump returned {d} of {l} rows"),
                io,
            )),
            (Some(_), Some(_)) => None,
            _ => Some(snapshot(
                INCOMPLETE,
                "run ended without a load/dump summary".into(),
                io,
            )),
        }
    }))
}

/// Builds the three §4 potential root causes for the missing-rows failure.
pub fn hyperstore_root_causes() -> Vec<RootCause> {
    vec![
        RootCause::new(
            RC_MIGRATION_RACE,
            ROWS_MISSING,
            "rows committed to a server concurrently losing their range \
             (unsynchronised commit vs. migration)",
            |ctx: &CauseCtx<'_>| {
                // Manifestation A: a commit observed its range already gone.
                let unowned_commit = ctx
                    .trace
                    .probes("hyperstore.commit_owned")
                    .iter()
                    .any(|(_, v)| v.as_bool() == Some(false));
                if unowned_commit {
                    return true;
                }
                // Manifestation B: a commit and a migration partition
                // clobbered each other's index update.
                !dd_detect::lost_updates(ctx.trace, ctx.registry, |name| {
                    name.ends_with(".index") || name.ends_with(".ranges")
                })
                .is_empty()
            },
        ),
        RootCause::new(
            RC_SERVER_CRASH,
            ROWS_MISSING,
            "a range server crashed after rows were committed to it \
             (expected data loss, not a code defect)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace.any(|e| match e {
                    Event::GroupKilled { group, .. } => group.starts_with("server"),
                    _ => false,
                })
            },
        ),
        RootCause::new(
            RC_CLIENT_OOM,
            ROWS_MISSING,
            "the dump client exhausted its memory budget before finishing \
             the dump (apparent data corruption)",
            |ctx: &CauseCtx<'_>| {
                ctx.trace
                    .any(|e| matches!(e, Event::AllocFail { site, .. } if site == "dumper::alloc"))
            },
        ),
    ]
}

/// Environment candidates a replayer may consider: fault scenarios that can
/// also explain missing rows, plus the clean production environment.
///
/// Fault hypotheses come first: execution synthesis favours the *simplest*
/// execution consistent with the failure evidence, and a node crash or OOM
/// is a much shorter causal path than a precise racy interleaving — this is
/// exactly how a failure-deterministic replayer ends up reporting a
/// different root cause than the original run (§2, §4).
pub fn env_candidates(cfg: &HyperConfig) -> Vec<EnvConfig> {
    let mut envs = Vec::new();
    let crash_time = cfg.migrations.first().map(|m| m.time + 60).unwrap_or(300);
    for j in 0..cfg.n_servers.min(2) {
        envs.push(EnvConfig {
            crashes: vec![CrashEvent {
                time: crash_time,
                group: format!("server{j}"),
            }],
            ..EnvConfig::clean()
        });
    }
    let mut oom = EnvConfig::clean();
    oom.mem_budget.insert(
        "dumper".into(),
        (cfg.row_size as u64) * (cfg.n_rows as u64 / 2).max(1),
    );
    envs.push(oom);
    envs.push(EnvConfig::clean());
    envs
}

/// The hyperstore workload, pinned to a discovered failing production run.
pub struct HyperstoreWorkload {
    cfg: HyperConfig,
    production: RunSetup,
    training: Vec<RunSetup>,
}

impl HyperstoreWorkload {
    /// Configuration accessor.
    pub fn config(&self) -> &HyperConfig {
        &self.cfg
    }

    /// Searches schedule seeds for a production run that fails with the
    /// missing-rows failure *caused by the migration race* (clean
    /// environment), and for passing training runs. Returns `None` if no
    /// failing seed exists within `max_seeds`.
    pub fn discover(cfg: HyperConfig, max_seeds: u64) -> Option<Self> {
        let program = HyperstoreProgram::buggy(cfg.clone());
        let spec = hyperstore_spec();
        let inputs = cfg.input_script();
        let causes = hyperstore_root_causes();
        let race = causes
            .iter()
            .find(|c| c.id == RC_MIGRATION_RACE)
            .expect("race cause declared");

        let mut production = None;
        for seed in 0..max_seeds {
            let out = run_once(&program, seed, &inputs);
            let Some(f) = spec.check(&out.io) else {
                continue;
            };
            if f.failure_id != ROWS_MISSING {
                continue;
            }
            let trace = Trace::from_run(&out);
            let ctx = CauseCtx {
                trace: &trace,
                registry: &out.registry,
                io: &out.io,
            };
            if race.active_in(&ctx) {
                production = Some(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: EnvConfig::clean(),
                    max_steps: 500_000,
                });
                break;
            }
        }
        let production = production?;

        // Training: passing runs only (pre-release test-cluster runs).
        let mut training = Vec::new();
        let mut seed = 1_000;
        while training.len() < 6 && seed < 1_000 + 200 {
            let out = run_once(&program, seed, &inputs);
            if spec.check(&out.io).is_none() {
                training.push(RunSetup {
                    seed,
                    sched_seed: seed,
                    inputs: inputs.clone(),
                    env: EnvConfig::clean(),
                    max_steps: 500_000,
                });
            }
            seed += 1;
        }
        Some(HyperstoreWorkload {
            cfg,
            production,
            training,
        })
    }
}

fn run_once(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
) -> dd_sim::RunOutput {
    let cfg = RunConfig {
        seed,
        max_steps: 500_000,
        inputs: inputs.clone(),
        ..RunConfig::default()
    };
    dd_sim::run_program(program, cfg, Box::new(RandomPolicy::new(seed)), vec![])
}

impl Workload for HyperstoreWorkload {
    fn name(&self) -> &'static str {
        "hyperstore-issue63"
    }

    fn program(&self) -> Arc<dyn Program> {
        Arc::new(HyperstoreProgram::buggy(self.cfg.clone()))
    }

    fn spec(&self) -> Arc<dyn Spec> {
        hyperstore_spec()
    }

    fn root_causes(&self) -> Vec<RootCause> {
        hyperstore_root_causes()
    }

    fn production(&self) -> RunSetup {
        self.production.clone()
    }

    fn space(&self) -> NondetSpace {
        NondetSpace {
            seeds: (0..24).collect(),
            inputs: vec![self.cfg.input_script()],
            envs: env_candidates(&self.cfg),
        }
    }

    fn training(&self) -> Vec<RunSetup> {
        self.training.clone()
    }

    fn plane_truth(&self) -> Vec<(&'static str, Plane)> {
        vec![
            ("master::", Plane::Control),
            ("client::locate", Plane::Control),
            ("client::input", Plane::Control),
            ("client::done", Plane::Control),
            ("client::ack_recv", Plane::Control),
            ("client::put_send", Plane::Data),
            ("server::commit_log", Plane::Data),
            ("server::ack_send", Plane::Control),
            ("serverctl::recv", Plane::Control),
            ("serverctl::transfer_send", Plane::Data),
            ("serverctl::merge_ingest", Plane::Data),
            ("serverctl::done_send", Plane::Control),
            ("serverctl::dump_send", Plane::Control),
            ("coord::", Plane::Control),
            ("dumper::dump_send", Plane::Control),
        ]
    }

    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        Some(Arc::new(HyperstoreProgram::fixed(self.cfg.clone())))
    }
}

/// Returns the failure snapshot of one run of the given program under the
/// workload's spec (test helper).
pub fn check_run(
    program: &HyperstoreProgram,
    seed: u64,
    inputs: &dd_sim::InputScript,
) -> Option<FailureSnapshot> {
    let out = run_once(program, seed, inputs);
    hyperstore_spec().check(&out.io)
}
