//! Cluster configuration and key-range arithmetic.

use dd_sim::{InputScript, Value};
use serde::{Deserialize, Serialize};

/// One scheduled range migration (the master's rebalancing plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStep {
    /// When the master issues the migration (execution clock).
    pub time: u64,
    /// Which range moves.
    pub range: u32,
}

/// Static configuration of one hyperstore cluster and load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperConfig {
    /// Number of range servers.
    pub n_servers: u32,
    /// Number of loader clients.
    pub n_clients: u32,
    /// Total rows loaded (split across clients).
    pub n_rows: u32,
    /// Key space `[0, key_space)`.
    pub key_space: u64,
    /// Number of key ranges.
    pub n_ranges: u32,
    /// Row payload size in bytes (the data-plane bulk).
    pub row_size: u32,
    /// The master's migration plan.
    pub migrations: Vec<MigrationStep>,
    /// Virtual ticks between consecutive puts per client.
    pub put_gap: u64,
    /// Loader's wait for a put acknowledgement.
    pub ack_timeout: u64,
    /// Dumper's wait for each server's dump response.
    pub dump_timeout: u64,
}

impl Default for HyperConfig {
    fn default() -> Self {
        HyperConfig {
            n_servers: 3,
            n_clients: 2,
            n_rows: 36,
            key_space: 72,
            n_ranges: 6,
            row_size: 256,
            migrations: vec![
                MigrationStep {
                    time: 220,
                    range: 1,
                },
                MigrationStep {
                    time: 340,
                    range: 4,
                },
            ],
            put_gap: 24,
            ack_timeout: 400,
            dump_timeout: 2_000,
        }
    }
}

impl HyperConfig {
    /// A smaller cluster for fast tests.
    pub fn small() -> Self {
        HyperConfig {
            n_servers: 2,
            n_clients: 2,
            n_rows: 16,
            key_space: 32,
            n_ranges: 4,
            row_size: 128,
            migrations: vec![MigrationStep {
                time: 100,
                range: 1,
            }],
            put_gap: 20,
            ack_timeout: 300,
            dump_timeout: 1_500,
        }
    }

    /// Returns the range id owning `key`.
    pub fn range_of(&self, key: i64) -> u32 {
        let width = (self.key_space / self.n_ranges as u64).max(1);
        (((key as u64).min(self.key_space - 1)) / width).min(self.n_ranges as u64 - 1) as u32
    }

    /// Initial owner of a range (round-robin assignment).
    pub fn initial_owner(&self, range: u32) -> u32 {
        range % self.n_servers
    }

    /// Destination server for the `i`-th migration of `range` (the next
    /// server in rotation from its initial owner).
    pub fn migration_target(&self, range: u32) -> u32 {
        (self.initial_owner(range) + 1) % self.n_servers
    }

    /// Builds the loader input scripts: each client receives an interleaved
    /// slice of the key space, paced `put_gap` apart.
    ///
    /// Keys sweep the ranges cyclically so that rows keep landing in every
    /// range throughout the load — including ranges that migrate mid-load,
    /// which is what makes the issue-63 window reachable.
    pub fn input_script(&self) -> InputScript {
        let mut script = InputScript::new();
        // A stride coprime to the key space visits every key exactly once
        // while cycling through the ranges continuously.
        let stride = Self::coprime_stride(self.key_space);
        for i in 0..self.n_rows {
            let client = i % self.n_clients;
            let key = (i as u64 * stride) % self.key_space;
            let time = 10 + (i / self.n_clients) as u64 * self.put_gap;
            script.push(
                &format!("client{client}.keys"),
                time,
                Value::Int(key as i64),
            );
        }
        script
    }

    /// Smallest stride ≥ key_space/3 that is coprime to the key space.
    fn coprime_stride(n: u64) -> u64 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut s = (n / 3).max(1);
        while gcd(s, n) != 1 {
            s += 1;
        }
        s
    }

    /// Rows each client loads.
    pub fn rows_per_client(&self, client: u32) -> u32 {
        let base = self.n_rows / self.n_clients;
        let extra = u32::from(client < self.n_rows % self.n_clients);
        base + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_key_space() {
        let cfg = HyperConfig::default();
        for key in 0..cfg.key_space as i64 {
            let r = cfg.range_of(key);
            assert!(r < cfg.n_ranges, "key {key} → range {r}");
        }
        assert_eq!(cfg.range_of(0), 0);
        assert_eq!(cfg.range_of(cfg.key_space as i64 - 1), cfg.n_ranges - 1);
    }

    #[test]
    fn range_of_is_monotone() {
        let cfg = HyperConfig::default();
        let mut last = 0;
        for key in 0..cfg.key_space as i64 {
            let r = cfg.range_of(key);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    fn initial_owners_round_robin() {
        let cfg = HyperConfig::default();
        assert_eq!(cfg.initial_owner(0), 0);
        assert_eq!(cfg.initial_owner(1), 1);
        assert_eq!(cfg.initial_owner(cfg.n_servers), 0);
        for r in 0..cfg.n_ranges {
            assert_ne!(cfg.migration_target(r), cfg.initial_owner(r));
        }
    }

    #[test]
    fn input_script_covers_all_rows() {
        let cfg = HyperConfig::default();
        let script = cfg.input_script();
        assert_eq!(script.len(), cfg.n_rows as usize);
        let c0 = script.for_port("client0.keys");
        let c1 = script.for_port("client1.keys");
        assert_eq!(c0.len() + c1.len(), cfg.n_rows as usize);
        // Keys are in range.
        for t in c0.iter().chain(c1.iter()) {
            let k = t.value.as_int().unwrap();
            assert!((0..cfg.key_space as i64).contains(&k));
        }
    }

    #[test]
    fn rows_per_client_sums() {
        let cfg = HyperConfig {
            n_rows: 7,
            n_clients: 3,
            ..HyperConfig::default()
        };
        let total: u32 = (0..3).map(|c| cfg.rows_per_client(c)).sum();
        assert_eq!(total, 7);
    }

    #[test]
    fn keys_hit_migrating_range_throughout_load() {
        // The script must keep producing keys in every range over time,
        // otherwise migrations can never race with commits.
        let cfg = HyperConfig::default();
        let script = cfg.input_script();
        let mig_range = cfg.migrations[0].range;
        let mut hits_before = 0;
        let mut hits_after = 0;
        for (_, inputs) in script.iter() {
            for t in inputs {
                if cfg.range_of(t.value.as_int().unwrap()) == mig_range {
                    if t.time < cfg.migrations[0].time {
                        hits_before += 1;
                    } else {
                        hits_after += 1;
                    }
                }
            }
        }
        assert!(hits_before > 0, "range {mig_range} unused before migration");
        assert!(hits_after > 0, "range {mig_range} unused after migration");
    }
}
