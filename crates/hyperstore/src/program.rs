//! The hyperstore cluster as a `dd-sim` program.
//!
//! Topology: one master (range assignment + migration plan), `n_servers`
//! range servers — each a *put handler* task and a *control* task sharing
//! the server's range set and row index through shared variables — plus
//! loader clients, a dump client and a coordinator.
//!
//! ## Issue 63 (the bug)
//!
//! The buggy put handler commits a row without re-checking range ownership:
//! if the row's range migrates away between the client's locate and the
//! commit (or while the put sits in the server's queue), the row lands in
//! the index of a server that no longer owns its range. Dumps only return
//! keys in *owned* ranges, so the row is silently ignored — exactly
//! Hypertable issue 63. The handler and control tasks also access the
//! shared index without locking, so a migration partition can race with a
//! commit (lost update).
//!
//! ## The fix
//!
//! The fixed variant takes the per-server lock around both the commit and
//! the migration partition and re-checks ownership at commit time,
//! forwarding the row to the range's new owner when it has moved — the fix
//! predicate P of the paper's §3 ("ownership holds at commit time").

use crate::config::HyperConfig;
use crate::msg::Msg;
use dd_sim::{
    Builder, ChanClass, ChanHandle, InPort, MutexHandle, OutPort, Program, SimError, SimResult,
    TVar, TaskCtx,
};

/// Per-server handles shared by the put handler and control tasks.
#[derive(Clone, Copy)]
struct ServerHandles {
    /// Range ids this server currently owns.
    ranges: TVar<Vec<i64>>,
    /// Keys committed to this server.
    index: TVar<Vec<i64>>,
    /// Last block appended to the commit log (data-plane bulk).
    log: TVar<Vec<u8>>,
    /// Forwarding table `(range, to)` written by migrations (fix only).
    fwd: TVar<Vec<(i64, i64)>>,
    /// The per-server lock (used by the fixed variant).
    lock: MutexHandle,
    /// Put channel.
    data: ChanHandle<Msg>,
    /// Control channel (migrations, transfers, dumps).
    ctl: ChanHandle<Msg>,
}

/// The hyperstore program (buggy or fixed).
pub struct HyperstoreProgram {
    /// Cluster configuration.
    pub cfg: HyperConfig,
    /// Whether the ownership-recheck fix is applied.
    pub fixed: bool,
}

impl HyperstoreProgram {
    /// The buggy production build.
    pub fn buggy(cfg: HyperConfig) -> Self {
        HyperstoreProgram { cfg, fixed: false }
    }

    /// The build with the issue-63 fix applied.
    pub fn fixed(cfg: HyperConfig) -> Self {
        HyperstoreProgram { cfg, fixed: true }
    }
}

impl Program for HyperstoreProgram {
    fn name(&self) -> &'static str {
        if self.fixed {
            "hyperstore-fixed"
        } else {
            "hyperstore"
        }
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let cfg = self.cfg.clone();
        let fixed = self.fixed;
        let n = cfg.n_servers;

        let master_ctl = b.channel::<Msg>("master.ctl", ChanClass::Network);
        let coord_ctl = b.channel::<Msg>("coord.ctl", ChanClass::Network);
        let dumper_cmd = b.channel::<Msg>("dumper.cmd", ChanClass::Network);
        let dumper_reply = b.channel::<Msg>("dumper.reply", ChanClass::Network);

        let servers: Vec<ServerHandles> = (0..n)
            .map(|j| {
                let owned: Vec<i64> = (0..cfg.n_ranges)
                    .filter(|&r| cfg.initial_owner(r) == j)
                    .map(|r| r as i64)
                    .collect();
                ServerHandles {
                    ranges: b.var(&format!("server{j}.ranges"), owned),
                    index: b.var(&format!("server{j}.index"), Vec::<i64>::new()),
                    log: b.var(&format!("server{j}.log"), Vec::<u8>::new()),
                    fwd: b.var(&format!("server{j}.fwd"), Vec::<(i64, i64)>::new()),
                    lock: b.mutex(&format!("server{j}.lock")),
                    data: b.channel::<Msg>(&format!("server{j}.data"), ChanClass::Network),
                    ctl: b.channel::<Msg>(&format!("server{j}.ctl"), ChanClass::Network),
                }
            })
            .collect();

        let client_replies: Vec<ChanHandle<Msg>> = (0..cfg.n_clients)
            .map(|i| b.channel::<Msg>(&format!("client{i}.reply"), ChanClass::Network))
            .collect();
        let key_ports: Vec<InPort> = (0..cfg.n_clients)
            .map(|i| b.in_port(&format!("client{i}.keys")))
            .collect();

        let loaded_out = b.out_port("loaded");
        let dumped_out = b.out_port("dumped");

        // Master.
        {
            let cfg = cfg.clone();
            let servers = servers.clone();
            let client_replies = client_replies.clone();
            b.spawn("master", "master", move |mut ctx| async move {
                master_task(&mut ctx, &cfg, master_ctl, &servers, &client_replies).await
            });
        }

        // Servers: put handler + control task each.
        for j in 0..n {
            let h = servers[j as usize];
            let cfg_h = cfg.clone();
            let replies = client_replies.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.handler"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    server_handler(&mut ctx, &cfg_h, j, h, &replies, &all, fixed).await
                },
            );
            let cfg_c = cfg.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.ctl"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    server_ctl(
                        &mut ctx,
                        &cfg_c,
                        j,
                        h,
                        &all,
                        master_ctl,
                        dumper_reply,
                        fixed,
                    )
                    .await
                },
            );
        }

        // Loader clients.
        for i in 0..cfg.n_clients {
            let cfg_c = cfg.clone();
            let reply = client_replies[i as usize];
            let port = key_ports[i as usize];
            let all = servers.clone();
            b.spawn(
                &format!("client{i}"),
                &format!("client{i}"),
                move |mut ctx| async move {
                    loader_task(
                        &mut ctx, &cfg_c, i, port, reply, master_ctl, coord_ctl, &all,
                    )
                    .await
                },
            );
        }

        // Dump client.
        {
            let cfg_d = cfg.clone();
            let all = servers.clone();
            b.spawn("dumper", "dumper", move |mut ctx| async move {
                dumper_task(&mut ctx, &cfg_d, dumper_cmd, dumper_reply, &all, dumped_out).await
            });
        }

        // Coordinator.
        {
            let n_clients = cfg.n_clients;
            b.spawn("coord", "coord", move |mut ctx| async move {
                coordinator_task(&mut ctx, n_clients, coord_ctl, dumper_cmd, loaded_out).await
            });
        }
    }
}

/// Master: answers locates from its range map; issues the migration plan;
/// applies ownership changes when migrations complete.
async fn master_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    inbox: ChanHandle<Msg>,
    servers: &[ServerHandles],
    client_replies: &[ChanHandle<Msg>],
) -> SimResult<()> {
    let mut range_map: Vec<u32> = (0..cfg.n_ranges).map(|r| cfg.initial_owner(r)).collect();
    let mut pending: Vec<(u32, u32)> = Vec::new(); // (range, destination)
    let mut plan = cfg.migrations.clone();
    plan.sort_by_key(|m| m.time);
    plan.reverse(); // Pop from the back in time order.

    loop {
        // Issue due migrations.
        while plan.last().is_some_and(|m| m.time <= ctx.now()) {
            let step = plan.pop().expect("checked non-empty");
            let owner = range_map[step.range as usize];
            let to = (owner + 1) % cfg.n_servers;
            pending.push((step.range, to));
            ctx.probe(
                "hyperstore.migrate_issued",
                step.range as i64,
                "master::migrate_cmd",
            )
            .await?;
            ctx.send(
                &servers[owner as usize].ctl,
                Msg::Migrate {
                    range: step.range,
                    to,
                },
                "master::migrate_cmd",
            )
            .await?;
        }
        let wait = plan
            .last()
            .map(|m| m.time.saturating_sub(ctx.now()).max(1))
            .unwrap_or(5_000);
        match ctx.recv_timeout(&inbox, wait, "master::recv").await {
            Ok(Msg::Locate { client, key }) => {
                let owner = range_map[cfg.range_of(key) as usize];
                ctx.send(
                    &client_replies[client as usize],
                    Msg::LocateResp { server: owner },
                    "master::locate",
                )
                .await?;
            }
            Ok(Msg::MigrateDone { range }) => {
                if let Some(pos) = pending.iter().position(|(r, _)| *r == range) {
                    let (_, to) = pending.remove(pos);
                    range_map[range as usize] = to;
                }
                ctx.probe("hyperstore.migrate_done", range as i64, "master::done")
                    .await?;
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Put handler: commits rows into the server's index and commit log.
async fn server_handler(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    client_replies: &[ChanHandle<Msg>],
    all: &[ServerHandles],
    fixed: bool,
) -> SimResult<()> {
    loop {
        let msg = ctx.recv(&h.data, "server::recv_put").await?;
        let Msg::Put {
            client,
            key,
            bytes,
            hops,
        } = msg
        else {
            continue;
        };
        if fixed {
            // FIX: ownership is re-checked at commit time, atomically with
            // the commit, and moved ranges forward to their new owner.
            ctx.lock(h.lock, "server::commit_lock").await?;
            let ranges = ctx.read(&h.ranges, "server::check_ranges").await?;
            let owned = ranges.contains(&(cfg.range_of(key) as i64));
            if owned {
                commit_row(ctx, me, key, &bytes, &h, cfg).await?;
                ctx.unlock(h.lock, "server::commit_unlock").await?;
                ctx.send(
                    &client_replies[client as usize],
                    Msg::PutAck { key },
                    "server::ack_send",
                )
                .await?;
            } else {
                let fwd = ctx.read(&h.fwd, "server::fwd_read").await?;
                ctx.unlock(h.lock, "server::commit_unlock").await?;
                match fwd.iter().find(|(r, _)| *r == cfg.range_of(key) as i64) {
                    Some(&(_, to)) => {
                        ctx.send(
                            &all[to as usize].data,
                            Msg::Put {
                                client,
                                key,
                                bytes,
                                hops: hops + 1,
                            },
                            "server::forward",
                        )
                        .await?;
                    }
                    // The range is migrating *to* this server but the bulk
                    // transfer has not landed yet: defer the put by
                    // requeueing it (bounded by a hop cap).
                    None if hops < 16 => {
                        ctx.yield_now("server::defer").await?;
                        ctx.send(
                            &h.data,
                            Msg::Put {
                                client,
                                key,
                                bytes,
                                hops: hops + 1,
                            },
                            "server::defer",
                        )
                        .await?;
                    }
                    None => {
                        ctx.count("misrouted", 1, "server::misrouted").await?;
                    }
                }
            }
        } else {
            // BUG (issue 63): no ownership check at commit time, no lock —
            // a concurrent migration makes this row vanish from dumps.
            commit_row(ctx, me, key, &bytes, &h, cfg).await?;
            ctx.send(
                &client_replies[client as usize],
                Msg::PutAck { key },
                "server::ack_send",
            )
            .await?;
        }
    }
}

/// Appends the row to the commit log and index, then probes whether the
/// server still owned the row's range at commit time (debug
/// instrumentation; the buggy build does not act on it).
async fn commit_row(
    ctx: &mut TaskCtx,
    me: u32,
    key: i64,
    bytes: &[u8],
    h: &ServerHandles,
    cfg: &HyperConfig,
) -> SimResult<()> {
    ctx.write(&h.log, bytes.to_vec(), "server::commit_log")
        .await?;
    let mut index = ctx.read(&h.index, "server::commit_index_read").await?;
    index.push(key);
    ctx.write(&h.index, index, "server::commit_index_write")
        .await?;
    let ranges = ctx.read(&h.ranges, "server::commit_check").await?;
    let owned_now = ranges.contains(&(cfg.range_of(key) as i64));
    ctx.probe(
        "hyperstore.commit_owned",
        owned_now,
        "server::commit_owned_probe",
    )
    .await?;
    ctx.probe(
        "hyperstore.commit",
        vec![me as i64, key, owned_now as i64],
        "server::commit_trace",
    )
    .await?;
    ctx.count("rows_committed", 1, "server::commit_count")
        .await?;
    Ok(())
}

/// Control task: migrations out, transfers in, dumps.
#[allow(clippy::too_many_arguments)]
async fn server_ctl(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    all: &[ServerHandles],
    master: ChanHandle<Msg>,
    dumper_reply: ChanHandle<Msg>,
    fixed: bool,
) -> SimResult<()> {
    loop {
        match ctx.recv(&h.ctl, "serverctl::recv").await? {
            Msg::Migrate { range, to } => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::mig_lock").await?;
                }
                let mut ranges = ctx.read(&h.ranges, "serverctl::mig_ranges_read").await?;
                ranges.retain(|&r| r != range as i64);
                ctx.write(&h.ranges, ranges, "serverctl::mig_ranges_write")
                    .await?;
                let index = ctx.read(&h.index, "serverctl::mig_index_read").await?;
                let (moved, kept): (Vec<i64>, Vec<i64>) =
                    index.into_iter().partition(|&k| cfg.range_of(k) == range);
                ctx.write(&h.index, kept, "serverctl::mig_index_write")
                    .await?;
                if fixed {
                    let mut fwd = ctx.read(&h.fwd, "serverctl::fwd_read").await?;
                    fwd.retain(|(r, _)| *r != range as i64);
                    fwd.push((range as i64, to as i64));
                    ctx.write(&h.fwd, fwd, "serverctl::fwd_write").await?;
                    ctx.unlock(h.lock, "serverctl::mig_unlock").await?;
                }
                ctx.probe(
                    "hyperstore.migrated",
                    vec![me as i64, range as i64, moved.len() as i64],
                    "serverctl::migrated",
                )
                .await?;
                let rows: Vec<(i64, Vec<u8>)> = moved
                    .into_iter()
                    .map(|k| (k, vec![0u8; cfg.row_size as usize]))
                    .collect();
                ctx.send(
                    &all[to as usize].ctl,
                    Msg::Transfer { range, rows },
                    "serverctl::transfer_send",
                )
                .await?;
                ctx.send(&master, Msg::MigrateDone { range }, "serverctl::done_send")
                    .await?;
            }
            Msg::Transfer { range, rows } => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::merge_lock").await?;
                }
                let mut ranges = ctx.read(&h.ranges, "serverctl::merge_ranges_read").await?;
                if !ranges.contains(&(range as i64)) {
                    ranges.push(range as i64);
                }
                ctx.write(&h.ranges, ranges, "serverctl::merge_ranges_write")
                    .await?;
                let mut index = ctx.read(&h.index, "serverctl::merge_index_read").await?;
                let mut ingest = Vec::new();
                for (k, b) in rows {
                    index.push(k);
                    ingest.extend_from_slice(&b);
                }
                ctx.write(&h.index, index, "serverctl::merge_index_write")
                    .await?;
                if fixed {
                    ctx.unlock(h.lock, "serverctl::merge_unlock").await?;
                }
                // Bulk ingest into the local cellstore (data plane).
                ctx.write(&h.log, ingest, "serverctl::merge_ingest").await?;
            }
            Msg::Dump => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::dump_lock").await?;
                }
                let ranges = ctx.read(&h.ranges, "serverctl::dump_ranges_read").await?;
                let index = ctx.read(&h.index, "serverctl::dump_index_read").await?;
                if fixed {
                    ctx.unlock(h.lock, "serverctl::dump_unlock").await?;
                }
                // Issue 63's visible half: keys in unowned ranges are
                // silently ignored.
                let keys: Vec<i64> = index
                    .iter()
                    .copied()
                    .filter(|&k| ranges.contains(&(cfg.range_of(k) as i64)))
                    .collect();
                let ignored = index.len() - keys.len();
                ctx.probe(
                    "hyperstore.dump_ignored",
                    ignored as i64,
                    "serverctl::dump_probe",
                )
                .await?;
                ctx.send(
                    &dumper_reply,
                    Msg::DumpResp { server: me, keys },
                    "serverctl::dump_send",
                )
                .await?;
            }
            _ => {}
        }
    }
}

/// Loader: reads keys from its input port, locates, generates the row
/// payload, stores it, and waits for the acknowledgement.
#[allow(clippy::too_many_arguments)]
async fn loader_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    keys: InPort,
    reply: ChanHandle<Msg>,
    master: ChanHandle<Msg>,
    coord: ChanHandle<Msg>,
    servers: &[ServerHandles],
) -> SimResult<()> {
    let mut loaded: i64 = 0;
    loop {
        let key: i64 = match ctx.input(keys, "client::input").await {
            Ok(k) => k,
            Err(SimError::InputExhausted(_)) => break,
            Err(e) => return Err(e),
        };
        ctx.send(
            &master,
            Msg::Locate { client: me, key },
            "client::locate_send",
        )
        .await?;
        let server = match ctx
            .recv_timeout(&reply, cfg.ack_timeout, "client::locate_recv")
            .await
        {
            Ok(Msg::LocateResp { server }) => server,
            Ok(_) => continue,
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("locate_timeouts", 1, "client::locate_recv")
                    .await?;
                continue;
            }
            Err(e) => return Err(e),
        };
        // One RNG draw expanded locally into the row payload: data-plane
        // contents never influence control flow, so relaxed replay may
        // re-synthesise them freely.
        let seed = ctx.rand_below(0, "client::gen").await?;
        let mut sm = dd_sim::rng::SplitMix64::new(seed);
        let bytes: Vec<u8> = (0..cfg.row_size).map(|_| sm.next_u64() as u8).collect();
        ctx.send(
            &servers[server as usize].data,
            Msg::Put {
                client: me,
                key,
                bytes,
                hops: 0,
            },
            "client::put_send",
        )
        .await?;
        loaded += 1;
        match ctx
            .recv_timeout(&reply, cfg.ack_timeout, "client::ack_recv")
            .await
        {
            Ok(Msg::PutAck { .. }) => {
                ctx.count("rows_acked", 1, "client::ack_recv").await?;
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("ack_timeouts", 1, "client::ack_recv").await?;
            }
            Err(e) => return Err(e),
        }
    }
    ctx.count("rows_loaded", loaded, "client::done").await?;
    ctx.send(
        &coord,
        Msg::LoaderDone { client: me, loaded },
        "client::done",
    )
    .await?;
    Ok(())
}

/// Dump client: queries every server and accumulates the returned rows,
/// charging its memory budget per row (the client-OOM alternative cause
/// lives here).
async fn dumper_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    cmd: ChanHandle<Msg>,
    reply: ChanHandle<Msg>,
    servers: &[ServerHandles],
    out: OutPort,
) -> SimResult<()> {
    loop {
        match ctx.recv(&cmd, "dumper::cmd_recv").await? {
            Msg::StartDump => break,
            _ => continue,
        }
    }
    let mut rows: Vec<i64> = Vec::new();
    let mut oom = false;
    'servers: for (j, s) in servers.iter().enumerate() {
        ctx.send(&s.ctl, Msg::Dump, "dumper::dump_send").await?;
        match ctx
            .recv_timeout(&reply, cfg.dump_timeout, "dumper::resp_recv")
            .await
        {
            Ok(Msg::DumpResp { keys, .. }) => {
                for k in keys {
                    // Materialising a fetched row costs memory.
                    match ctx.alloc(cfg.row_size as u64, "dumper::alloc").await {
                        Ok(()) => rows.push(k),
                        Err(SimError::OutOfMemory { .. }) => {
                            ctx.count("dump_oom", 1, "dumper::alloc").await?;
                            oom = true;
                            break 'servers;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("dump_timeouts", 1, "dumper::resp_recv").await?;
                let _ = j;
            }
            Err(e) => return Err(e),
        }
    }
    rows.sort_unstable();
    rows.dedup();
    let _ = oom;
    ctx.count("rows_dumped", rows.len() as i64, "dumper::out")
        .await?;
    ctx.output(out, rows.len() as i64, "dumper::out").await?;
    ctx.stop_run("dumper::stop").await?;
    Ok(())
}

/// Coordinator: waits for all loaders, lets in-flight work settle, reports
/// the loaded count and starts the dump.
async fn coordinator_task(
    ctx: &mut TaskCtx,
    n_clients: u32,
    inbox: ChanHandle<Msg>,
    dumper_cmd: ChanHandle<Msg>,
    out: OutPort,
) -> SimResult<()> {
    let mut total: i64 = 0;
    for _ in 0..n_clients {
        if let Msg::LoaderDone { loaded, .. } = ctx.recv(&inbox, "coord::recv").await? {
            total += loaded;
        }
    }
    // Let in-flight puts and transfers drain: virtual-time sleep runs every
    // runnable task to quiescence first.
    ctx.sleep(200, "coord::settle").await?;
    ctx.output(out, total, "coord::out").await?;
    ctx.send(&dumper_cmd, Msg::StartDump, "coord::start_dump")
        .await?;
    Ok(())
}
