//! The hyperstore cluster as a `dd-sim` program.
//!
//! Topology: one master (range assignment + migration plan), `n_servers`
//! range servers — each a *put handler* task and a *control* task sharing
//! the server's range set and row index through shared variables — plus
//! loader clients, a dump client and a coordinator.
//!
//! ## Issue 63 (the bug)
//!
//! The buggy put handler commits a row without re-checking range ownership:
//! if the row's range migrates away between the client's locate and the
//! commit (or while the put sits in the server's queue), the row lands in
//! the index of a server that no longer owns its range. Dumps only return
//! keys in *owned* ranges, so the row is silently ignored — exactly
//! Hypertable issue 63. The handler and control tasks also access the
//! shared index without locking, so a migration partition can race with a
//! commit (lost update).
//!
//! ## The fix
//!
//! The fixed variant takes the per-server lock around both the commit and
//! the migration partition and re-checks ownership at commit time,
//! forwarding the row to the range's new owner when it has moved — the fix
//! predicate P of the paper's §3 ("ownership holds at commit time").
//!
//! ## Failover mode (the replication bug)
//!
//! [`HyperstoreProgram::buggy_failover`] runs the same cluster with a
//! replica set per range: every server is the *primary* for its ranges and
//! ships committed keys to its ring follower (`(j + 1) % n`). Clients
//! retry puts with backoff, report unresponsive primaries to the master
//! (`Suspect`), and the master promotes the follower of a suspected
//! server. Restarted servers rebuild their row index from their local
//! commit log ([`Program::recover`]) and rejoin. The dump degrades
//! gracefully: each answer carries the server's range claim, and the
//! dumper reports how many ranges answered instead of hanging on a dead
//! server.
//!
//! The buggy build ships the commit log to the follower in fire-and-forget
//! batches of [`SHIP_BATCH`]: a primary that crashes with a partial batch
//! (or whose shipments a network partition dropped) has acknowledged rows
//! its follower never saw, and promotion silently loses that un-shipped
//! commit-log suffix. The fixed build ships synchronously — every commit
//! is shipped and acknowledged by the follower (with bounded retry) before
//! the client's ack — so no acknowledged row can be lost by promotion.

use crate::config::HyperConfig;
use crate::msg::Msg;
use dd_sim::{
    Builder, ChanClass, ChanHandle, InPort, MutexHandle, OutPort, Program, RecoveryBuilder,
    SimError, SimResult, TVar, TaskCtx,
};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// Buggy failover builds ship the commit log in fire-and-forget batches of
/// this many commits; the un-shipped tail is what promotion loses.
pub const SHIP_BATCH: usize = 3;
/// How many times a loader retries a put (after the first attempt) before
/// giving the key up.
pub const PUT_RETRIES: u32 = 3;

/// Replication handles a server carries in failover mode only (the base
/// issue-63 cluster never declares them, so its kernel object layout — and
/// therefore its golden trace hashes — are untouched).
#[derive(Clone, Copy)]
struct ReplHandles {
    /// Replication log: every key this server committed, in commit order.
    /// Durable (survives a crash); recovery rebuilds the index from it.
    rlog: TVar<Vec<i64>>,
    /// Keys this server holds *as a follower* for its ring predecessor.
    replica: TVar<Vec<i64>>,
    /// Keys whose put this server acknowledged to a client. The
    /// replication contract is `replica(follower) ⊇ acked(primary)`.
    acked: TVar<Vec<i64>>,
    /// Channel on which this server receives shipment acknowledgements.
    repl: ChanHandle<Msg>,
}

/// Per-server handles shared by the put handler and control tasks.
#[derive(Clone, Copy)]
struct ServerHandles {
    /// Range ids this server currently owns.
    ranges: TVar<Vec<i64>>,
    /// Keys committed to this server.
    index: TVar<Vec<i64>>,
    /// Last block appended to the commit log (data-plane bulk).
    log: TVar<Vec<u8>>,
    /// Forwarding table `(range, to)` written by migrations (fix only).
    fwd: TVar<Vec<(i64, i64)>>,
    /// The per-server lock (used by the fixed variant).
    lock: MutexHandle,
    /// Put channel.
    data: ChanHandle<Msg>,
    /// Control channel (migrations, transfers, dumps).
    ctl: ChanHandle<Msg>,
    /// Replication handles (failover mode only).
    repl: Option<ReplHandles>,
}

/// Everything [`Program::recover`] needs to respawn a server's tasks after
/// an environment-scheduled restart, stashed by the failover setup.
#[derive(Clone)]
struct ClusterHandles {
    servers: Vec<ServerHandles>,
    client_replies: Vec<ChanHandle<Msg>>,
    master_ctl: ChanHandle<Msg>,
    master_pong: ChanHandle<Msg>,
    dumper_reply: ChanHandle<Msg>,
}

/// The ring follower that replicates server `j`'s commits.
fn follower(j: u32, n: u32) -> u32 {
    (j + 1) % n
}

/// The hyperstore program (buggy or fixed; plain or failover).
pub struct HyperstoreProgram {
    /// Cluster configuration.
    pub cfg: HyperConfig,
    /// Whether the fix is applied (issue-63 recheck, or synchronous
    /// log-shipping in failover mode).
    pub fixed: bool,
    /// Whether the replicated/failover cluster is built instead of the
    /// plain issue-63 cluster.
    pub failover: bool,
    /// Handles stashed by the failover setup for [`Program::recover`].
    /// Re-stashing on re-setup (resume, explore) writes identical ids.
    cluster: Mutex<Option<ClusterHandles>>,
}

impl HyperstoreProgram {
    /// The buggy production build.
    pub fn buggy(cfg: HyperConfig) -> Self {
        HyperstoreProgram {
            cfg,
            fixed: false,
            failover: false,
            cluster: Mutex::new(None),
        }
    }

    /// The build with the issue-63 fix applied.
    pub fn fixed(cfg: HyperConfig) -> Self {
        HyperstoreProgram {
            cfg,
            fixed: true,
            failover: false,
            cluster: Mutex::new(None),
        }
    }

    /// The replicated cluster with batched fire-and-forget log shipping:
    /// promotion after a primary crash silently loses the un-shipped
    /// commit-log suffix (up to [`SHIP_BATCH`] acknowledged rows).
    pub fn buggy_failover(cfg: HyperConfig) -> Self {
        HyperstoreProgram {
            cfg,
            fixed: false,
            failover: true,
            cluster: Mutex::new(None),
        }
    }

    /// The replicated cluster with synchronous acknowledged shipping: every
    /// commit reaches the follower before the client's ack, so promotion
    /// never loses an acknowledged row.
    pub fn fixed_failover(cfg: HyperConfig) -> Self {
        HyperstoreProgram {
            cfg,
            fixed: true,
            failover: true,
            cluster: Mutex::new(None),
        }
    }
}

impl Program for HyperstoreProgram {
    fn name(&self) -> &'static str {
        match (self.failover, self.fixed) {
            (false, false) => "hyperstore",
            (false, true) => "hyperstore-fixed",
            (true, false) => "hyperstore-failover",
            (true, true) => "hyperstore-failover-fixed",
        }
    }

    fn setup(&self, b: &mut Builder<'_>) {
        if self.failover {
            self.setup_failover(b);
            return;
        }
        let cfg = self.cfg.clone();
        let fixed = self.fixed;
        let n = cfg.n_servers;

        let master_ctl = b.channel::<Msg>("master.ctl", ChanClass::Network);
        let coord_ctl = b.channel::<Msg>("coord.ctl", ChanClass::Network);
        let dumper_cmd = b.channel::<Msg>("dumper.cmd", ChanClass::Network);
        let dumper_reply = b.channel::<Msg>("dumper.reply", ChanClass::Network);

        let servers: Vec<ServerHandles> = (0..n)
            .map(|j| {
                let owned: Vec<i64> = (0..cfg.n_ranges)
                    .filter(|&r| cfg.initial_owner(r) == j)
                    .map(|r| r as i64)
                    .collect();
                ServerHandles {
                    ranges: b.var(&format!("server{j}.ranges"), owned),
                    index: b.var(&format!("server{j}.index"), Vec::<i64>::new()),
                    log: b.var(&format!("server{j}.log"), Vec::<u8>::new()),
                    fwd: b.var(&format!("server{j}.fwd"), Vec::<(i64, i64)>::new()),
                    lock: b.mutex(&format!("server{j}.lock")),
                    data: b.channel::<Msg>(&format!("server{j}.data"), ChanClass::Network),
                    ctl: b.channel::<Msg>(&format!("server{j}.ctl"), ChanClass::Network),
                    repl: None,
                }
            })
            .collect();

        let client_replies: Vec<ChanHandle<Msg>> = (0..cfg.n_clients)
            .map(|i| b.channel::<Msg>(&format!("client{i}.reply"), ChanClass::Network))
            .collect();
        let key_ports: Vec<InPort> = (0..cfg.n_clients)
            .map(|i| b.in_port(&format!("client{i}.keys")))
            .collect();

        let loaded_out = b.out_port("loaded");
        let dumped_out = b.out_port("dumped");

        // Master.
        {
            let cfg = cfg.clone();
            let servers = servers.clone();
            let client_replies = client_replies.clone();
            b.spawn("master", "master", move |mut ctx| async move {
                master_task(&mut ctx, &cfg, master_ctl, &servers, &client_replies).await
            });
        }

        // Servers: put handler + control task each.
        for j in 0..n {
            let h = servers[j as usize];
            let cfg_h = cfg.clone();
            let replies = client_replies.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.handler"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    server_handler(&mut ctx, &cfg_h, j, h, &replies, &all, fixed).await
                },
            );
            let cfg_c = cfg.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.ctl"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    server_ctl(
                        &mut ctx,
                        &cfg_c,
                        j,
                        h,
                        &all,
                        master_ctl,
                        dumper_reply,
                        fixed,
                    )
                    .await
                },
            );
        }

        // Loader clients.
        for i in 0..cfg.n_clients {
            let cfg_c = cfg.clone();
            let reply = client_replies[i as usize];
            let port = key_ports[i as usize];
            let all = servers.clone();
            b.spawn(
                &format!("client{i}"),
                &format!("client{i}"),
                move |mut ctx| async move {
                    loader_task(
                        &mut ctx, &cfg_c, i, port, reply, master_ctl, coord_ctl, &all,
                    )
                    .await
                },
            );
        }

        // Dump client.
        {
            let cfg_d = cfg.clone();
            let all = servers.clone();
            b.spawn("dumper", "dumper", move |mut ctx| async move {
                dumper_task(&mut ctx, &cfg_d, dumper_cmd, dumper_reply, &all, dumped_out).await
            });
        }

        // Coordinator.
        {
            let n_clients = cfg.n_clients;
            b.spawn("coord", "coord", move |mut ctx| async move {
                coordinator_task(&mut ctx, n_clients, coord_ctl, dumper_cmd, loaded_out).await
            });
        }
    }

    /// Respawns a restarted range server's tasks (failover mode): the fresh
    /// control task replays the replication log into the volatile index,
    /// then rejoins the master for a fresh ownership grant.
    fn recover(&self, group: &str, rb: &mut RecoveryBuilder) {
        if !self.failover {
            return; // The plain cluster has no recovery story: stay down.
        }
        let Some(j) = group
            .strip_prefix("server")
            .and_then(|s| s.parse::<u32>().ok())
        else {
            return; // Only range servers recover; other groups stay down.
        };
        let cl = self
            .cluster
            .lock()
            .expect("cluster handle stash poisoned")
            .clone()
            .expect("recover() before setup()");
        let h = cl.servers[j as usize];
        let fixed = self.fixed;

        // Same spawn order as setup: handler first, control task second
        // (recovery must be deterministic; the resume path re-validates
        // task names against this order).
        {
            let cfg = self.cfg.clone();
            let replies = cl.client_replies.clone();
            let all = cl.servers.clone();
            rb.spawn(&format!("server{j}.handler"), move |mut ctx| async move {
                fo_handler(&mut ctx, &cfg, j, h, &replies, &all, fixed).await
            });
        }
        {
            let cfg = self.cfg.clone();
            let all = cl.servers.clone();
            let master_ctl = cl.master_ctl;
            let master_pong = cl.master_pong;
            let dumper_reply = cl.dumper_reply;
            rb.spawn(&format!("server{j}.ctl"), move |mut ctx| async move {
                fo_ctl(
                    &mut ctx,
                    &cfg,
                    j,
                    h,
                    &all,
                    master_ctl,
                    master_pong,
                    dumper_reply,
                    fixed,
                    true, // recovering: replay the rlog, then rejoin.
                )
                .await
            });
        }
    }
}

impl HyperstoreProgram {
    /// Builds the replicated failover cluster: the issue-63 topology plus a
    /// replication log, a follower replica and an ack channel per server, a
    /// retrying loader, a suspicion-driven master and a degrading dumper.
    fn setup_failover(&self, b: &mut Builder<'_>) {
        let cfg = self.cfg.clone();
        let fixed = self.fixed;
        let n = cfg.n_servers;

        let master_ctl = b.channel::<Msg>("master.ctl", ChanClass::Network);
        // Liveness answers for the master's verify-before-promote pings.
        let master_pong = b.channel::<Msg>("master.pong", ChanClass::Network);
        let coord_ctl = b.channel::<Msg>("coord.ctl", ChanClass::Network);
        let dumper_cmd = b.channel::<Msg>("dumper.cmd", ChanClass::Network);
        let dumper_reply = b.channel::<Msg>("dumper.reply", ChanClass::Network);

        let servers: Vec<ServerHandles> = (0..n)
            .map(|j| {
                let owned: Vec<i64> = (0..cfg.n_ranges)
                    .filter(|&r| cfg.initial_owner(r) == j)
                    .map(|r| r as i64)
                    .collect();
                ServerHandles {
                    ranges: b.var(&format!("server{j}.ranges"), owned),
                    index: b.var(&format!("server{j}.index"), Vec::<i64>::new()),
                    log: b.var(&format!("server{j}.log"), Vec::<u8>::new()),
                    fwd: b.var(&format!("server{j}.fwd"), Vec::<(i64, i64)>::new()),
                    lock: b.mutex(&format!("server{j}.lock")),
                    data: b.channel::<Msg>(&format!("server{j}.data"), ChanClass::Network),
                    ctl: b.channel::<Msg>(&format!("server{j}.ctl"), ChanClass::Network),
                    repl: Some(ReplHandles {
                        rlog: b.var(&format!("server{j}.rlog"), Vec::<i64>::new()),
                        replica: b.var(&format!("server{j}.replica"), Vec::<i64>::new()),
                        acked: b.var(&format!("server{j}.acked"), Vec::<i64>::new()),
                        repl: b.channel::<Msg>(&format!("server{j}.repl"), ChanClass::Network),
                    }),
                }
            })
            .collect();

        let client_replies: Vec<ChanHandle<Msg>> = (0..cfg.n_clients)
            .map(|i| b.channel::<Msg>(&format!("client{i}.reply"), ChanClass::Network))
            .collect();
        let key_ports: Vec<InPort> = (0..cfg.n_clients)
            .map(|i| b.in_port(&format!("client{i}.keys")))
            .collect();

        let loaded_out = b.out_port("loaded");
        let dumped_out = b.out_port("dumped");
        let covered_out = b.out_port("covered");

        // Master: range map + migration plan + failure detection.
        {
            let cfg = cfg.clone();
            let servers = servers.clone();
            let client_replies = client_replies.clone();
            b.spawn("master", "master", move |mut ctx| async move {
                fo_master(
                    &mut ctx,
                    &cfg,
                    master_ctl,
                    master_pong,
                    &servers,
                    &client_replies,
                )
                .await
            });
        }

        // Servers: put handler + control task each.
        for j in 0..n {
            let h = servers[j as usize];
            let cfg_h = cfg.clone();
            let replies = client_replies.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.handler"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    fo_handler(&mut ctx, &cfg_h, j, h, &replies, &all, fixed).await
                },
            );
            let cfg_c = cfg.clone();
            let all = servers.clone();
            b.spawn(
                &format!("server{j}.ctl"),
                &format!("server{j}"),
                move |mut ctx| async move {
                    fo_ctl(
                        &mut ctx,
                        &cfg_c,
                        j,
                        h,
                        &all,
                        master_ctl,
                        master_pong,
                        dumper_reply,
                        fixed,
                        false,
                    )
                    .await
                },
            );
        }

        // Retrying loader clients.
        for i in 0..cfg.n_clients {
            let cfg_c = cfg.clone();
            let reply = client_replies[i as usize];
            let port = key_ports[i as usize];
            let all = servers.clone();
            b.spawn(
                &format!("client{i}"),
                &format!("client{i}"),
                move |mut ctx| async move {
                    fo_loader(
                        &mut ctx, &cfg_c, i, port, reply, master_ctl, coord_ctl, &all,
                    )
                    .await
                },
            );
        }

        // Degrading dump client.
        {
            let cfg_d = cfg.clone();
            let all = servers.clone();
            b.spawn("dumper", "dumper", move |mut ctx| async move {
                fo_dumper(
                    &mut ctx,
                    &cfg_d,
                    dumper_cmd,
                    dumper_reply,
                    &all,
                    dumped_out,
                    covered_out,
                )
                .await
            });
        }

        // Coordinator (unchanged from the plain cluster).
        {
            let n_clients = cfg.n_clients;
            b.spawn("coord", "coord", move |mut ctx| async move {
                coordinator_task(&mut ctx, n_clients, coord_ctl, dumper_cmd, loaded_out).await
            });
        }

        *self.cluster.lock().expect("cluster handle stash poisoned") = Some(ClusterHandles {
            servers,
            client_replies,
            master_ctl,
            master_pong,
            dumper_reply,
        });
    }
}

/// Master: answers locates from its range map; issues the migration plan;
/// applies ownership changes when migrations complete.
async fn master_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    inbox: ChanHandle<Msg>,
    servers: &[ServerHandles],
    client_replies: &[ChanHandle<Msg>],
) -> SimResult<()> {
    let mut range_map: Vec<u32> = (0..cfg.n_ranges).map(|r| cfg.initial_owner(r)).collect();
    let mut pending: Vec<(u32, u32)> = Vec::new(); // (range, destination)
    let mut plan = cfg.migrations.clone();
    plan.sort_by_key(|m| m.time);
    plan.reverse(); // Pop from the back in time order.

    loop {
        // Issue due migrations.
        while plan.last().is_some_and(|m| m.time <= ctx.now()) {
            let step = plan.pop().expect("checked non-empty");
            let owner = range_map[step.range as usize];
            let to = (owner + 1) % cfg.n_servers;
            pending.push((step.range, to));
            ctx.probe(
                "hyperstore.migrate_issued",
                step.range as i64,
                "master::migrate_cmd",
            )
            .await?;
            ctx.send(
                &servers[owner as usize].ctl,
                Msg::Migrate {
                    range: step.range,
                    to,
                },
                "master::migrate_cmd",
            )
            .await?;
        }
        let wait = plan
            .last()
            .map(|m| m.time.saturating_sub(ctx.now()).max(1))
            .unwrap_or(5_000);
        match ctx.recv_timeout(&inbox, wait, "master::recv").await {
            Ok(Msg::Locate { client, key }) => {
                let owner = range_map[cfg.range_of(key) as usize];
                ctx.send(
                    &client_replies[client as usize],
                    Msg::LocateResp { server: owner },
                    "master::locate",
                )
                .await?;
            }
            Ok(Msg::MigrateDone { range }) => {
                if let Some(pos) = pending.iter().position(|(r, _)| *r == range) {
                    let (_, to) = pending.remove(pos);
                    range_map[range as usize] = to;
                }
                ctx.probe("hyperstore.migrate_done", range as i64, "master::done")
                    .await?;
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Put handler: commits rows into the server's index and commit log.
async fn server_handler(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    client_replies: &[ChanHandle<Msg>],
    all: &[ServerHandles],
    fixed: bool,
) -> SimResult<()> {
    loop {
        let msg = ctx.recv(&h.data, "server::recv_put").await?;
        let Msg::Put {
            client,
            key,
            bytes,
            hops,
        } = msg
        else {
            continue;
        };
        if fixed {
            // FIX: ownership is re-checked at commit time, atomically with
            // the commit, and moved ranges forward to their new owner.
            ctx.lock(h.lock, "server::commit_lock").await?;
            let ranges = ctx.read(&h.ranges, "server::check_ranges").await?;
            let owned = ranges.contains(&(cfg.range_of(key) as i64));
            if owned {
                commit_row(ctx, me, key, &bytes, &h, cfg).await?;
                ctx.unlock(h.lock, "server::commit_unlock").await?;
                ctx.send(
                    &client_replies[client as usize],
                    Msg::PutAck { key },
                    "server::ack_send",
                )
                .await?;
            } else {
                let fwd = ctx.read(&h.fwd, "server::fwd_read").await?;
                ctx.unlock(h.lock, "server::commit_unlock").await?;
                match fwd.iter().find(|(r, _)| *r == cfg.range_of(key) as i64) {
                    Some(&(_, to)) => {
                        ctx.send(
                            &all[to as usize].data,
                            Msg::Put {
                                client,
                                key,
                                bytes,
                                hops: hops + 1,
                            },
                            "server::forward",
                        )
                        .await?;
                    }
                    // The range is migrating *to* this server but the bulk
                    // transfer has not landed yet: defer the put by
                    // requeueing it (bounded by a hop cap).
                    None if hops < 16 => {
                        ctx.yield_now("server::defer").await?;
                        ctx.send(
                            &h.data,
                            Msg::Put {
                                client,
                                key,
                                bytes,
                                hops: hops + 1,
                            },
                            "server::defer",
                        )
                        .await?;
                    }
                    None => {
                        ctx.count("misrouted", 1, "server::misrouted").await?;
                    }
                }
            }
        } else {
            // BUG (issue 63): no ownership check at commit time, no lock —
            // a concurrent migration makes this row vanish from dumps.
            commit_row(ctx, me, key, &bytes, &h, cfg).await?;
            ctx.send(
                &client_replies[client as usize],
                Msg::PutAck { key },
                "server::ack_send",
            )
            .await?;
        }
    }
}

/// Appends the row to the commit log and index, then probes whether the
/// server still owned the row's range at commit time (debug
/// instrumentation; the buggy build does not act on it).
async fn commit_row(
    ctx: &mut TaskCtx,
    me: u32,
    key: i64,
    bytes: &[u8],
    h: &ServerHandles,
    cfg: &HyperConfig,
) -> SimResult<()> {
    ctx.write(&h.log, bytes.to_vec(), "server::commit_log")
        .await?;
    let mut index = ctx.read(&h.index, "server::commit_index_read").await?;
    index.push(key);
    ctx.write(&h.index, index, "server::commit_index_write")
        .await?;
    let ranges = ctx.read(&h.ranges, "server::commit_check").await?;
    let owned_now = ranges.contains(&(cfg.range_of(key) as i64));
    ctx.probe(
        "hyperstore.commit_owned",
        owned_now,
        "server::commit_owned_probe",
    )
    .await?;
    ctx.probe(
        "hyperstore.commit",
        vec![me as i64, key, owned_now as i64],
        "server::commit_trace",
    )
    .await?;
    ctx.count("rows_committed", 1, "server::commit_count")
        .await?;
    Ok(())
}

/// Control task: migrations out, transfers in, dumps.
#[allow(clippy::too_many_arguments)]
async fn server_ctl(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    all: &[ServerHandles],
    master: ChanHandle<Msg>,
    dumper_reply: ChanHandle<Msg>,
    fixed: bool,
) -> SimResult<()> {
    loop {
        match ctx.recv(&h.ctl, "serverctl::recv").await? {
            Msg::Migrate { range, to } => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::mig_lock").await?;
                }
                let mut ranges = ctx.read(&h.ranges, "serverctl::mig_ranges_read").await?;
                ranges.retain(|&r| r != range as i64);
                ctx.write(&h.ranges, ranges, "serverctl::mig_ranges_write")
                    .await?;
                let index = ctx.read(&h.index, "serverctl::mig_index_read").await?;
                let (moved, kept): (Vec<i64>, Vec<i64>) =
                    index.into_iter().partition(|&k| cfg.range_of(k) == range);
                ctx.write(&h.index, kept, "serverctl::mig_index_write")
                    .await?;
                if fixed {
                    let mut fwd = ctx.read(&h.fwd, "serverctl::fwd_read").await?;
                    fwd.retain(|(r, _)| *r != range as i64);
                    fwd.push((range as i64, to as i64));
                    ctx.write(&h.fwd, fwd, "serverctl::fwd_write").await?;
                    ctx.unlock(h.lock, "serverctl::mig_unlock").await?;
                }
                ctx.probe(
                    "hyperstore.migrated",
                    vec![me as i64, range as i64, moved.len() as i64],
                    "serverctl::migrated",
                )
                .await?;
                let rows: Vec<(i64, Vec<u8>)> = moved
                    .into_iter()
                    .map(|k| (k, vec![0u8; cfg.row_size as usize]))
                    .collect();
                ctx.send(
                    &all[to as usize].ctl,
                    Msg::Transfer { range, rows },
                    "serverctl::transfer_send",
                )
                .await?;
                ctx.send(&master, Msg::MigrateDone { range }, "serverctl::done_send")
                    .await?;
            }
            Msg::Transfer { range, rows } => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::merge_lock").await?;
                }
                let mut ranges = ctx.read(&h.ranges, "serverctl::merge_ranges_read").await?;
                if !ranges.contains(&(range as i64)) {
                    ranges.push(range as i64);
                }
                ctx.write(&h.ranges, ranges, "serverctl::merge_ranges_write")
                    .await?;
                let mut index = ctx.read(&h.index, "serverctl::merge_index_read").await?;
                let mut ingest = Vec::new();
                for (k, b) in rows {
                    index.push(k);
                    ingest.extend_from_slice(&b);
                }
                ctx.write(&h.index, index, "serverctl::merge_index_write")
                    .await?;
                if fixed {
                    ctx.unlock(h.lock, "serverctl::merge_unlock").await?;
                }
                // Bulk ingest into the local cellstore (data plane).
                ctx.write(&h.log, ingest, "serverctl::merge_ingest").await?;
            }
            Msg::Dump => {
                if fixed {
                    ctx.lock(h.lock, "serverctl::dump_lock").await?;
                }
                let ranges = ctx.read(&h.ranges, "serverctl::dump_ranges_read").await?;
                let index = ctx.read(&h.index, "serverctl::dump_index_read").await?;
                if fixed {
                    ctx.unlock(h.lock, "serverctl::dump_unlock").await?;
                }
                // Issue 63's visible half: keys in unowned ranges are
                // silently ignored.
                let keys: Vec<i64> = index
                    .iter()
                    .copied()
                    .filter(|&k| ranges.contains(&(cfg.range_of(k) as i64)))
                    .collect();
                let ignored = index.len() - keys.len();
                ctx.probe(
                    "hyperstore.dump_ignored",
                    ignored as i64,
                    "serverctl::dump_probe",
                )
                .await?;
                ctx.send(
                    &dumper_reply,
                    Msg::DumpResp { server: me, keys },
                    "serverctl::dump_send",
                )
                .await?;
            }
            _ => {}
        }
    }
}

/// Loader: reads keys from its input port, locates, generates the row
/// payload, stores it, and waits for the acknowledgement.
#[allow(clippy::too_many_arguments)]
async fn loader_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    keys: InPort,
    reply: ChanHandle<Msg>,
    master: ChanHandle<Msg>,
    coord: ChanHandle<Msg>,
    servers: &[ServerHandles],
) -> SimResult<()> {
    let mut loaded: i64 = 0;
    loop {
        let key: i64 = match ctx.input(keys, "client::input").await {
            Ok(k) => k,
            Err(SimError::InputExhausted(_)) => break,
            Err(e) => return Err(e),
        };
        ctx.send(
            &master,
            Msg::Locate { client: me, key },
            "client::locate_send",
        )
        .await?;
        let server = match ctx
            .recv_timeout(&reply, cfg.ack_timeout, "client::locate_recv")
            .await
        {
            Ok(Msg::LocateResp { server }) => server,
            Ok(_) => continue,
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("locate_timeouts", 1, "client::locate_recv")
                    .await?;
                continue;
            }
            Err(e) => return Err(e),
        };
        // One RNG draw expanded locally into the row payload: data-plane
        // contents never influence control flow, so relaxed replay may
        // re-synthesise them freely.
        let seed = ctx.rand_below(0, "client::gen").await?;
        let mut sm = dd_sim::rng::SplitMix64::new(seed);
        let bytes: Vec<u8> = (0..cfg.row_size).map(|_| sm.next_u64() as u8).collect();
        ctx.send(
            &servers[server as usize].data,
            Msg::Put {
                client: me,
                key,
                bytes,
                hops: 0,
            },
            "client::put_send",
        )
        .await?;
        loaded += 1;
        match ctx
            .recv_timeout(&reply, cfg.ack_timeout, "client::ack_recv")
            .await
        {
            Ok(Msg::PutAck { .. }) => {
                ctx.count("rows_acked", 1, "client::ack_recv").await?;
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("ack_timeouts", 1, "client::ack_recv").await?;
            }
            Err(e) => return Err(e),
        }
    }
    ctx.count("rows_loaded", loaded, "client::done").await?;
    ctx.send(
        &coord,
        Msg::LoaderDone { client: me, loaded },
        "client::done",
    )
    .await?;
    Ok(())
}

/// Dump client: queries every server and accumulates the returned rows,
/// charging its memory budget per row (the client-OOM alternative cause
/// lives here).
async fn dumper_task(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    cmd: ChanHandle<Msg>,
    reply: ChanHandle<Msg>,
    servers: &[ServerHandles],
    out: OutPort,
) -> SimResult<()> {
    loop {
        match ctx.recv(&cmd, "dumper::cmd_recv").await? {
            Msg::StartDump => break,
            _ => continue,
        }
    }
    let mut rows: Vec<i64> = Vec::new();
    let mut oom = false;
    'servers: for (j, s) in servers.iter().enumerate() {
        ctx.send(&s.ctl, Msg::Dump, "dumper::dump_send").await?;
        match ctx
            .recv_timeout(&reply, cfg.dump_timeout, "dumper::resp_recv")
            .await
        {
            Ok(Msg::DumpResp { keys, .. }) => {
                for k in keys {
                    // Materialising a fetched row costs memory.
                    match ctx.alloc(cfg.row_size as u64, "dumper::alloc").await {
                        Ok(()) => rows.push(k),
                        Err(SimError::OutOfMemory { .. }) => {
                            ctx.count("dump_oom", 1, "dumper::alloc").await?;
                            oom = true;
                            break 'servers;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {
                ctx.count("dump_timeouts", 1, "dumper::resp_recv").await?;
                let _ = j;
            }
            Err(e) => return Err(e),
        }
    }
    rows.sort_unstable();
    rows.dedup();
    let _ = oom;
    ctx.count("rows_dumped", rows.len() as i64, "dumper::out")
        .await?;
    ctx.output(out, rows.len() as i64, "dumper::out").await?;
    ctx.stop_run("dumper::stop").await?;
    Ok(())
}

/// Coordinator: waits for all loaders, lets in-flight work settle, reports
/// the loaded count and starts the dump.
async fn coordinator_task(
    ctx: &mut TaskCtx,
    n_clients: u32,
    inbox: ChanHandle<Msg>,
    dumper_cmd: ChanHandle<Msg>,
    out: OutPort,
) -> SimResult<()> {
    let mut total: i64 = 0;
    for _ in 0..n_clients {
        if let Msg::LoaderDone { loaded, .. } = ctx.recv(&inbox, "coord::recv").await? {
            total += loaded;
        }
    }
    // Let in-flight puts and transfers drain: virtual-time sleep runs every
    // runnable task to quiescence first.
    ctx.sleep(200, "coord::settle").await?;
    ctx.output(out, total, "coord::out").await?;
    ctx.send(&dumper_cmd, Msg::StartDump, "coord::start_dump")
        .await?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Failover-mode tasks (replication, promotion, retry, recovery).
// ---------------------------------------------------------------------------

/// Failover put handler: commits under the lock with an ownership recheck
/// (the issue-63 fix is baked into both failover builds), then replicates
/// to the ring follower.
///
/// The buggy build batches shipments ([`SHIP_BATCH`]) fire-and-forget; the
/// fixed build ships every commit and waits for the follower's cumulative
/// acknowledgement (bounded retry) before acknowledging the client.
async fn fo_handler(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    client_replies: &[ChanHandle<Msg>],
    all: &[ServerHandles],
    fixed: bool,
) -> SimResult<()> {
    let repl = h.repl.expect("failover handles");
    let fol_ctl = all[follower(me, cfg.n_servers) as usize].ctl;
    // Task-local shipment batch: exactly the window the buggy build loses —
    // keys already acknowledged to clients whose shipment has not left this
    // task when the environment kills the group.
    let mut batch: Vec<i64> = Vec::new();
    // Total entries this handler has shipped; compared against the
    // follower's cumulative ack so stale acknowledgements are harmless.
    let mut shipped: u64 = 0;
    loop {
        let msg = ctx.recv(&h.data, "server::recv_put").await?;
        let Msg::Put {
            client,
            key,
            bytes,
            hops,
        } = msg
        else {
            continue;
        };
        ctx.lock(h.lock, "server::commit_lock").await?;
        let ranges = ctx.read(&h.ranges, "server::check_ranges").await?;
        let owned = ranges.contains(&(cfg.range_of(key) as i64));
        if owned {
            commit_row(ctx, me, key, &bytes, &h, cfg).await?;
            let mut rlog = ctx.read(&repl.rlog, "server::rlog_read").await?;
            rlog.push(key);
            ctx.write(&repl.rlog, rlog, "server::rlog_write").await?;
            ctx.unlock(h.lock, "server::commit_unlock").await?;
            if fixed {
                // FIX: ship synchronously — the client's ack below implies
                // the follower holds the row, so promotion cannot lose it.
                shipped += 1;
                ctx.send(
                    &fol_ctl,
                    Msg::LogShip {
                        from: me,
                        entries: vec![key],
                    },
                    "server::ship",
                )
                .await?;
                loop {
                    match ctx
                        .recv_timeout(&repl.repl, cfg.ack_timeout, "server::ship_ack")
                        .await
                    {
                        Ok(Msg::LogShipAck { upto }) if upto >= shipped => break,
                        Ok(_) => continue,
                        Err(SimError::RecvTimeout(_)) => {
                            // Follower looks dead: re-send once (best
                            // effort — the cumulative ack makes a late
                            // duplicate harmless) and ack the client
                            // anyway. The stall is bounded by ONE ship
                            // timeout so a primary with a dead follower
                            // stays fast enough that clients never
                            // falsely suspect *it* (their ack deadline
                            // is two timeouts).
                            ctx.count("ship_ack_timeouts", 1, "server::ship_ack")
                                .await?;
                            ctx.send(
                                &fol_ctl,
                                Msg::LogShip {
                                    from: me,
                                    entries: vec![key],
                                },
                                "server::ship_retry",
                            )
                            .await?;
                            break;
                        }
                        Err(e) => return Err(e),
                    }
                }
            } else {
                // BUG: fire-and-forget batched shipping. A crash (or a
                // partition swallowing the send) loses the whole batch,
                // yet the client acks below still go out.
                batch.push(key);
                if batch.len() >= SHIP_BATCH {
                    let entries = std::mem::take(&mut batch);
                    shipped += entries.len() as u64;
                    ctx.send(&fol_ctl, Msg::LogShip { from: me, entries }, "server::ship")
                        .await?;
                }
            }
            ctx.send(
                &client_replies[client as usize],
                Msg::PutAck { key },
                "server::ack_send",
            )
            .await?;
            ctx.lock(h.lock, "server::acked_lock").await?;
            let mut acked = ctx.read(&repl.acked, "server::acked_read").await?;
            acked.push(key);
            ctx.write(&repl.acked, acked, "server::acked_write").await?;
            ctx.unlock(h.lock, "server::acked_unlock").await?;
        } else {
            // Not owned: forward or defer, exactly like the fixed issue-63
            // build (both failover builds recheck ownership).
            let fwd = ctx.read(&h.fwd, "server::fwd_read").await?;
            ctx.unlock(h.lock, "server::commit_unlock").await?;
            match fwd.iter().find(|(r, _)| *r == cfg.range_of(key) as i64) {
                Some(&(_, to)) => {
                    ctx.send(
                        &all[to as usize].data,
                        Msg::Put {
                            client,
                            key,
                            bytes,
                            hops: hops + 1,
                        },
                        "server::forward",
                    )
                    .await?;
                }
                None if hops < 16 => {
                    ctx.yield_now("server::defer").await?;
                    ctx.send(
                        &h.data,
                        Msg::Put {
                            client,
                            key,
                            bytes,
                            hops: hops + 1,
                        },
                        "server::defer",
                    )
                    .await?;
                }
                None => {
                    ctx.count("misrouted", 1, "server::misrouted").await?;
                }
            }
        }
    }
}

/// Failover control task: migrations, transfers, shipment ingestion,
/// promotion and degraded dumps. On `recovering` it first rebuilds the
/// volatile index from the durable replication log and rejoins the master.
#[allow(clippy::too_many_arguments)]
async fn fo_ctl(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    h: ServerHandles,
    all: &[ServerHandles],
    master: ChanHandle<Msg>,
    pong: ChanHandle<Msg>,
    dumper_reply: ChanHandle<Msg>,
    fixed: bool,
    recovering: bool,
) -> SimResult<()> {
    let repl = h.repl.expect("failover handles");
    let fol_ctl = all[follower(me, cfg.n_servers) as usize].ctl;
    if recovering {
        // Crash recovery: replay the replication log into the index (commit
        // order, deduplicated), drop the stale ownership claim and ask the
        // master for a fresh grant.
        ctx.lock(h.lock, "serverctl::recover_lock").await?;
        let rlog = ctx.read(&repl.rlog, "serverctl::recover_rlog").await?;
        let mut index: Vec<i64> = Vec::new();
        for k in rlog {
            if !index.contains(&k) {
                index.push(k);
            }
        }
        let recovered = index.len() as i64;
        ctx.write(&h.index, index, "serverctl::recover_index")
            .await?;
        ctx.write(&h.ranges, Vec::new(), "serverctl::recover_ranges")
            .await?;
        ctx.unlock(h.lock, "serverctl::recover_unlock").await?;
        ctx.probe(
            "hyperstore.recovered",
            vec![me as i64, recovered],
            "serverctl::recovered",
        )
        .await?;
        ctx.send(&master, Msg::Rejoin { server: me }, "serverctl::rejoin")
            .await?;
    }
    loop {
        match ctx.recv(&h.ctl, "serverctl::recv").await? {
            Msg::Migrate { range, to } => {
                ctx.lock(h.lock, "serverctl::mig_lock").await?;
                let mut ranges = ctx.read(&h.ranges, "serverctl::mig_ranges_read").await?;
                ranges.retain(|&r| r != range as i64);
                ctx.write(&h.ranges, ranges, "serverctl::mig_ranges_write")
                    .await?;
                let index = ctx.read(&h.index, "serverctl::mig_index_read").await?;
                let (moved, kept): (Vec<i64>, Vec<i64>) =
                    index.into_iter().partition(|&k| cfg.range_of(k) == range);
                ctx.write(&h.index, kept, "serverctl::mig_index_write")
                    .await?;
                // Moved rows are no longer this primary's durability
                // responsibility (the lost-suffix predicate reads `acked`).
                let mut acked = ctx.read(&repl.acked, "serverctl::mig_acked_read").await?;
                acked.retain(|&k| cfg.range_of(k) != range);
                ctx.write(&repl.acked, acked, "serverctl::mig_acked_write")
                    .await?;
                let mut fwd = ctx.read(&h.fwd, "serverctl::fwd_read").await?;
                fwd.retain(|(r, _)| *r != range as i64);
                fwd.push((range as i64, to as i64));
                ctx.write(&h.fwd, fwd, "serverctl::fwd_write").await?;
                ctx.unlock(h.lock, "serverctl::mig_unlock").await?;
                ctx.probe(
                    "hyperstore.migrated",
                    vec![me as i64, range as i64, moved.len() as i64],
                    "serverctl::migrated",
                )
                .await?;
                let rows: Vec<(i64, Vec<u8>)> = moved
                    .into_iter()
                    .map(|k| (k, vec![0u8; cfg.row_size as usize]))
                    .collect();
                ctx.send(
                    &all[to as usize].ctl,
                    Msg::Transfer { range, rows },
                    "serverctl::transfer_send",
                )
                .await?;
                ctx.send(&master, Msg::MigrateDone { range }, "serverctl::done_send")
                    .await?;
            }
            Msg::Transfer { range, rows } => {
                ctx.lock(h.lock, "serverctl::merge_lock").await?;
                let mut ranges = ctx.read(&h.ranges, "serverctl::merge_ranges_read").await?;
                if !ranges.contains(&(range as i64)) {
                    ranges.push(range as i64);
                }
                ctx.write(&h.ranges, ranges, "serverctl::merge_ranges_write")
                    .await?;
                let mut index = ctx.read(&h.index, "serverctl::merge_index_read").await?;
                let mut keys = Vec::new();
                let mut ingest = Vec::new();
                for (k, b) in rows {
                    index.push(k);
                    keys.push(k);
                    ingest.extend_from_slice(&b);
                }
                ctx.write(&h.index, index, "serverctl::merge_index_write")
                    .await?;
                // Inherited rows become this primary's responsibility: log
                // them and (below) re-replicate to this server's follower.
                let mut rlog = ctx.read(&repl.rlog, "serverctl::merge_rlog_read").await?;
                rlog.extend_from_slice(&keys);
                ctx.write(&repl.rlog, rlog, "serverctl::merge_rlog_write")
                    .await?;
                let mut acked = ctx.read(&repl.acked, "serverctl::merge_acked_read").await?;
                acked.extend_from_slice(&keys);
                ctx.write(&repl.acked, acked, "serverctl::merge_acked_write")
                    .await?;
                ctx.unlock(h.lock, "serverctl::merge_unlock").await?;
                // Bulk ingest into the local cellstore (data plane).
                ctx.write(&h.log, ingest, "serverctl::merge_ingest").await?;
                if !keys.is_empty() {
                    // Buffered send: once sent it survives even our crash.
                    ctx.send(
                        &fol_ctl,
                        Msg::LogShip {
                            from: me,
                            entries: keys,
                        },
                        "serverctl::merge_ship",
                    )
                    .await?;
                }
            }
            Msg::LogShip { from, entries } => {
                let mut replica = ctx.read(&repl.replica, "serverctl::replica_read").await?;
                replica.extend_from_slice(&entries);
                let upto = replica.len() as u64;
                ctx.write(&repl.replica, replica, "serverctl::replica_write")
                    .await?;
                if fixed {
                    ctx.send(
                        &all[from as usize].repl.expect("failover handles").repl,
                        Msg::LogShipAck { upto },
                        "serverctl::ship_ack",
                    )
                    .await?;
                }
            }
            Msg::Promote {
                failed,
                ranges: granted,
            } => {
                ctx.lock(h.lock, "serverctl::promote_lock").await?;
                let mut ranges = ctx
                    .read(&h.ranges, "serverctl::promote_ranges_read")
                    .await?;
                for r in &granted {
                    if !ranges.contains(r) {
                        ranges.push(*r);
                    }
                }
                ctx.write(&h.ranges, ranges, "serverctl::promote_ranges_write")
                    .await?;
                let replica = ctx
                    .read(&repl.replica, "serverctl::promote_replica_read")
                    .await?;
                let mut index = ctx.read(&h.index, "serverctl::promote_index_read").await?;
                let mut merged: Vec<i64> = Vec::new();
                for &k in &replica {
                    if granted.contains(&(cfg.range_of(k) as i64))
                        && !index.contains(&k)
                        && !merged.contains(&k)
                    {
                        merged.push(k);
                    }
                }
                index.extend_from_slice(&merged);
                // What the failed primary acknowledged in the granted
                // ranges but this follower never received: the silently
                // lost commit-log suffix.
                let failed_acked: BTreeSet<i64> = ctx
                    .read(
                        &all[failed as usize].repl.expect("failover handles").acked,
                        "serverctl::promote_acked_read",
                    )
                    .await?
                    .into_iter()
                    .collect();
                let lost = failed_acked
                    .iter()
                    .filter(|&&k| {
                        granted.contains(&(cfg.range_of(k) as i64)) && !index.contains(&k)
                    })
                    .count() as i64;
                ctx.write(&h.index, index, "serverctl::promote_index_write")
                    .await?;
                let mut rlog = ctx.read(&repl.rlog, "serverctl::promote_rlog_read").await?;
                rlog.extend_from_slice(&merged);
                ctx.write(&repl.rlog, rlog, "serverctl::promote_rlog_write")
                    .await?;
                let mut acked = ctx
                    .read(&repl.acked, "serverctl::promote_acked_write")
                    .await?;
                acked.extend_from_slice(&merged);
                ctx.write(&repl.acked, acked, "serverctl::promote_acked_write")
                    .await?;
                ctx.unlock(h.lock, "serverctl::promote_unlock").await?;
                ctx.probe(
                    "hyperstore.promote_lost",
                    vec![failed as i64, lost],
                    "serverctl::promote_lost",
                )
                .await?;
                if lost > 0 {
                    ctx.count("promote_lost_rows", lost, "serverctl::promote_lost")
                        .await?;
                }
                ctx.probe(
                    "hyperstore.promoted",
                    vec![
                        me as i64,
                        failed as i64,
                        granted.len() as i64,
                        merged.len() as i64,
                    ],
                    "serverctl::promoted",
                )
                .await?;
                if !merged.is_empty() {
                    ctx.send(
                        &fol_ctl,
                        Msg::LogShip {
                            from: me,
                            entries: merged,
                        },
                        "serverctl::promote_ship",
                    )
                    .await?;
                }
            }
            Msg::Dump => {
                ctx.lock(h.lock, "serverctl::dump_lock").await?;
                let ranges = ctx.read(&h.ranges, "serverctl::dump_ranges_read").await?;
                let index = ctx.read(&h.index, "serverctl::dump_index_read").await?;
                ctx.unlock(h.lock, "serverctl::dump_unlock").await?;
                let keys: Vec<i64> = index
                    .iter()
                    .copied()
                    .filter(|&k| ranges.contains(&(cfg.range_of(k) as i64)))
                    .collect();
                let ignored = index.len() - keys.len();
                ctx.probe(
                    "hyperstore.dump_ignored",
                    ignored as i64,
                    "serverctl::dump_probe",
                )
                .await?;
                ctx.send(
                    &dumper_reply,
                    Msg::DumpRangeResp {
                        server: me,
                        ranges,
                        keys,
                    },
                    "serverctl::dump_send",
                )
                .await?;
            }
            Msg::Ping => {
                // Liveness check from the master's verify-before-promote
                // path: answering proves this server is slow, not dead.
                ctx.send(&pong, Msg::Pong { server: me }, "serverctl::pong")
                    .await?;
            }
            _ => {}
        }
    }
}

/// Failover master: the plain master's range map and migration plan, plus
/// failure detection — clients report unresponsive primaries (`Suspect`),
/// the master verifies the suspicion with a ping (a primary stalled on its
/// own dead follower still answers — promoting it would hand its ranges to
/// a cold replica), promotes the failed server's first live ring follower
/// only if the ping times out, and a recovered server (`Rejoin`) is
/// re-granted whatever the map still assigns to it.
async fn fo_master(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    inbox: ChanHandle<Msg>,
    pong: ChanHandle<Msg>,
    servers: &[ServerHandles],
    client_replies: &[ChanHandle<Msg>],
) -> SimResult<()> {
    let n = cfg.n_servers;
    let mut range_map: Vec<u32> = (0..cfg.n_ranges).map(|r| cfg.initial_owner(r)).collect();
    let mut pending: Vec<(u32, u32)> = Vec::new();
    let mut dead: BTreeSet<u32> = BTreeSet::new();
    let mut plan = cfg.migrations.clone();
    plan.sort_by_key(|m| m.time);
    plan.reverse(); // Pop from the back in time order.

    loop {
        // Issue due migrations — except onto or off of dead servers.
        while plan.last().is_some_and(|m| m.time <= ctx.now()) {
            let step = plan.pop().expect("checked non-empty");
            let owner = range_map[step.range as usize];
            let to = (owner + 1) % n;
            if dead.contains(&owner) || dead.contains(&to) {
                ctx.probe(
                    "hyperstore.migrate_skipped",
                    step.range as i64,
                    "master::migrate_cmd",
                )
                .await?;
                continue;
            }
            pending.push((step.range, to));
            ctx.probe(
                "hyperstore.migrate_issued",
                step.range as i64,
                "master::migrate_cmd",
            )
            .await?;
            ctx.send(
                &servers[owner as usize].ctl,
                Msg::Migrate {
                    range: step.range,
                    to,
                },
                "master::migrate_cmd",
            )
            .await?;
        }
        let wait = plan
            .last()
            .map(|m| m.time.saturating_sub(ctx.now()).max(1))
            .unwrap_or(5_000);
        match ctx.recv_timeout(&inbox, wait, "master::recv").await {
            Ok(Msg::Locate { client, key }) => {
                let owner = range_map[cfg.range_of(key) as usize];
                ctx.send(
                    &client_replies[client as usize],
                    Msg::LocateResp { server: owner },
                    "master::locate",
                )
                .await?;
            }
            Ok(Msg::MigrateDone { range }) => {
                if let Some(pos) = pending.iter().position(|(r, _)| *r == range) {
                    let (_, to) = pending.remove(pos);
                    range_map[range as usize] = to;
                }
                ctx.probe("hyperstore.migrate_done", range as i64, "master::done")
                    .await?;
            }
            Ok(Msg::Suspect { server }) => {
                ctx.probe("hyperstore.suspect", server as i64, "master::suspect")
                    .await?;
                if !dead.contains(&server) {
                    // Verify before promoting: ping the accused server and
                    // only treat it as dead if the ping times out.
                    ctx.send(&servers[server as usize].ctl, Msg::Ping, "master::ping")
                        .await?;
                    let alive = loop {
                        match ctx
                            .recv_timeout(&pong, cfg.ack_timeout, "master::verify")
                            .await
                        {
                            Ok(Msg::Pong { server: s }) if s == server => break true,
                            Ok(_) => continue, // Stale pong from an earlier round.
                            Err(SimError::RecvTimeout(_)) => break false,
                            Err(e) => return Err(e),
                        }
                    };
                    if alive {
                        ctx.probe("hyperstore.false_suspect", server as i64, "master::verify")
                            .await?;
                        continue;
                    }
                    dead.insert(server);
                    // Promote the first live server on the ring after the
                    // failed one.
                    let mut f = follower(server, n);
                    while dead.contains(&f) && f != server {
                        f = follower(f, n);
                    }
                    if f != server {
                        let granted: Vec<i64> = range_map
                            .iter()
                            .enumerate()
                            .filter(|&(_, &o)| o == server)
                            .map(|(r, _)| r as i64)
                            .collect();
                        for &r in &granted {
                            range_map[r as usize] = f;
                        }
                        ctx.probe(
                            "hyperstore.promote",
                            vec![server as i64, f as i64, granted.len() as i64],
                            "master::promote",
                        )
                        .await?;
                        ctx.send(
                            &servers[f as usize].ctl,
                            Msg::Promote {
                                failed: server,
                                ranges: granted,
                            },
                            "master::promote",
                        )
                        .await?;
                    }
                }
            }
            Ok(Msg::Rejoin { server }) => {
                dead.remove(&server);
                // Re-grant whatever the map still assigns to the recovered
                // server (nothing, if its ranges were promoted away).
                let granted: Vec<i64> = range_map
                    .iter()
                    .enumerate()
                    .filter(|&(_, &o)| o == server)
                    .map(|(r, _)| r as i64)
                    .collect();
                ctx.probe(
                    "hyperstore.rejoin",
                    vec![server as i64, granted.len() as i64],
                    "master::rejoin",
                )
                .await?;
                ctx.send(
                    &servers[server as usize].ctl,
                    Msg::Promote {
                        failed: server,
                        ranges: granted,
                    },
                    "master::rejoin",
                )
                .await?;
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {}
            Err(e) => return Err(e),
        }
    }
}

/// Failover loader: locates and stores with a bounded retry loop. A put
/// acknowledgement timeout reports the primary to the master (`Suspect`)
/// and backs off before retrying — the retry relocates, so it lands on the
/// promoted follower. Only acknowledged rows count as loaded.
#[allow(clippy::too_many_arguments)]
async fn fo_loader(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    me: u32,
    keys: InPort,
    reply: ChanHandle<Msg>,
    master: ChanHandle<Msg>,
    coord: ChanHandle<Msg>,
    servers: &[ServerHandles],
) -> SimResult<()> {
    let mut acked_rows: i64 = 0;
    loop {
        let key: i64 = match ctx.input(keys, "client::input").await {
            Ok(k) => k,
            Err(SimError::InputExhausted(_)) => break,
            Err(e) => return Err(e),
        };
        // One RNG draw per key regardless of retries — retries resend the
        // same payload, so the retry count never shifts the RNG stream.
        let seed = ctx.rand_below(0, "client::gen").await?;
        let mut sm = dd_sim::rng::SplitMix64::new(seed);
        let bytes: Vec<u8> = (0..cfg.row_size).map(|_| sm.next_u64() as u8).collect();
        'attempts: for attempt in 0..=PUT_RETRIES {
            ctx.send(
                &master,
                Msg::Locate { client: me, key },
                "client::locate_send",
            )
            .await?;
            let server = match ctx
                .recv_timeout(&reply, cfg.ack_timeout, "client::locate_recv")
                .await
            {
                Ok(Msg::LocateResp { server }) => server,
                Ok(_) => continue 'attempts, // A stale reply burns the attempt.
                Err(SimError::RecvTimeout(_)) => {
                    ctx.count("locate_timeouts", 1, "client::locate_recv")
                        .await?;
                    ctx.sleep(cfg.put_gap * (attempt as u64 + 1), "client::backoff")
                        .await?;
                    continue 'attempts;
                }
                Err(e) => return Err(e),
            };
            ctx.send(
                &servers[server as usize].data,
                Msg::Put {
                    client: me,
                    key,
                    bytes: bytes.clone(),
                    hops: 0,
                },
                "client::put_send",
            )
            .await?;
            // Two timeouts, not one: a fixed-build primary whose follower
            // is dead stalls for one ship timeout before acking, and that
            // slowness must read as slow, not dead — otherwise every
            // crash cascades into a false suspicion of the healthy
            // ring predecessor.
            match ctx
                .recv_timeout(&reply, 2 * cfg.ack_timeout, "client::ack_recv")
                .await
            {
                Ok(Msg::PutAck { key: k }) if k == key => {
                    ctx.count("rows_acked", 1, "client::ack_recv").await?;
                    acked_rows += 1;
                    break 'attempts;
                }
                Ok(_) => continue 'attempts, // Stale ack for an older key.
                Err(SimError::RecvTimeout(_)) => {
                    ctx.count("ack_timeouts", 1, "client::ack_recv").await?;
                    // The primary looks dead: tell the master, back off,
                    // then relocate and retry.
                    ctx.send(&master, Msg::Suspect { server }, "client::suspect")
                        .await?;
                    ctx.sleep(cfg.put_gap * (attempt as u64 + 1), "client::backoff")
                        .await?;
                }
                Err(e) => return Err(e),
            }
        }
    }
    ctx.count("rows_loaded", acked_rows, "client::done").await?;
    ctx.send(
        &coord,
        Msg::LoaderDone {
            client: me,
            loaded: acked_rows,
        },
        "client::done",
    )
    .await?;
    Ok(())
}

/// Failover dump client: queries every server, accumulates rows and the
/// union of answered range claims. A dead server simply times out — the
/// dump degrades to the ranges that answered (reported on the `covered`
/// output port) instead of hanging.
async fn fo_dumper(
    ctx: &mut TaskCtx,
    cfg: &HyperConfig,
    cmd: ChanHandle<Msg>,
    reply: ChanHandle<Msg>,
    servers: &[ServerHandles],
    dumped: OutPort,
    covered: OutPort,
) -> SimResult<()> {
    loop {
        match ctx.recv(&cmd, "dumper::cmd_recv").await? {
            Msg::StartDump => break,
            _ => continue,
        }
    }
    let mut rows: Vec<i64> = Vec::new();
    let mut answered: BTreeSet<i64> = BTreeSet::new();
    'servers: for s in servers.iter() {
        ctx.send(&s.ctl, Msg::Dump, "dumper::dump_send").await?;
        match ctx
            .recv_timeout(&reply, cfg.dump_timeout, "dumper::resp_recv")
            .await
        {
            Ok(Msg::DumpRangeResp { ranges, keys, .. }) => {
                answered.extend(ranges.iter().copied());
                for k in keys {
                    // Materialising a fetched row costs memory.
                    match ctx.alloc(cfg.row_size as u64, "dumper::alloc").await {
                        Ok(()) => rows.push(k),
                        Err(SimError::OutOfMemory { .. }) => {
                            ctx.count("dump_oom", 1, "dumper::alloc").await?;
                            break 'servers;
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
            Ok(_) => {}
            Err(SimError::RecvTimeout(_)) => {
                // Degrade: a dead server's ranges go unanswered.
                ctx.count("dump_timeouts", 1, "dumper::resp_recv").await?;
            }
            Err(e) => return Err(e),
        }
    }
    rows.sort_unstable();
    rows.dedup();
    let answered_list: Vec<i64> = answered.iter().copied().collect();
    ctx.probe(
        "hyperstore.ranges_answered",
        answered_list,
        "dumper::covered",
    )
    .await?;
    ctx.count("rows_dumped", rows.len() as i64, "dumper::out")
        .await?;
    ctx.output(dumped, rows.len() as i64, "dumper::out").await?;
    ctx.output(covered, answered.len() as i64, "dumper::covered")
        .await?;
    ctx.stop_run("dumper::stop").await?;
    Ok(())
}
