//! # dd-hyperstore — the paper's §4 case study, rebuilt
//!
//! A Hypertable-like distributed key-value store running on `dd-sim`:
//! a master (range assignment and migration), range servers (commit log +
//! row index + range set, with a put-handler and a control task sharing
//! state), loader clients, a dump client, and a coordinator.
//!
//! The buggy build reproduces **Hypertable issue 63**: rows committed while
//! their range concurrently migrates away are silently ignored by
//! subsequent dumps. The same observable failure (missing rows) also arises
//! from two alternative root causes — a range-server crash after load, and
//! the dump client exhausting memory — which is exactly why
//! failure-deterministic replay scores DF = 1/3 on this bug (§4).
//!
//! The **failover** builds ([`HyperstoreProgram::buggy_failover`]) extend
//! the cluster with replica sets: primaries ship their commit log to a ring
//! follower, clients retry with backoff and report unresponsive primaries,
//! the master promotes followers, restarted servers recover their index
//! from the commit log, and the dump degrades to the ranges that answered.
//! The buggy failover build ships fire-and-forget batches, so a primary
//! crash during the migration window makes promotion silently lose the
//! un-shipped commit-log suffix — a genuinely distributed root cause that
//! only manifests under a specific fault schedule.
//!
//! # Examples
//!
//! ```
//! use dd_hyperstore::{HyperConfig, HyperstoreProgram, check_run};
//!
//! let cfg = HyperConfig::small();
//! let inputs = cfg.input_script();
//! // The fixed build never loses rows, whatever the schedule.
//! for seed in 0..3 {
//!     let failure = check_run(&HyperstoreProgram::fixed(cfg.clone()), seed, &inputs);
//!     assert!(failure.is_none(), "fixed build failed: {failure:?}");
//! }
//! ```

pub mod config;
pub mod msg;
pub mod program;
pub mod workload;

pub use config::{HyperConfig, MigrationStep};
pub use msg::Msg;
pub use program::{HyperstoreProgram, PUT_RETRIES, SHIP_BATCH};
pub use workload::{
    check_failover_run, check_run, env_candidates, failover_env_candidates, failover_fault_env,
    failover_root_causes, failover_spec, hyperstore_root_causes, hyperstore_spec,
    HyperstoreFailoverWorkload, HyperstoreWorkload, INCOMPLETE, RANGES_UNAVAILABLE, RC_CLIENT_OOM,
    RC_LOST_LOG_SUFFIX, RC_MIGRATION_RACE, RC_PARTITION_SHIPPING, RC_REPLICA_DOWN, RC_SERVER_CRASH,
    ROWS_MISSING,
};
