//! # dd-hyperstore — the paper's §4 case study, rebuilt
//!
//! A Hypertable-like distributed key-value store running on `dd-sim`:
//! a master (range assignment and migration), range servers (commit log +
//! row index + range set, with a put-handler and a control task sharing
//! state), loader clients, a dump client, and a coordinator.
//!
//! The buggy build reproduces **Hypertable issue 63**: rows committed while
//! their range concurrently migrates away are silently ignored by
//! subsequent dumps. The same observable failure (missing rows) also arises
//! from two alternative root causes — a range-server crash after load, and
//! the dump client exhausting memory — which is exactly why
//! failure-deterministic replay scores DF = 1/3 on this bug (§4).
//!
//! # Examples
//!
//! ```
//! use dd_hyperstore::{HyperConfig, HyperstoreProgram, check_run};
//!
//! let cfg = HyperConfig::small();
//! let inputs = cfg.input_script();
//! // The fixed build never loses rows, whatever the schedule.
//! for seed in 0..3 {
//!     let failure = check_run(&HyperstoreProgram::fixed(cfg.clone()), seed, &inputs);
//!     assert!(failure.is_none(), "fixed build failed: {failure:?}");
//! }
//! ```

pub mod config;
pub mod msg;
pub mod program;
pub mod workload;

pub use config::{HyperConfig, MigrationStep};
pub use msg::Msg;
pub use program::HyperstoreProgram;
pub use workload::{
    check_run, env_candidates, hyperstore_root_causes, hyperstore_spec, HyperstoreWorkload,
    INCOMPLETE, RC_CLIENT_OOM, RC_MIGRATION_RACE, RC_SERVER_CRASH, ROWS_MISSING,
};
