//! The wire protocol: typed messages encoded into the simulator's dynamic
//! value model.

use dd_sim::{SimData, Value};

/// A hyperstore protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Client asks the master which server owns `key`.
    Locate {
        /// Asking client.
        client: u32,
        /// The key.
        key: i64,
    },
    /// Master's answer to a locate.
    LocateResp {
        /// Owning server.
        server: u32,
    },
    /// Client stores a row on a server.
    Put {
        /// Sending client.
        client: u32,
        /// Row key.
        key: i64,
        /// Row payload (data-plane bulk).
        bytes: Vec<u8>,
        /// Forward/requeue hops so far (the fixed build's redirect path).
        hops: u32,
    },
    /// Server acknowledges a stored row.
    PutAck {
        /// The row key.
        key: i64,
    },
    /// Master orders a server to migrate a range away.
    Migrate {
        /// The range to move.
        range: u32,
        /// Destination server.
        to: u32,
    },
    /// Bulk row transfer between servers during migration.
    Transfer {
        /// The migrated range.
        range: u32,
        /// The moved rows.
        rows: Vec<(i64, Vec<u8>)>,
    },
    /// Server tells the master a migration finished.
    MigrateDone {
        /// The migrated range.
        range: u32,
    },
    /// Dumper asks a server for its rows.
    Dump,
    /// Server's dump answer: the keys it serves.
    DumpResp {
        /// Answering server.
        server: u32,
        /// Keys in ranges the server currently owns.
        keys: Vec<i64>,
    },
    /// Loader tells the coordinator it finished.
    LoaderDone {
        /// The loader.
        client: u32,
        /// Rows it sent.
        loaded: i64,
    },
    /// Coordinator starts the dump phase.
    StartDump,
    /// Primary ships committed keys to its follower (failover mode).
    LogShip {
        /// Shipping primary.
        from: u32,
        /// Committed keys in ship order.
        entries: Vec<i64>,
    },
    /// Follower acknowledges a shipment (failover mode, fixed build only).
    LogShipAck {
        /// Replica-log length after the append.
        upto: u64,
    },
    /// Client reports an unresponsive server to the master (failover mode).
    Suspect {
        /// The suspected server.
        server: u32,
    },
    /// Master promotes a failed server's follower (failover mode).
    Promote {
        /// The failed primary.
        failed: u32,
        /// Ranges moving to the follower.
        ranges: Vec<i64>,
    },
    /// A restarted server announces itself to the master (failover mode).
    Rejoin {
        /// The recovered server.
        server: u32,
    },
    /// Server's dump answer carrying its range claim (failover mode): the
    /// dumper reports which ranges answered instead of hanging on a dead
    /// server.
    DumpRangeResp {
        /// Answering server.
        server: u32,
        /// Ranges the server currently claims.
        ranges: Vec<i64>,
        /// Keys in those ranges.
        keys: Vec<i64>,
    },
    /// Master verifies a suspicion before promoting (failover mode): a
    /// server that answers within the timeout is slow, not dead.
    Ping,
    /// A pinged server's liveness answer (failover mode).
    Pong {
        /// The answering server.
        server: u32,
    },
}

const TAG_LOCATE: i64 = 0;
const TAG_LOCATE_RESP: i64 = 1;
const TAG_PUT: i64 = 2;
const TAG_PUT_ACK: i64 = 3;
const TAG_MIGRATE: i64 = 4;
const TAG_TRANSFER: i64 = 5;
const TAG_MIGRATE_DONE: i64 = 6;
const TAG_DUMP: i64 = 7;
const TAG_DUMP_RESP: i64 = 8;
const TAG_LOADER_DONE: i64 = 9;
const TAG_START_DUMP: i64 = 10;
const TAG_LOG_SHIP: i64 = 11;
const TAG_LOG_SHIP_ACK: i64 = 12;
const TAG_SUSPECT: i64 = 13;
const TAG_PROMOTE: i64 = 14;
const TAG_REJOIN: i64 = 15;
const TAG_DUMP_RANGE_RESP: i64 = 16;
const TAG_PING: i64 = 17;
const TAG_PONG: i64 = 18;

impl SimData for Msg {
    fn into_value(self) -> Value {
        match self {
            Msg::Locate { client, key } => Value::List(vec![
                Value::Int(TAG_LOCATE),
                Value::Int(client as i64),
                Value::Int(key),
            ]),
            Msg::LocateResp { server } => {
                Value::List(vec![Value::Int(TAG_LOCATE_RESP), Value::Int(server as i64)])
            }
            Msg::Put {
                client,
                key,
                bytes,
                hops,
            } => Value::List(vec![
                Value::Int(TAG_PUT),
                Value::Int(client as i64),
                Value::Int(key),
                Value::Bytes(bytes),
                Value::Int(hops as i64),
            ]),
            Msg::PutAck { key } => Value::List(vec![Value::Int(TAG_PUT_ACK), Value::Int(key)]),
            Msg::Migrate { range, to } => Value::List(vec![
                Value::Int(TAG_MIGRATE),
                Value::Int(range as i64),
                Value::Int(to as i64),
            ]),
            Msg::Transfer { range, rows } => Value::List(vec![
                Value::Int(TAG_TRANSFER),
                Value::Int(range as i64),
                Value::List(
                    rows.into_iter()
                        .map(|(k, b)| Value::List(vec![Value::Int(k), Value::Bytes(b)]))
                        .collect(),
                ),
            ]),
            Msg::MigrateDone { range } => {
                Value::List(vec![Value::Int(TAG_MIGRATE_DONE), Value::Int(range as i64)])
            }
            Msg::Dump => Value::List(vec![Value::Int(TAG_DUMP)]),
            Msg::DumpResp { server, keys } => Value::List(vec![
                Value::Int(TAG_DUMP_RESP),
                Value::Int(server as i64),
                Value::List(keys.into_iter().map(Value::Int).collect()),
            ]),
            Msg::LoaderDone { client, loaded } => Value::List(vec![
                Value::Int(TAG_LOADER_DONE),
                Value::Int(client as i64),
                Value::Int(loaded),
            ]),
            Msg::StartDump => Value::List(vec![Value::Int(TAG_START_DUMP)]),
            Msg::LogShip { from, entries } => Value::List(vec![
                Value::Int(TAG_LOG_SHIP),
                Value::Int(from as i64),
                Value::List(entries.into_iter().map(Value::Int).collect()),
            ]),
            Msg::LogShipAck { upto } => {
                Value::List(vec![Value::Int(TAG_LOG_SHIP_ACK), Value::Int(upto as i64)])
            }
            Msg::Suspect { server } => {
                Value::List(vec![Value::Int(TAG_SUSPECT), Value::Int(server as i64)])
            }
            Msg::Promote { failed, ranges } => Value::List(vec![
                Value::Int(TAG_PROMOTE),
                Value::Int(failed as i64),
                Value::List(ranges.into_iter().map(Value::Int).collect()),
            ]),
            Msg::Rejoin { server } => {
                Value::List(vec![Value::Int(TAG_REJOIN), Value::Int(server as i64)])
            }
            Msg::DumpRangeResp {
                server,
                ranges,
                keys,
            } => Value::List(vec![
                Value::Int(TAG_DUMP_RANGE_RESP),
                Value::Int(server as i64),
                Value::List(ranges.into_iter().map(Value::Int).collect()),
                Value::List(keys.into_iter().map(Value::Int).collect()),
            ]),
            Msg::Ping => Value::List(vec![Value::Int(TAG_PING)]),
            Msg::Pong { server } => {
                Value::List(vec![Value::Int(TAG_PONG), Value::Int(server as i64)])
            }
        }
    }

    fn from_value(v: &Value) -> Option<Self> {
        let l = v.as_list()?;
        let tag = l.first()?.as_int()?;
        match tag {
            TAG_LOCATE => Some(Msg::Locate {
                client: l.get(1)?.as_int()? as u32,
                key: l.get(2)?.as_int()?,
            }),
            TAG_LOCATE_RESP => Some(Msg::LocateResp {
                server: l.get(1)?.as_int()? as u32,
            }),
            TAG_PUT => Some(Msg::Put {
                client: l.get(1)?.as_int()? as u32,
                key: l.get(2)?.as_int()?,
                bytes: match l.get(3)? {
                    Value::Bytes(b) => b.clone(),
                    _ => return None,
                },
                hops: l.get(4)?.as_int()? as u32,
            }),
            TAG_PUT_ACK => Some(Msg::PutAck {
                key: l.get(1)?.as_int()?,
            }),
            TAG_MIGRATE => Some(Msg::Migrate {
                range: l.get(1)?.as_int()? as u32,
                to: l.get(2)?.as_int()? as u32,
            }),
            TAG_TRANSFER => {
                let rows = l
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(|r| {
                        let pair = r.as_list()?;
                        let k = pair.first()?.as_int()?;
                        let b = match pair.get(1)? {
                            Value::Bytes(b) => b.clone(),
                            _ => return None,
                        };
                        Some((k, b))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Msg::Transfer {
                    range: l.get(1)?.as_int()? as u32,
                    rows,
                })
            }
            TAG_MIGRATE_DONE => Some(Msg::MigrateDone {
                range: l.get(1)?.as_int()? as u32,
            }),
            TAG_DUMP => Some(Msg::Dump),
            TAG_DUMP_RESP => Some(Msg::DumpResp {
                server: l.get(1)?.as_int()? as u32,
                keys: l
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(Value::as_int)
                    .collect::<Option<_>>()?,
            }),
            TAG_LOADER_DONE => Some(Msg::LoaderDone {
                client: l.get(1)?.as_int()? as u32,
                loaded: l.get(2)?.as_int()?,
            }),
            TAG_START_DUMP => Some(Msg::StartDump),
            TAG_LOG_SHIP => Some(Msg::LogShip {
                from: l.get(1)?.as_int()? as u32,
                entries: l
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(Value::as_int)
                    .collect::<Option<_>>()?,
            }),
            TAG_LOG_SHIP_ACK => Some(Msg::LogShipAck {
                upto: l.get(1)?.as_int()? as u64,
            }),
            TAG_SUSPECT => Some(Msg::Suspect {
                server: l.get(1)?.as_int()? as u32,
            }),
            TAG_PROMOTE => Some(Msg::Promote {
                failed: l.get(1)?.as_int()? as u32,
                ranges: l
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(Value::as_int)
                    .collect::<Option<_>>()?,
            }),
            TAG_REJOIN => Some(Msg::Rejoin {
                server: l.get(1)?.as_int()? as u32,
            }),
            TAG_DUMP_RANGE_RESP => Some(Msg::DumpRangeResp {
                server: l.get(1)?.as_int()? as u32,
                ranges: l
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(Value::as_int)
                    .collect::<Option<_>>()?,
                keys: l
                    .get(3)?
                    .as_list()?
                    .iter()
                    .map(Value::as_int)
                    .collect::<Option<_>>()?,
            }),
            TAG_PING => Some(Msg::Ping),
            TAG_PONG => Some(Msg::Pong {
                server: l.get(1)?.as_int()? as u32,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Msg) {
        let v = m.clone().into_value();
        assert_eq!(Msg::from_value(&v), Some(m));
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Msg::Locate { client: 1, key: 42 });
        round_trip(Msg::LocateResp { server: 2 });
        round_trip(Msg::Put {
            client: 0,
            key: 7,
            bytes: vec![1, 2, 3],
            hops: 2,
        });
        round_trip(Msg::PutAck { key: 7 });
        round_trip(Msg::Migrate { range: 3, to: 1 });
        round_trip(Msg::Transfer {
            range: 3,
            rows: vec![(1, vec![9]), (2, vec![8, 8])],
        });
        round_trip(Msg::MigrateDone { range: 3 });
        round_trip(Msg::Dump);
        round_trip(Msg::DumpResp {
            server: 0,
            keys: vec![1, 2, 3],
        });
        round_trip(Msg::LoaderDone {
            client: 1,
            loaded: 10,
        });
        round_trip(Msg::StartDump);
        round_trip(Msg::LogShip {
            from: 1,
            entries: vec![4, 5, 6],
        });
        round_trip(Msg::LogShipAck { upto: 12 });
        round_trip(Msg::Suspect { server: 1 });
        round_trip(Msg::Promote {
            failed: 1,
            ranges: vec![1, 4],
        });
        round_trip(Msg::Rejoin { server: 1 });
        round_trip(Msg::DumpRangeResp {
            server: 2,
            ranges: vec![0, 3],
            keys: vec![7, 9],
        });
        round_trip(Msg::Ping);
        round_trip(Msg::Pong { server: 2 });
    }

    #[test]
    fn garbage_decodes_to_none() {
        assert_eq!(Msg::from_value(&Value::Int(5)), None);
        assert_eq!(Msg::from_value(&Value::List(vec![Value::Int(999)])), None);
        assert_eq!(Msg::from_value(&Value::List(vec![])), None);
    }

    #[test]
    fn put_carries_data_plane_bulk() {
        let m = Msg::Put {
            client: 0,
            key: 1,
            bytes: vec![0; 256],
            hops: 0,
        };
        let v = m.into_value();
        assert!(v.byte_size() > 256);
    }
}
