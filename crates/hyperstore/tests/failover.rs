//! Validation of the replicated failover cluster: the buggy build loses
//! the un-shipped commit-log suffix when a primary crashes mid-load, the
//! fixed build's synchronous shipping survives the same fault schedules,
//! crash recovery replays the commit log, and fault runs replay
//! deterministically.

use dd_core::{CauseCtx, Workload};
use dd_hyperstore::{
    check_failover_run, failover_env_candidates, failover_fault_env, failover_root_causes,
    failover_spec, HyperConfig, HyperstoreFailoverWorkload, HyperstoreProgram, RANGES_UNAVAILABLE,
    RC_LOST_LOG_SUFFIX, ROWS_MISSING,
};
use dd_sim::{run_program, RandomPolicy, RunConfig};
use dd_trace::Trace;

fn run(program: &HyperstoreProgram, seed: u64, env: dd_sim::EnvConfig) -> dd_sim::RunOutput {
    let cfg = RunConfig {
        seed,
        max_steps: 500_000,
        inputs: program.cfg.input_script(),
        env,
        ..RunConfig::default()
    };
    run_program(program, cfg, Box::new(RandomPolicy::new(seed)), vec![])
}

#[test]
fn buggy_failover_loses_acked_rows_under_crash_schedule() {
    let w = HyperstoreFailoverWorkload::discover(HyperConfig::default(), 200)
        .expect("a failing production seed exists under the crash schedule");
    let setup = w.production();
    assert!(
        !setup.env.crashes.is_empty(),
        "the production incident needs the injected crash"
    );
    let program = HyperstoreProgram::buggy_failover(w.config().clone());
    let out = run(&program, setup.seed, setup.env.clone());
    let f = failover_spec(w.config().n_ranges)
        .check(&out.io)
        .expect("production run fails");
    assert_eq!(f.failure_id, ROWS_MISSING);

    // The distinguishing signal: promotion observed the lost suffix.
    assert!(
        out.io.counter("promote_lost_rows") > 0,
        "promotion should have counted lost rows"
    );
    let trace = Trace::from_run(&out);
    let ctx = CauseCtx {
        trace: &trace,
        registry: &out.registry,
        io: &out.io,
    };
    let causes = failover_root_causes();
    let lost = causes.iter().find(|c| c.id == RC_LOST_LOG_SUFFIX).unwrap();
    assert!(lost.active_in(&ctx), "lost-suffix cause active");
}

#[test]
fn fixed_failover_never_loses_acked_rows_under_crash_schedule() {
    let cfg = HyperConfig::default();
    let inputs = cfg.input_script();
    let env = failover_fault_env(&cfg);
    let program = HyperstoreProgram::fixed_failover(cfg);
    for seed in 0..8 {
        let failure = check_failover_run(&program, seed, &inputs, env.clone());
        assert!(
            failure.is_none(),
            "seed {seed}: fixed failover build failed under crash: {failure:?}"
        );
    }
}

#[test]
fn fixed_failover_survives_every_env_candidate() {
    let cfg = HyperConfig::default();
    let inputs = cfg.input_script();
    let program = HyperstoreProgram::fixed_failover(cfg.clone());
    for (i, env) in failover_env_candidates(&cfg).into_iter().enumerate() {
        for seed in 0..4 {
            let failure = check_failover_run(&program, seed, &inputs, env.clone());
            assert!(
                failure.is_none(),
                "env candidate {i}, seed {seed}: fixed failover failed: {failure:?}"
            );
        }
    }
}

#[test]
fn clean_runs_pass_on_both_failover_builds() {
    let cfg = HyperConfig::default();
    let inputs = cfg.input_script();
    for program in [
        HyperstoreProgram::buggy_failover(cfg.clone()),
        HyperstoreProgram::fixed_failover(cfg.clone()),
    ] {
        for seed in 0..8 {
            let failure = check_failover_run(&program, seed, &inputs, dd_sim::EnvConfig::clean());
            assert!(
                failure.is_none(),
                "{}: seed {seed} failed on a clean run: {failure:?}",
                dd_sim::Program::name(&program)
            );
        }
    }
}

#[test]
fn restart_recovers_index_from_commit_log_and_rejoins() {
    let cfg = HyperConfig::default();
    let env = failover_env_candidates(&cfg)
        .into_iter()
        .find(|e| !e.restarts.is_empty())
        .expect("restart candidate exists");
    let program = HyperstoreProgram::buggy_failover(cfg);
    let mut recovered_seen = false;
    for seed in 0..8 {
        let out = run(&program, seed, env.clone());
        if out.io.group_restarts.get("server1").copied() != Some(1) {
            continue;
        }
        let trace = Trace::from_run(&out);
        if !trace.probes("hyperstore.recovered").is_empty() {
            // The recovered control task announced itself to the master.
            assert!(
                !trace.probes("hyperstore.rejoin").is_empty(),
                "seed {seed}: recovery without a rejoin grant"
            );
            recovered_seen = true;
            break;
        }
    }
    assert!(
        recovered_seen,
        "no seed exercised the crash-recovery path in 8 tries"
    );
}

#[test]
fn unreachable_server_degrades_dump_coverage() {
    // Partition the dumper away from one primary for the whole run. The
    // loaders never notice (their traffic is unaffected), so nobody
    // suspects the server and no promotion happens — the dump must degrade
    // gracefully, answer from the reachable ranges, and report the
    // availability loss instead of hanging.
    let cfg = HyperConfig::default();
    let env = dd_sim::EnvConfig {
        partitions: vec![dd_sim::PartitionEvent {
            start: 0,
            heal: 1 << 40,
            a: "dumper".into(),
            b: "server0".into(),
        }],
        ..dd_sim::EnvConfig::clean()
    };
    let program = HyperstoreProgram::fixed_failover(cfg.clone());
    for seed in 0..4 {
        let out = run(&program, seed, env.clone());
        let f = failover_spec(cfg.n_ranges)
            .check(&out.io)
            .expect("an unreachable primary must cost dump coverage");
        assert_eq!(
            f.failure_id, RANGES_UNAVAILABLE,
            "seed {seed}: expected degraded coverage, got {f:?}"
        );
    }
}

#[test]
fn fault_schedule_runs_are_deterministic() {
    let cfg = HyperConfig::default();
    for env in failover_env_candidates(&cfg) {
        let program = HyperstoreProgram::buggy_failover(cfg.clone());
        let a = run(&program, 7, env.clone());
        let b = run(&program, 7, env.clone());
        assert_eq!(
            a.final_state_hash, b.final_state_hash,
            "same seed + same fault schedule must replay identically"
        );
        assert_eq!(a.io, b.io, "I/O summaries must match");
    }
}
