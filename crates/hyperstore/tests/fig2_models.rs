//! The paper's Fig. 2 experiment as a test: recording overhead and
//! debugging fidelity of value determinism, failure determinism and RCSE on
//! the issue-63 bug.

use dd_core::{
    evaluate_model, DebugModel, FailureModel, InferenceBudget, RcseConfig, ValueModel, Workload,
};
use dd_hyperstore::{HyperConfig, HyperstoreWorkload, RC_MIGRATION_RACE};

fn workload() -> HyperstoreWorkload {
    HyperstoreWorkload::discover(HyperConfig::default(), 200)
        .expect("a failing production seed exists")
}

#[test]
fn value_determinism_df1_high_overhead() {
    let w = workload();
    let (report, recording, replay) =
        evaluate_model(&w, &ValueModel, &InferenceBudget::executions(1));
    assert!(
        recording.original.failure.is_some(),
        "production run must fail: {:?}",
        recording.original.io.counters
    );
    assert!(
        replay.reproduced_failure,
        "value replay must reproduce the failure"
    );
    assert_eq!(report.utility.fidelity.df, 1.0, "report: {report:?}");
    assert!(
        report.utility.fidelity.original_causes == vec![RC_MIGRATION_RACE.to_string()],
        "original cause must be the race: {:?}",
        report.utility.fidelity.original_causes
    );
    assert!(
        report.overhead_factor > 1.5,
        "value logging must be expensive, got {:.2}x",
        report.overhead_factor
    );
}

#[test]
fn rcse_df1_low_overhead() {
    let w = workload();
    let scenario = w.scenario();
    // Fig. 2 used code-based selection only (§4).
    let cfg = RcseConfig {
        use_triggers: false,
        ..RcseConfig::default()
    };
    let seeds: Vec<(u64, u64)> = w
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    let model = DebugModel::prepare(&scenario, &seeds, cfg);
    let (report, _recording, replay) = evaluate_model(&w, &model, &InferenceBudget::executions(1));
    assert!(
        replay.artifact_satisfied,
        "schedule replay must not diverge: {:?}",
        replay.stop
    );
    assert!(
        replay.reproduced_failure,
        "RCSE replay must reproduce the failure"
    );
    assert_eq!(report.utility.fidelity.df, 1.0, "report: {report:?}");
    assert!(
        report.utility.fidelity.same_root_cause,
        "RCSE must reproduce the race itself"
    );
    assert!(
        report.overhead_factor < 2.0,
        "RCSE must be cheap, got {:.2}x",
        report.overhead_factor
    );
}

#[test]
fn failure_determinism_df_one_third_no_overhead() {
    let w = workload();
    let (report, recording, replay) =
        evaluate_model(&w, &FailureModel, &InferenceBudget::executions(120));
    assert_eq!(
        report.overhead_factor, 1.0,
        "ESD records nothing at runtime"
    );
    assert_eq!(recording.log.bytes, 0);
    assert!(
        replay.artifact_satisfied,
        "search must find the failure again"
    );
    assert!(replay.reproduced_failure);
    assert_eq!(report.utility.fidelity.n_causes, 3);
    // The search finds *a* root cause; the paper's point is that it is not
    // guaranteed to be the original one. With fault environments in the
    // space, a crash/OOM explanation is found first.
    assert!(
        !report.utility.fidelity.same_root_cause,
        "expected a different root cause, got {:?}",
        report.utility.fidelity.replay_causes
    );
    assert!((report.utility.fidelity.df - 1.0 / 3.0).abs() < 1e-9);
}

#[test]
fn overhead_ordering_matches_fig2() {
    let w = workload();
    let scenario = w.scenario();
    let budget = InferenceBudget::executions(60);
    let (value_report, _, _) = evaluate_model(&w, &ValueModel, &budget);
    let seeds: Vec<(u64, u64)> = w
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    let rcse = DebugModel::prepare(
        &scenario,
        &seeds,
        RcseConfig {
            use_triggers: false,
            ..RcseConfig::default()
        },
    );
    let (rcse_report, _, _) = evaluate_model(&w, &rcse, &budget);
    let (failure_report, _, _) = evaluate_model(&w, &FailureModel, &budget);

    assert!(
        value_report.overhead_factor > rcse_report.overhead_factor,
        "value {:.2}x must exceed RCSE {:.2}x",
        value_report.overhead_factor,
        rcse_report.overhead_factor
    );
    assert!(
        rcse_report.overhead_factor > failure_report.overhead_factor,
        "RCSE {:.2}x must exceed failure {:.2}x",
        rcse_report.overhead_factor,
        failure_report.overhead_factor
    );
    // And the utility ordering breaks the relaxation curve: RCSE beats both.
    assert!(rcse_report.utility.fidelity.df >= value_report.utility.fidelity.df);
    assert!(rcse_report.utility.fidelity.df > failure_report.utility.fidelity.df);
}

#[test]
fn rcse_artifact_contains_the_root_cause_indirect_method() {
    // The §4 indirect fidelity measurement: the race must be witnessed by
    // the *recorded* events alone (control-plane data + schedule), without
    // re-running anything.
    let w = workload();
    let scenario = w.scenario();
    let cfg = RcseConfig {
        use_triggers: false,
        ..RcseConfig::default()
    };
    let seeds: Vec<(u64, u64)> = w
        .training()
        .iter()
        .map(|s| (s.seed, s.sched_seed))
        .collect();
    let model = DebugModel::prepare(&scenario, &seeds, cfg);
    let recording = dd_core::DeterminismModel::record(&model, &scenario);
    let causes = dd_hyperstore::hyperstore_root_causes();
    let race = causes.iter().find(|c| c.id == RC_MIGRATION_RACE).unwrap();
    assert_eq!(
        dd_core::root_cause_recorded(&recording, race),
        Some(true),
        "the unowned-commit probe is control-plane and must be in the artifact"
    );
    // A value recording is not a debug artifact: the check does not apply.
    let value_rec = dd_core::DeterminismModel::record(&ValueModel, &scenario);
    assert_eq!(dd_core::root_cause_recorded(&value_rec, race), None);
}
