//! Validation of the issue-63 reproduction: the buggy build loses rows
//! under racy schedules, the fixed build never does, and all three §4 root
//! causes are reachable.

use dd_core::{CauseCtx, Workload};
use dd_hyperstore::{
    check_run, env_candidates, hyperstore_root_causes, hyperstore_spec, HyperConfig,
    HyperstoreProgram, HyperstoreWorkload, RC_CLIENT_OOM, RC_MIGRATION_RACE, RC_SERVER_CRASH,
    ROWS_MISSING,
};
use dd_sim::{run_program, RandomPolicy, RunConfig};
use dd_trace::Trace;

fn run(program: &HyperstoreProgram, seed: u64, env: dd_sim::EnvConfig) -> dd_sim::RunOutput {
    let cfg = RunConfig {
        seed,
        max_steps: 500_000,
        inputs: program.cfg.input_script(),
        env,
        ..RunConfig::default()
    };
    run_program(program, cfg, Box::new(RandomPolicy::new(seed)), vec![])
}

#[test]
fn buggy_build_loses_rows_for_some_schedule() {
    let cfg = HyperConfig::default();
    let program = HyperstoreProgram::buggy(cfg.clone());
    let spec = hyperstore_spec();
    let mut failing = 0;
    let mut passing = 0;
    for seed in 0..24 {
        let out = run(&program, seed, dd_sim::EnvConfig::clean());
        match spec.check(&out.io) {
            Some(f) => {
                assert_eq!(f.failure_id, ROWS_MISSING, "unexpected failure: {f:?}");
                failing += 1;
            }
            None => passing += 1,
        }
    }
    assert!(failing > 0, "no racy schedule lost rows in 24 seeds");
    assert!(
        passing > 0,
        "every schedule failed — bug should be schedule-dependent"
    );
}

#[test]
fn fixed_build_never_loses_rows() {
    let cfg = HyperConfig::default();
    let inputs = cfg.input_script();
    let program = HyperstoreProgram::fixed(cfg);
    for seed in 0..24 {
        let failure = check_run(&program, seed, &inputs);
        assert!(
            failure.is_none(),
            "seed {seed}: fixed build failed: {failure:?}"
        );
    }
}

#[test]
fn race_cause_is_active_in_failing_runs() {
    let w = HyperstoreWorkload::discover(HyperConfig::default(), 200)
        .expect("a failing production seed exists");
    let scenario = w.scenario();
    let out = scenario.execute(&scenario.original_spec(), vec![]);
    let failure = (scenario.failure_of)(&out.io).expect("production run fails");
    assert_eq!(failure.failure_id, ROWS_MISSING);

    let trace = Trace::from_run(&out);
    let ctx = CauseCtx {
        trace: &trace,
        registry: &out.registry,
        io: &out.io,
    };
    let causes = hyperstore_root_causes();
    let active: Vec<&str> = causes
        .iter()
        .filter(|c| c.active_in(&ctx))
        .map(|c| c.id)
        .collect();
    assert_eq!(
        active,
        vec![RC_MIGRATION_RACE],
        "only the race explains a clean-environment failure"
    );
}

#[test]
fn server_crash_env_loses_rows_with_crash_cause() {
    let cfg = HyperConfig::default();
    let program = HyperstoreProgram::buggy(cfg.clone());
    let spec = hyperstore_spec();
    let causes = hyperstore_root_causes();
    let crash_env = env_candidates(&cfg)
        .into_iter()
        .find(|e| !e.crashes.is_empty())
        .expect("crash candidate exists");
    let mut found = false;
    for seed in 0..8 {
        let out = run(&program, seed, crash_env.clone());
        if let Some(f) = spec.check(&out.io) {
            if f.failure_id != ROWS_MISSING {
                continue;
            }
            let trace = Trace::from_run(&out);
            let ctx = CauseCtx {
                trace: &trace,
                registry: &out.registry,
                io: &out.io,
            };
            let crash = causes.iter().find(|c| c.id == RC_SERVER_CRASH).unwrap();
            if crash.active_in(&ctx) {
                found = true;
                break;
            }
        }
    }
    assert!(
        found,
        "server crash should reproduce the missing-rows failure"
    );
}

#[test]
fn dumper_oom_env_loses_rows_with_oom_cause() {
    let cfg = HyperConfig::default();
    let program = HyperstoreProgram::buggy(cfg.clone());
    let spec = hyperstore_spec();
    let causes = hyperstore_root_causes();
    let oom_env = env_candidates(&cfg)
        .into_iter()
        .find(|e| !e.mem_budget.is_empty())
        .expect("oom candidate exists");
    let mut found = false;
    for seed in 0..8 {
        let out = run(&program, seed, oom_env.clone());
        if let Some(f) = spec.check(&out.io) {
            if f.failure_id != ROWS_MISSING {
                continue;
            }
            let trace = Trace::from_run(&out);
            let ctx = CauseCtx {
                trace: &trace,
                registry: &out.registry,
                io: &out.io,
            };
            let oom = causes.iter().find(|c| c.id == RC_CLIENT_OOM).unwrap();
            if oom.active_in(&ctx) {
                found = true;
                break;
            }
        }
    }
    assert!(found, "dumper OOM should truncate the dump");
}

#[test]
fn all_rows_arrive_when_there_is_no_migration() {
    // Without migrations the buggy build is correct: the race needs a
    // migration to lose anything.
    let cfg = HyperConfig {
        migrations: vec![],
        ..HyperConfig::default()
    };
    let inputs = cfg.input_script();
    let program = HyperstoreProgram::buggy(cfg);
    for seed in 0..8 {
        let failure = check_run(&program, seed, &inputs);
        assert!(
            failure.is_none(),
            "seed {seed}: lost rows without migration: {failure:?}"
        );
    }
}

#[test]
fn workload_training_runs_pass() {
    let w = HyperstoreWorkload::discover(HyperConfig::default(), 200).expect("discovery succeeds");
    let spec = hyperstore_spec();
    assert!(!w.training().is_empty(), "training setups found");
    for setup in w.training() {
        let s = w.scenario_for(&setup);
        let out = s.execute(&s.original_spec(), vec![]);
        assert!(spec.check(&out.io).is_none(), "training run failed");
    }
}
