//! Root-cause-driven selectivity (RCSE) and the debug-determinism model.
//!
//! RCSE approximates debug determinism without knowing the root cause a
//! priori (§3.1): record with *high* fidelity where root causes are likely —
//! the control plane (code-based selection), invariant-violating executions
//! (data-based selection), and trigger-flagged segments (combined selection)
//! — and with *low* fidelity everywhere else.
//!
//! The [`RcseRecorder`] always records the thread schedule and control-plane
//! data (what the paper's §4 prototype recorded) plus environment events;
//! when a trigger fires it dials up to full recording, and dials back down
//! after a configurable quiet window. [`DebugModel`] packages training
//! (offline plane classification + invariant inference), recording, and
//! schedule-replay into a [`DeterminismModel`].

use dd_classify::{Plane, PlaneMap, ProfileReport, RateClassifier};
use dd_detect::{InvariantSet, TriggerDetector};
use dd_replay::{
    Artifact, DeterminismModel, InferenceBudget, InferenceStats, ModelKind, OriginalRun,
    PolicyChoice, Recording, ReplayResult, RunSpec, Scenario, SearchStrategy,
};
use dd_sim::{
    observer_boilerplate, ChanClass, CrashEvent, EnvConfig, Event, EventMeta, Observer, Registry,
    StopReason,
};
use dd_trace::{
    ChargeAcc, CostModel, EventLog, InputEntry, InputLog, LogStats, ScheduleLog, Trace, TraceEvent,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Recording fidelity level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fidelity {
    /// Schedule + control-plane data only.
    Low,
    /// Everything (value-determinism grade).
    High,
}

/// RCSE configuration knobs (the ablation surface).
#[derive(Debug, Clone)]
pub struct RcseConfig {
    /// Data-rate threshold for plane classification (bytes / kilotick).
    pub classifier_threshold: f64,
    /// Ticks without any trigger after which fidelity dials back down.
    pub quiet_window: u64,
    /// Whether runtime triggers (lockset, invariants, crashes) are armed.
    pub use_triggers: bool,
    /// Whether invariants are learned from training runs and monitored.
    pub train_invariants: bool,
    /// Always-on per-access cost of the lockset trigger detector.
    pub lockset_cost: u64,
    /// Cost of a control-plane record at low fidelity.
    pub control_cost: CostModel,
    /// Cost of a record at high fidelity.
    pub full_cost: CostModel,
    /// Cost of a schedule-decision record.
    pub schedule_cost: CostModel,
}

impl Default for RcseConfig {
    fn default() -> Self {
        RcseConfig {
            classifier_threshold: RateClassifier::default().threshold_bytes_per_kilotick,
            quiet_window: 2_000,
            use_triggers: true,
            train_invariants: false,
            lockset_cost: 0,
            control_cost: dd_replay::costs::CONTROL,
            full_cost: dd_replay::costs::VALUE,
            schedule_cost: dd_replay::costs::SCHEDULE,
        }
    }
}

/// A [`PlaneMap`] resolved against a registry for O(1) online lookups by id.
#[derive(Debug, Clone, Default)]
pub struct ResolvedPlaneMap {
    sites: BTreeMap<String, Plane>,
    chan_planes: Vec<Plane>,
    chan_is_network: Vec<bool>,
}

impl ResolvedPlaneMap {
    /// Resolves channel names to ids using the (training-run) registry.
    /// Object creation order is deterministic, so ids are stable across runs
    /// of the same program.
    pub fn new(map: &PlaneMap, registry: &Registry) -> Self {
        let mut sites = map.sites.clone();
        for (name, plane) in &map.overrides {
            sites.insert(name.clone(), *plane);
        }
        ResolvedPlaneMap {
            sites,
            chan_planes: registry
                .chans
                .iter()
                .map(|c| map.chan_plane(&c.name))
                .collect(),
            chan_is_network: registry
                .chans
                .iter()
                .map(|c| c.class == ChanClass::Network)
                .collect(),
        }
    }

    fn site_plane(&self, site: &str) -> Plane {
        self.sites.get(site).copied().unwrap_or(Plane::Control)
    }

    /// Classifies an event (control = record at low fidelity).
    pub fn event_plane(&self, event: &Event) -> Plane {
        match event {
            Event::Send { chan, .. }
            | Event::Recv { chan, .. }
            | Event::SendDropped { chan, .. } => self
                .chan_planes
                .get(chan.index())
                .copied()
                .unwrap_or(Plane::Control),
            _ => match event.site() {
                Some(site) => self.site_plane(site),
                None => Plane::Control,
            },
        }
    }

    fn is_network(&self, chan: dd_sim::ChanId) -> bool {
        self.chan_is_network
            .get(chan.index())
            .copied()
            .unwrap_or(false)
    }
}

/// The RCSE production recorder.
pub struct RcseRecorder {
    resolved: ResolvedPlaneMap,
    triggers: Vec<Box<dyn TriggerDetector>>,
    quiet_window: u64,
    control_cost: CostModel,
    full_cost: CostModel,
    schedule_cost: CostModel,

    level: Fidelity,
    last_trigger_time: u64,

    schedule: ScheduleLog,
    control: EventLog,
    inputs: Vec<(dd_sim::PortId, u64, dd_sim::Value)>,
    dropped_sends: BTreeSet<u64>,
    net_send_counter: u64,
    crashes_seen: Vec<CrashEvent>,

    stats: LogStats,
    acc: ChargeAcc,
    /// Times fidelity was dialed up.
    pub dial_ups: u64,
    /// Times fidelity was dialed back down.
    pub dial_downs: u64,
    /// Events recorded while at high fidelity.
    pub high_records: u64,
}

impl RcseRecorder {
    /// Creates a recorder from a resolved plane map, trigger suite and
    /// configuration.
    pub fn new(
        resolved: ResolvedPlaneMap,
        triggers: Vec<Box<dyn TriggerDetector>>,
        cfg: &RcseConfig,
    ) -> Self {
        RcseRecorder {
            resolved,
            triggers,
            quiet_window: cfg.quiet_window,
            control_cost: cfg.control_cost,
            full_cost: cfg.full_cost,
            schedule_cost: cfg.schedule_cost,
            level: Fidelity::Low,
            last_trigger_time: 0,
            schedule: ScheduleLog::default(),
            control: EventLog::default(),
            inputs: Vec::new(),
            dropped_sends: BTreeSet::new(),
            net_send_counter: 0,
            crashes_seen: Vec::new(),
            stats: LogStats::default(),
            acc: ChargeAcc::default(),
            dial_ups: 0,
            dial_downs: 0,
            high_records: 0,
        }
    }

    /// Recording statistics.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// Current fidelity level.
    pub fn level(&self) -> Fidelity {
        self.level
    }

    /// Assembles the debug-determinism artifact. `base_env` supplies the
    /// static deployment configuration (memory budgets); observed
    /// environment nondeterminism (crashes, drops) comes from the recording.
    pub fn into_artifact(self, registry: &Registry, base_env: &EnvConfig) -> Artifact {
        let env = EnvConfig {
            crashes: self.crashes_seen,
            drop_per_mille: 0,
            drop_script: Some(self.dropped_sends),
            mem_budget: base_env.mem_budget.clone(),
            partitions: base_env.partitions.clone(),
            restarts: base_env.restarts.clone(),
        };
        Artifact::Debug {
            schedule: self.schedule,
            control: self.control,
            inputs: InputLog {
                entries: self
                    .inputs
                    .iter()
                    .map(|(port, time, value)| InputEntry {
                        port: registry.ports[port.index()].name.clone(),
                        time: *time,
                        value: value.clone(),
                    })
                    .collect(),
            },
            env,
            // The kernel RNG seed is deliberately NOT recorded: data-plane
            // payload contents are re-synthesised at replay time.
            seed: 0,
        }
    }

    fn record_event(&mut self, meta: &EventMeta, event: &Event, cost: CostModel) -> u64 {
        let bytes = dd_trace::log_size(event);
        self.stats.add(bytes);
        self.control.events.push(TraceEvent {
            meta: *meta,
            event: event.clone(),
        });
        if self.level == Fidelity::High {
            self.high_records += 1;
        }
        self.acc.add(cost.cost_milli(bytes))
    }
}

impl Observer for RcseRecorder {
    fn name(&self) -> &'static str {
        "rcse-recorder"
    }

    fn on_event(&mut self, meta: &EventMeta, event: &Event) -> u64 {
        let mut cost = 0;

        // Always-on triggers (their cost is part of RCSE's overhead).
        let mut fired = false;
        for t in &mut self.triggers {
            fired |= t.observe(meta, event);
            cost += t.cost(event);
        }
        if fired {
            if self.level == Fidelity::Low {
                self.level = Fidelity::High;
                self.dial_ups += 1;
            }
            self.last_trigger_time = meta.time;
        } else if self.level == Fidelity::High
            && meta.time.saturating_sub(self.last_trigger_time) > self.quiet_window
        {
            self.level = Fidelity::Low;
            self.dial_downs += 1;
        }

        match event {
            // The thread schedule is always recorded (§4: "the data on
            // control-plane channels and the thread schedule").
            Event::Decision { .. } => {
                if let Event::Decision { kind, chosen, .. } = event {
                    self.schedule.decisions.push(dd_sim::RecordedDecision {
                        kind: *kind,
                        chosen: *chosen,
                    });
                }
                let bytes = dd_trace::log_size(event);
                self.stats.add(bytes);
                cost += self.acc.add(self.schedule_cost.cost_milli(bytes));
            }
            // External inputs are control-plane requests in our workloads.
            Event::InputArrival { port, value } => {
                self.inputs.push((*port, meta.time, value.clone()));
                let bytes = dd_trace::log_size(event);
                self.stats.add(bytes);
                cost += self.acc.add(self.control_cost.cost_milli(bytes));
            }
            // Environment nondeterminism: tiny, always recorded.
            Event::SendDropped { chan, .. } if self.resolved.is_network(*chan) => {
                self.dropped_sends.insert(self.net_send_counter);
                self.net_send_counter += 1;
                cost += self.record_event(meta, event, self.control_cost);
            }
            Event::Send { chan, .. } if self.resolved.is_network(*chan) => {
                self.net_send_counter += 1;
                if self.level == Fidelity::High
                    || self.resolved.event_plane(event) == Plane::Control
                {
                    let c = if self.level == Fidelity::High {
                        self.full_cost
                    } else {
                        self.control_cost
                    };
                    cost += self.record_event(meta, event, c);
                }
            }
            Event::GroupKilled { group, .. } => {
                self.crashes_seen.push(CrashEvent {
                    time: meta.time,
                    group: group.clone(),
                });
                cost += self.record_event(meta, event, self.control_cost);
            }
            _ => {
                let record = self.level == Fidelity::High
                    || self.resolved.event_plane(event) == Plane::Control;
                if record {
                    let c = if self.level == Fidelity::High {
                        self.full_cost
                    } else {
                        self.control_cost
                    };
                    cost += self.record_event(meta, event, c);
                }
            }
        }
        cost
    }

    observer_boilerplate!();
}

/// The product of RCSE's offline training phase.
#[derive(Debug, Clone)]
pub struct Training {
    /// The classified plane map.
    pub plane_map: PlaneMap,
    /// The training-run registry (for id resolution).
    pub registry: Registry,
    /// Learned invariants, if enabled.
    pub invariants: Option<InvariantSet>,
    /// Profiling data the classification came from.
    pub profile: ProfileReport,
}

/// Runs the offline training phase: profile passing runs, classify planes,
/// optionally infer invariants.
///
/// Training happens before release (on a test cluster, per the paper's §3.1)
/// and therefore contributes nothing to production recording overhead.
pub fn train(scenario: &Scenario, setups: &[(u64, u64)], cfg: &RcseConfig) -> Training {
    let mut traces = Vec::new();
    let mut registry = Registry::default();
    for &(seed, sched_seed) in setups {
        let spec = RunSpec {
            seed,
            policy: PolicyChoice::Random(sched_seed),
            inputs: scenario.inputs.clone(),
            env: scenario.env.clone(),
        };
        let out = scenario.execute(&spec, vec![]);
        registry = out.registry.clone();
        traces.push(Trace::from_run(&out));
    }
    let profile = ProfileReport::merge(
        &traces
            .iter()
            .map(|t| ProfileReport::from_trace(t, &registry))
            .collect::<Vec<_>>(),
    );
    let plane_map = RateClassifier::with_threshold(cfg.classifier_threshold).classify(&profile);
    let invariants = cfg.train_invariants.then(|| InvariantSet::infer(&traces));
    Training {
        plane_map,
        registry,
        invariants,
        profile,
    }
}

/// The §4 *indirect* fidelity check: is the root cause contained in what
/// RCSE recorded?
///
/// The paper's method for RCSE ("we determined whether the observed failure
/// and its root cause were contained in the control-plane code… If the root
/// cause was recorded, we deemed the failure and root cause to be
/// reproducible"). We rebuild a trace from the artifact's recorded events
/// alone and evaluate the root-cause predicate on it: if the predicate
/// fires using only recorded evidence, the cause was captured.
///
/// Returns `None` if the recording is not a debug-determinism artifact.
pub fn root_cause_recorded(
    recording: &Recording,
    cause: &crate::rootcause::RootCause,
) -> Option<bool> {
    let Artifact::Debug { control, .. } = &recording.artifact else {
        return None;
    };
    let recorded_trace = Trace::from_events(
        control
            .events
            .iter()
            .map(|e| (e.meta, e.event.clone()))
            .collect(),
    );
    let ctx = crate::rootcause::CauseCtx {
        trace: &recorded_trace,
        registry: &recording.original.registry,
        io: &recording.original.io,
    };
    Some(cause.active_in(&ctx))
}

/// The debug-determinism model: RCSE recording plus schedule-driven replay.
pub struct DebugModel {
    cfg: RcseConfig,
    training: Training,
}

impl DebugModel {
    /// Builds the model by running the offline training phase on the given
    /// `(seed, sched_seed)` pairs.
    pub fn prepare(scenario: &Scenario, training_seeds: &[(u64, u64)], cfg: RcseConfig) -> Self {
        let training = train(scenario, training_seeds, &cfg);
        DebugModel { cfg, training }
    }

    /// Builds the model from an existing training result.
    pub fn with_training(training: Training, cfg: RcseConfig) -> Self {
        DebugModel { cfg, training }
    }

    /// The training result (plane map, invariants, profile).
    pub fn training(&self) -> &Training {
        &self.training
    }

    fn make_recorder(&self) -> RcseRecorder {
        let resolved = ResolvedPlaneMap::new(&self.training.plane_map, &self.training.registry);
        let triggers = if self.cfg.use_triggers {
            dd_detect::default_triggers(self.training.invariants.clone(), self.cfg.lockset_cost)
        } else {
            Vec::new()
        };
        RcseRecorder::new(resolved, triggers, &self.cfg)
    }
}

impl DeterminismModel for DebugModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Debug
    }

    fn record(&self, scenario: &Scenario) -> Recording {
        let recorder = self.make_recorder();
        let mut out = scenario.execute(&scenario.original_spec(), vec![Box::new(recorder)]);
        let failure = (scenario.failure_of)(&out.io);
        let registry = out.registry.clone();
        let recorder = out
            .observer_mut::<RcseRecorder>()
            .expect("rcse recorder attached");
        let log = recorder.stats();
        let recorder = std::mem::replace(
            recorder,
            RcseRecorder::new(ResolvedPlaneMap::default(), Vec::new(), &self.cfg),
        );
        let artifact = recorder.into_artifact(&registry, &scenario.env);
        Recording {
            model: ModelKind::Debug,
            artifact,
            overhead_factor: out.stats.overhead_factor(),
            log,
            original: OriginalRun {
                io: out.io.clone(),
                trace: Trace::from_run(&out),
                registry,
                stop: out.stop.clone(),
                failure,
                duration: out.stats.exec_ticks,
            },
        }
    }

    fn replay(
        &self,
        scenario: &Scenario,
        recording: &Recording,
        budget: &InferenceBudget,
    ) -> ReplayResult {
        let Artifact::Debug {
            schedule,
            inputs,
            env,
            ..
        } = &recording.artifact
        else {
            panic!("debug replay requires a debug artifact");
        };
        let spec = RunSpec {
            // Deliberately a different seed: unrecorded data-plane payloads
            // are re-synthesised; control-plane behaviour comes from the
            // schedule, inputs and environment events.
            seed: scenario.seed ^ 0x5C5E_5C5E,
            policy: PolicyChoice::Replay(schedule.clone()),
            inputs: inputs.to_script(),
            env: env.clone(),
        };
        let mut out = scenario.execute(&spec, vec![]);
        let satisfied = !matches!(out.stop, StopReason::ReplayDivergence { .. });
        let mut inference = InferenceStats::default();
        if !satisfied {
            // The recorded schedule could not be re-applied (e.g. the
            // selective artifact under-constrained a data-plane path).
            // Fall back to the budget's search strategy — the same
            // machinery the ultra-relaxed models use — hunting for an
            // execution over the recorded inputs/environment that
            // reproduces the recorded failure. The artifact stays marked
            // unsatisfied; only the replayed behaviour improves.
            let script = inputs.to_script();
            let want = recording.original.failure.clone();
            // The artifact pins the environment (crashes, drop script), so
            // the search may only vary schedules — not wander into
            // environments the recording rules out.
            let mut pinned = scenario.clone();
            pinned.space.envs = vec![env.clone()];
            // Debug determinism takes the checkpointed, parallel path on
            // its fallback: when the budget selects a systematic strategy,
            // the tree walk forks from kernel snapshots instead of
            // re-executing every candidate's shared prefix from the first
            // instruction, and the fork executions are spread over a
            // worker pool. Neither changes what the search returns — the
            // parallel walk is byte-equivalent to the sequential one (see
            // `dd_replay::parallel`) — only how fast the fallback
            // reconnects the relaxed recording to the failure.
            // (Non-systematic strategies ignore both knobs.)
            let mut budget = *budget;
            if budget.checkpoint_interval == 0 {
                budget.checkpoint_interval = InferenceBudget::DEFAULT_CHECKPOINT_INTERVAL;
            }
            if let SearchStrategy::Dpor { max_depth } = budget.strategy {
                budget.strategy = SearchStrategy::DporParallel {
                    max_depth,
                    workers: 0,
                };
                if budget.workers <= 1 {
                    // Host-sized: resolves to the sequential path on
                    // single-core machines, a real pool elsewhere.
                    budget.workers = InferenceBudget::default_worker_pool();
                }
            }
            let result = dd_replay::search(&pinned, &budget, Some(&script), |candidate| {
                match ((scenario.failure_of)(&candidate.io), &want) {
                    (Some(f), Some(w)) => f.failure_id == w.failure_id,
                    (None, None) => true,
                    _ => false,
                }
            });
            inference = result.stats;
            if let Some(found) = result.run {
                out = found;
            }
        }
        let failure = (scenario.failure_of)(&out.io);
        let reproduced_failure = match (&recording.original.failure, &failure) {
            (Some(a), Some(b)) => a.failure_id == b.failure_id,
            (None, None) => true,
            _ => false,
        };
        ReplayResult {
            trace: Trace::from_run(&out),
            registry: out.registry.clone(),
            stop: out.stop.clone(),
            replay_ticks: out.stats.exec_ticks,
            io: out.io,
            failure,
            reproduced_failure,
            artifact_satisfied: satisfied,
            inference,
            value_divergences: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolved_map_defaults_to_control() {
        let m = ResolvedPlaneMap::default();
        let e = Event::Yield {
            task: dd_sim::TaskId(0),
            site: "unknown::site".into(),
        };
        assert_eq!(m.event_plane(&e), Plane::Control);
    }

    #[test]
    fn recorder_dials_up_on_trigger_and_down_after_quiet() {
        struct AlwaysOnStep5;
        impl TriggerDetector for AlwaysOnStep5 {
            fn name(&self) -> &'static str {
                "test"
            }
            fn observe(&mut self, meta: &EventMeta, _e: &Event) -> bool {
                meta.time == 50
            }
            fn cost(&self, _e: &Event) -> u64 {
                0
            }
        }
        let cfg = RcseConfig {
            quiet_window: 100,
            ..RcseConfig::default()
        };
        let mut rec = RcseRecorder::new(
            ResolvedPlaneMap::default(),
            vec![Box::new(AlwaysOnStep5)],
            &cfg,
        );
        let yield_ev = |t: u64| {
            (
                EventMeta { step: t, time: t },
                Event::Yield {
                    task: dd_sim::TaskId(0),
                    site: "x".into(),
                },
            )
        };
        let (m, e) = yield_ev(10);
        rec.on_event(&m, &e);
        assert_eq!(rec.level(), Fidelity::Low);
        let (m, e) = yield_ev(50);
        rec.on_event(&m, &e);
        assert_eq!(rec.level(), Fidelity::High);
        assert_eq!(rec.dial_ups, 1);
        let (m, e) = yield_ev(100);
        rec.on_event(&m, &e);
        assert_eq!(rec.level(), Fidelity::High, "still inside quiet window");
        let (m, e) = yield_ev(200);
        rec.on_event(&m, &e);
        assert_eq!(rec.level(), Fidelity::Low, "quiet window elapsed");
        assert_eq!(rec.dial_downs, 1);
    }
}
