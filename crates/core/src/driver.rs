//! The public driver facade: one [`Session`] behind the `dd` CLI, the
//! repro binaries and the examples.
//!
//! A session owns everything one debugging engagement needs — the workload,
//! the recording fidelity ([`RcseConfig`]), the inference budget and search
//! strategy, the recording checkpoint plan, and the worker pool — and
//! exposes the four pipeline verbs over them:
//!
//! - [`record`](Session::record): run the production incident with
//!   per-decision state digests and produce a [`JsonlTrace`] artifact;
//! - [`replay`](Session::replay): re-execute a trace under the strict
//!   schedule policy, comparing digests at every decision and stopping at
//!   the first divergence;
//! - [`explore`](Session::explore): hand the recorded run's configuration
//!   to the systematic (DPOR / parallel) search and look for other
//!   executions of the same failure;
//! - the experiment verbs ([`evaluate`](Session::evaluate),
//!   [`debug_model`](Session::debug_model), [`train`](Session::train))
//!   the figures are built from.
//!
//! Before the facade, every binary assembled scenarios, training seeds and
//! budgets by hand; the session is that assembly, written once.

use crate::experiment::{enumerate_root_causes, evaluate_model_on, ModelReport};
use crate::rcse::{train, DebugModel, RcseConfig, Training};
use crate::workload::{RunSetup, Workload};
use dd_replay::{
    replay_trace, replay_trace_from, search_with_warm, Artifact, DeterminismModel,
    DivergenceReport, FailureModel, InferenceBudget, ModelKind, MsgOrderModel, OutputHeavyModel,
    OutputLiteModel, PerfectModel, RaceCompleteModel, Recording, ReplayResult, Scenario,
    SearchResult, SearchStrategy, ValueModel, RECORDING_CHECKPOINTS,
};
use dd_sim::{CheckpointPlan, IoSummary, SnapshotSink, WorldSnapshot};
use dd_trace::{JsonlError, JsonlTrace, TraceHeader};
use std::sync::Arc;

/// One debugging engagement: a workload plus every knob the pipeline needs.
///
/// Built builder-style — construct with [`Session::new`] and chain `with_*`
/// methods:
///
/// ```no_run
/// # fn workload() -> std::sync::Arc<dyn dd_core::Workload> { unimplemented!() }
/// use dd_core::driver::Session;
/// use dd_core::InferenceBudget;
///
/// let session = Session::new(workload())
///     .with_budget(InferenceBudget::executions(64))
///     .with_workers(4);
/// let trace = session.record().unwrap();
/// let report = session.replay(&trace);
/// assert!(report.identical());
/// ```
pub struct Session {
    workload: Arc<dyn Workload>,
    budget: InferenceBudget,
    recording: RcseConfig,
    checkpoints: CheckpointPlan,
    training_cap: Option<usize>,
    production: Option<RunSetup>,
}

impl Session {
    /// A session over `workload` with the default budget, recording
    /// fidelity and checkpoint cadence.
    pub fn new(workload: Arc<dyn Workload>) -> Self {
        Session {
            workload,
            budget: InferenceBudget::default(),
            recording: RcseConfig::default(),
            checkpoints: RECORDING_CHECKPOINTS,
            training_cap: None,
            production: None,
        }
    }

    /// Replaces the inference budget (bounds + search strategy).
    pub fn with_budget(mut self, budget: InferenceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Shorthand: bounds inference to `n` candidate executions.
    pub fn with_executions(mut self, n: u64) -> Self {
        self.budget.max_executions = n;
        self
    }

    /// Replaces the budget's search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.budget.strategy = strategy;
        self
    }

    /// Sets the worker pool parallel systematic strategies may use.
    pub fn with_workers(mut self, workers: u32) -> Self {
        self.budget.workers = workers;
        self
    }

    /// Replaces the recording-fidelity configuration (RCSE knobs: triggers,
    /// quiet window, invariant training, …).
    pub fn with_recording(mut self, cfg: RcseConfig) -> Self {
        self.recording = cfg;
        self
    }

    /// Replaces the checkpoint cadence recording runs use.
    pub fn with_checkpoint_plan(mut self, plan: CheckpointPlan) -> Self {
        self.checkpoints = plan;
        self
    }

    /// Caps how many of the workload's training configurations are used
    /// (default: all of them).
    pub fn with_training_runs(mut self, runs: usize) -> Self {
        self.training_cap = Some(runs);
        self
    }

    /// Overrides the production incident (seeds, inputs, environment, step
    /// bound). Every verb — record, replay scenario assembly, training,
    /// evaluation — uses the override from then on.
    pub fn with_production(mut self, setup: RunSetup) -> Self {
        self.production = Some(setup);
        self
    }

    // ---- accessors -------------------------------------------------------

    /// The workload under debugging.
    pub fn workload(&self) -> &dyn Workload {
        self.workload.as_ref()
    }

    /// The session's inference budget.
    pub fn budget(&self) -> &InferenceBudget {
        &self.budget
    }

    /// The production incident this session debugs (the workload's, unless
    /// overridden with [`with_production`](Session::with_production)).
    pub fn production(&self) -> RunSetup {
        self.production
            .clone()
            .unwrap_or_else(|| self.workload.production())
    }

    /// The replay scenario for the production incident.
    pub fn scenario(&self) -> Scenario {
        self.workload.scenario_for(&self.production())
    }

    /// The training seed pairs (kernel seed, schedule seed), honoring the
    /// [`with_training_runs`](Session::with_training_runs) cap.
    pub fn training_seeds(&self) -> Vec<(u64, u64)> {
        let seeds = self.workload.training();
        let cap = self.training_cap.unwrap_or(seeds.len());
        seeds
            .iter()
            .take(cap)
            .map(|s| (s.seed, s.sched_seed))
            .collect()
    }

    // ---- production discovery -------------------------------------------

    /// Scans schedule seeds `0..limit` of the production setup for one
    /// whose run violates the I/O specification, and makes it the session's
    /// production incident. Returns the failing seed, or `None` (session
    /// unchanged) if none exists within the limit.
    pub fn discover_failing_schedule(mut self, limit: u64) -> (Self, Option<u64>) {
        let base = self.production();
        for sched_seed in 0..limit {
            let setup = RunSetup {
                sched_seed,
                ..base.clone()
            };
            let scenario = self.workload.scenario_for(&setup);
            let out = scenario.execute(&scenario.original_spec(), vec![]);
            if (scenario.failure_of)(&out.io).is_some() {
                self.production = Some(setup);
                return (self, Some(sched_seed));
            }
        }
        (self, None)
    }

    // ---- training / experiment verbs ------------------------------------

    /// Runs offline training (plane classification, site profiling and —
    /// if configured — invariant inference) on the workload's passing
    /// configurations.
    pub fn train(&self) -> Training {
        train(&self.scenario(), &self.training_seeds(), &self.recording)
    }

    /// Builds the RCSE debug-determinism model: trains on the workload's
    /// passing runs under this session's recording fidelity.
    pub fn debug_model(&self) -> DebugModel {
        DebugModel::prepare(
            &self.scenario(),
            &self.training_seeds(),
            self.recording.clone(),
        )
    }

    /// Evaluates one determinism model on the production incident:
    /// record, replay from the artifact, assess DF/DE/DU.
    pub fn evaluate(&self, model: &dyn DeterminismModel) -> (ModelReport, Recording, ReplayResult) {
        evaluate_model_on(&self.scenario(), self.workload(), model, &self.budget)
    }

    /// Which declared root causes the explorer can verify reachable within
    /// this session's budget (the §3.2 empirical `n`).
    pub fn reachable_causes(&self) -> Vec<(&'static str, bool)> {
        enumerate_root_causes(self.workload(), &self.budget)
    }

    // ---- determinism-model verbs (`dd record --model=<kind>`) ------------

    /// Builds the determinism model a [`ModelKind`] names. The baselines are
    /// stateless; the RCSE debug model is trained on this session's passing
    /// configurations first.
    pub fn model(&self, kind: ModelKind) -> Box<dyn DeterminismModel> {
        match kind {
            ModelKind::Perfect => Box::new(PerfectModel),
            ModelKind::Value => Box::new(ValueModel),
            ModelKind::OutputLite => Box::new(OutputLiteModel),
            ModelKind::OutputHeavy => Box::new(OutputHeavyModel),
            ModelKind::Failure => Box::new(FailureModel),
            ModelKind::MsgOrder => Box::new(MsgOrderModel),
            ModelKind::RaceComplete => Box::new(RaceCompleteModel),
            ModelKind::Debug => Box::new(self.debug_model()),
        }
    }

    /// Records the production incident under the named determinism model,
    /// producing its [`Recording`] (artifact + log volume + ground truth).
    pub fn record_model(&self, kind: ModelKind) -> Recording {
        self.model(kind).record(&self.scenario())
    }

    /// Replays a model recording against the production incident under this
    /// session's inference budget.
    pub fn replay_model(&self, recording: &Recording) -> ReplayResult {
        self.model(recording.model)
            .replay(&self.scenario(), recording, &self.budget)
    }

    /// Replays a persisted [`Artifact`] (e.g. one `dd record --model` wrote
    /// to disk). Model recording is deterministic, so the ground truth the
    /// fidelity verdicts compare against is regenerated by re-recording;
    /// the *loaded* artifact is then substituted in and replayed.
    pub fn replay_artifact(
        &self,
        kind: ModelKind,
        artifact: Artifact,
    ) -> (Recording, ReplayResult) {
        let mut recording = self.record_model(kind);
        recording.artifact = artifact;
        let result = self.replay_model(&recording);
        (recording, result)
    }

    // ---- the trace pipeline: record / replay / explore -------------------

    /// Records the production incident into a [`JsonlTrace`] artifact: the
    /// run executes under the original (random) policy with per-decision
    /// state digests and the session's checkpoint plan; neither perturbs
    /// the run, so the trace is byte-identical across invocations.
    pub fn record(&self) -> Result<JsonlTrace, JsonlError> {
        let p = self.production();
        let scenario = self.workload.scenario_for(&p);
        let out = scenario.execute_recorded(&scenario.original_spec(), self.checkpoints, vec![]);
        let header = TraceHeader::new(
            self.workload.name(),
            p.seed,
            p.sched_seed,
            p.max_steps,
            p.inputs,
            p.env,
        );
        JsonlTrace::from_run(header, &out)
    }

    /// [`Session::record`] with snapshot retention redirected to a
    /// persistent sink — the `dd record --spill` configuration. The run is
    /// bit-identical to [`Session::record`] (spilling does not perturb
    /// execution), so the trace artifact hashes the same; checkpoints the
    /// session's plan fires are offered to `sink` instead of accumulating
    /// in memory.
    ///
    /// Also returns the sink's write errors (one message per declined
    /// checkpoint): the run itself never fails because a spill did — the
    /// caller decides whether an incomplete store is acceptable.
    pub fn record_spilled(
        &self,
        sink: Box<dyn SnapshotSink>,
    ) -> Result<(JsonlTrace, Vec<String>), JsonlError> {
        let p = self.production();
        let scenario = self.workload.scenario_for(&p);
        let mut out =
            scenario.execute_spilled(&scenario.original_spec(), self.checkpoints, sink, vec![]);
        let spill_errors = std::mem::take(&mut out.spill_errors);
        let header = TraceHeader::new(
            self.workload.name(),
            p.seed,
            p.sched_seed,
            p.max_steps,
            p.inputs,
            p.env,
        );
        JsonlTrace::from_run(header, &out).map(|t| (t, spill_errors))
    }

    /// The replay scenario for a trace's recorded configuration (the
    /// header's seeds/inputs/environment, this session's workload).
    pub fn scenario_for_trace(&self, header: &TraceHeader) -> Scenario {
        self.workload.scenario_for(&RunSetup {
            seed: header.seed,
            sched_seed: header.sched_seed,
            inputs: header.inputs.clone(),
            env: header.env.clone(),
            max_steps: header.max_steps,
        })
    }

    /// Re-executes a recorded trace under the strict schedule policy with
    /// state hashing, comparing digests at every decision point, and
    /// reports the first divergence (see [`dd_replay::divergence`]).
    pub fn replay(&self, trace: &JsonlTrace) -> DivergenceReport {
        let scenario = self.scenario_for_trace(&trace.header);
        replay_trace(&scenario, trace, vec![])
    }

    /// [`Session::replay`] fast-forwarded from a restored mid-run world
    /// snapshot — `dd replay --from`. The strict policy resumes at the
    /// snapshot's decision; the divergence report still covers the whole
    /// run (see [`dd_replay::replay_trace_from`]).
    pub fn replay_from(&self, trace: &JsonlTrace, snapshot: &WorldSnapshot) -> DivergenceReport {
        let scenario = self.scenario_for_trace(&trace.header);
        replay_trace_from(&scenario, trace, snapshot)
    }

    /// Compares recorded vs replayed *behaviour* (the I/O specification's
    /// verdict) instead of machine state — `dd replay --invariant-only`.
    pub fn behavior_check(&self, trace: &JsonlTrace, replayed: &IoSummary) -> BehaviorCheck {
        let scenario = self.scenario_for_trace(&trace.header);
        let recorded_failure = (scenario.failure_of)(&trace.footer.io).map(|f| f.failure_id);
        let replayed_failure = (scenario.failure_of)(replayed).map(|f| f.failure_id);
        BehaviorCheck {
            drifted: recorded_failure != replayed_failure,
            recorded_failure,
            replayed_failure,
        }
    }

    /// Hands the recorded run to the systematic search machinery: fixing
    /// the trace's inputs and environment, explores the schedule space for
    /// other executions exhibiting the recorded failure (or any failure,
    /// if the recorded run passed). Uses the budget's strategy when it is
    /// systematic, otherwise DPOR at the default depth.
    pub fn explore(&self, trace: &JsonlTrace) -> Exploration {
        self.explore_warm(trace, Vec::new())
    }

    /// [`Session::explore`] warm-started from previously captured world
    /// snapshots — typically restored from the trace's on-disk
    /// [`SnapshotStore`](dd_trace::SnapshotStore), letting a fresh process
    /// skip re-executing the recorded prefix on the walk's first descents.
    /// Incompatible seeds are skipped safely, so passing snapshots from an
    /// unrelated run degrades to a cold [`Session::explore`].
    pub fn explore_warm(&self, trace: &JsonlTrace, warm: Vec<Arc<WorldSnapshot>>) -> Exploration {
        let scenario = self.scenario_for_trace(&trace.header);
        let target = (scenario.failure_of)(&trace.footer.io).map(|f| f.failure_id);
        let strategy = match self.budget.strategy {
            s @ (SearchStrategy::Exhaustive { .. }
            | SearchStrategy::Dpor { .. }
            | SearchStrategy::DporParallel { .. }) => s,
            _ => SearchStrategy::Dpor {
                max_depth: DEFAULT_EXPLORE_DEPTH,
            },
        };
        let inputs = scenario.inputs.clone();
        let sought = target.clone();
        let result = search_with_warm(
            &scenario,
            &self.budget,
            strategy,
            Some(&inputs),
            warm,
            |out| match (&sought, (scenario.failure_of)(&out.io)) {
                (Some(id), Some(f)) => f.failure_id == *id,
                (None, found) => found.is_some(),
                (Some(_), None) => false,
            },
        );
        Exploration { target, result }
    }
}

/// Branching depth [`Session::explore`] falls back to when the budget's
/// strategy is not systematic.
pub const DEFAULT_EXPLORE_DEPTH: u32 = 8;

impl core::fmt::Debug for Session {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Session")
            .field("workload", &self.workload.name())
            .field("budget", &self.budget)
            .field("checkpoints", &self.checkpoints)
            .field("training_cap", &self.training_cap)
            .field("production_override", &self.production.is_some())
            .finish()
    }
}

/// Recorded-vs-replayed behavioural comparison (`dd replay
/// --invariant-only`): did the specification verdict drift?
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorCheck {
    /// `true` when the replay's verdict differs from the recording's.
    pub drifted: bool,
    /// Failure id of the recorded run (`None` = the recording passed).
    pub recorded_failure: Option<String>,
    /// Failure id of the replayed run.
    pub replayed_failure: Option<String>,
}

/// The outcome of [`Session::explore`].
pub struct Exploration {
    /// The failure id sought (`None`: the recorded run passed, so any
    /// failure was accepted).
    pub target: Option<String>,
    /// The systematic search's result and statistics.
    pub result: SearchResult,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{snapshot, FnSpec};
    use dd_replay::NondetSpace;
    use dd_sim::{Builder, ChanClass, InputScript, Program};

    /// Two workers race on an unlocked counter; the reporter outputs it.
    struct Racy;
    impl Program for Racy {
        fn name(&self) -> &'static str {
            "racy"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let total = b.var("total", 0i64);
            let out = b.out_port("result");
            let done = b.channel::<i64>("done", ChanClass::Local);
            for i in 0..2 {
                b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                    for _ in 0..4 {
                        let v = ctx.read(&total, "w::read").await?;
                        ctx.write(&total, v + 1, "w::write").await?;
                    }
                    ctx.send(&done, 1, "w::done").await
                });
            }
            b.spawn("r", "main", move |mut ctx| async move {
                for _ in 0..2 {
                    ctx.recv(&done, "r::join").await?;
                }
                let v = ctx.read(&total, "r::read").await?;
                ctx.output(out, v, "r::out").await
            });
        }
    }

    struct RacyWorkload;
    impl Workload for RacyWorkload {
        fn name(&self) -> &'static str {
            "racy"
        }
        fn program(&self) -> Arc<dyn Program> {
            Arc::new(Racy)
        }
        fn spec(&self) -> Arc<dyn crate::Spec> {
            Arc::new(FnSpec::new("racy-total", |io| {
                let total = io.outputs_on("result").first().and_then(|v| v.as_int())?;
                (total < 8).then(|| snapshot("lost-updates", format!("total {total}"), io))
            }))
        }
        fn root_causes(&self) -> Vec<crate::RootCause> {
            Vec::new()
        }
        fn production(&self) -> RunSetup {
            RunSetup {
                max_steps: 100_000,
                ..RunSetup::default()
            }
        }
        fn space(&self) -> NondetSpace {
            NondetSpace::schedules_only(8, InputScript::new())
        }
    }

    fn session() -> Session {
        Session::new(Arc::new(RacyWorkload))
    }

    #[test]
    fn record_then_replay_is_identical() {
        let s = session();
        let trace = s.record().expect("recordable");
        assert_eq!(trace.footer.decisions, trace.decisions.len() as u64);
        let report = s.replay(&trace);
        assert!(report.identical(), "{:?}", report.divergence);
        assert_eq!(report.replayed_decisions, trace.footer.decisions);
    }

    #[test]
    fn recording_is_deterministic() {
        let s = session();
        let a = s.record().unwrap().render();
        let b = s.record().unwrap().render();
        assert_eq!(a, b, "same session must produce byte-identical traces");
    }

    #[test]
    fn mutated_decision_diverges_at_that_index() {
        let s = session();
        let trace = s.record().expect("recordable");
        // Pick a mid-trace decision with more than one candidate and force
        // a different choice; replay must stop exactly there.
        let idx = trace
            .decisions
            .iter()
            .position(|d| d.n > 1)
            .expect("racy program has multi-candidate decisions");
        let mut mutated = trace.clone();
        let old = mutated.decisions[idx].chosen;
        let other = trace
            .decisions
            .iter()
            .map(|d| d.chosen)
            .find(|&c| c != old)
            .unwrap_or(dd_sim::TaskId(old.0 + 1));
        mutated.decisions[idx].chosen = other;
        // Either the forced task is enabled (the digest stream catches the
        // drift at the next comparison point, implicating this decision) or
        // it is not (the strict policy stops here directly) — both report
        // the mutated index.
        let report = s.replay(&mutated);
        let div = report.divergence.expect("mutation must be caught");
        assert_eq!(div.decision, idx as u64, "divergence at the mutated index");
    }

    #[test]
    fn behavior_check_passes_on_faithful_replay() {
        let s = session();
        let trace = s.record().unwrap();
        let report = s.replay(&trace);
        let check = s.behavior_check(&trace, &report.out.io);
        assert!(!check.drifted);
        assert_eq!(check.recorded_failure, check.replayed_failure);
    }

    #[test]
    fn discovery_sets_production_override() {
        let (s, seed) = session().discover_failing_schedule(64);
        let seed = seed.expect("some schedule loses updates");
        assert_eq!(s.production().sched_seed, seed);
        let scenario = s.scenario();
        let out = scenario.execute(&scenario.original_spec(), vec![]);
        assert!((scenario.failure_of)(&out.io).is_some());
    }

    #[test]
    fn explore_finds_the_recorded_failure() {
        let (s, _) = session().discover_failing_schedule(64);
        let s = s.with_executions(256);
        let trace = s.record().unwrap();
        let exploration = s.explore(&trace);
        assert_eq!(exploration.target.as_deref(), Some("lost-updates"));
        assert!(exploration.result.stats.found, "DPOR finds the race");
    }
}
