//! The [`Workload`] abstraction: a program plus its debugging context.
//!
//! A workload bundles everything the experiment pipeline needs: the program,
//! its I/O specification, the declared potential root causes, the failing
//! production configuration, the nondeterminism space a replayer may search,
//! passing training configurations (for classifier and invariant learning),
//! ground-truth plane labels, and optionally a *fixed* program variant that
//! realises the fix predicate P.

use crate::rootcause::RootCause;
use crate::spec::{oracle_of, Spec};
use dd_classify::Plane;
use dd_replay::{NondetSpace, Scenario};
use dd_sim::{EnvConfig, InputScript, Program};
use std::sync::Arc;

/// One fully specified run configuration.
#[derive(Debug, Clone)]
pub struct RunSetup {
    /// Kernel RNG seed.
    pub seed: u64,
    /// Schedule-policy seed.
    pub sched_seed: u64,
    /// Input script.
    pub inputs: InputScript,
    /// Environment.
    pub env: EnvConfig,
    /// Step bound.
    pub max_steps: u64,
}

impl Default for RunSetup {
    fn default() -> Self {
        RunSetup {
            seed: 0,
            sched_seed: 0,
            inputs: InputScript::new(),
            env: EnvConfig::clean(),
            max_steps: 2_000_000,
        }
    }
}

/// A program plus its debugging context.
pub trait Workload: Send + Sync {
    /// Short stable name.
    fn name(&self) -> &'static str;

    /// The (buggy) program.
    fn program(&self) -> Arc<dyn Program>;

    /// The I/O specification.
    fn spec(&self) -> Arc<dyn Spec>;

    /// Every known potential root cause, per failure id.
    fn root_causes(&self) -> Vec<RootCause>;

    /// The failing production configuration (the incident to debug).
    fn production(&self) -> RunSetup;

    /// The nondeterminism space replayers may search.
    fn space(&self) -> NondetSpace;

    /// Passing configurations for offline training (classification,
    /// invariant inference). Default: the production setup under eight
    /// different seeds.
    fn training(&self) -> Vec<RunSetup> {
        let base = self.production();
        (100..108)
            .map(|s| RunSetup {
                seed: s,
                sched_seed: s.wrapping_mul(31),
                ..base.clone()
            })
            .collect()
    }

    /// Ground-truth `(site prefix, plane)` labels for classifier scoring.
    fn plane_truth(&self) -> Vec<(&'static str, Plane)> {
        Vec::new()
    }

    /// The fixed program variant (fix predicate P holds), if provided.
    fn fixed_program(&self) -> Option<Arc<dyn Program>> {
        None
    }

    /// Assembles the replay scenario for the production incident.
    fn scenario(&self) -> Scenario {
        let p = self.production();
        Scenario {
            program: self.program(),
            seed: p.seed,
            sched_seed: p.sched_seed,
            inputs: p.inputs,
            env: p.env,
            max_steps: p.max_steps,
            failure_of: oracle_of(self.spec()),
            space: self.space(),
        }
    }

    /// Assembles a scenario for an arbitrary setup (training, validation).
    fn scenario_for(&self, setup: &RunSetup) -> Scenario {
        Scenario {
            program: self.program(),
            seed: setup.seed,
            sched_seed: setup.sched_seed,
            inputs: setup.inputs.clone(),
            env: setup.env.clone(),
            max_steps: setup.max_steps,
            failure_of: oracle_of(self.spec()),
            space: self.space(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FnSpec;
    use dd_sim::Builder;

    struct Trivial;
    impl Program for Trivial {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let out = b.out_port("out");
            b.spawn("t", "g", move |mut ctx| async move {
                ctx.output(out, 1i64, "t::out").await
            });
        }
    }

    struct TrivialWorkload;
    impl Workload for TrivialWorkload {
        fn name(&self) -> &'static str {
            "trivial"
        }
        fn program(&self) -> Arc<dyn Program> {
            Arc::new(Trivial)
        }
        fn spec(&self) -> Arc<dyn Spec> {
            Arc::new(FnSpec::new("always-ok", |_| None))
        }
        fn root_causes(&self) -> Vec<RootCause> {
            Vec::new()
        }
        fn production(&self) -> RunSetup {
            RunSetup::default()
        }
        fn space(&self) -> NondetSpace {
            NondetSpace::schedules_only(4, InputScript::new())
        }
    }

    #[test]
    fn scenario_assembly_runs() {
        let w = TrivialWorkload;
        let s = w.scenario();
        let out = s.execute(&s.original_spec(), vec![]);
        assert_eq!(out.io.outputs_on("out").len(), 1);
        assert!((s.failure_of)(&out.io).is_none());
    }

    #[test]
    fn default_training_setups_vary_seeds() {
        let w = TrivialWorkload;
        let t = w.training();
        assert_eq!(t.len(), 8);
        assert!(
            t.iter()
                .map(|s| s.seed)
                .collect::<std::collections::HashSet<_>>()
                .len()
                == 8
        );
    }
}
