//! I/O specifications: the paper's definition of failure.
//!
//! > "A failure occurs when a program produces incorrect output according to
//! > an I/O specification. The output includes all observable behavior,
//! > including performance characteristics."
//!
//! A [`Spec`] examines a run's [`IoSummary`] — ordered outputs, counters
//! (performance evidence) and crashes — and either accepts it or assigns a
//! stable failure identity. Failure identity is what failure determinism
//! preserves; debug determinism additionally preserves the root cause.

use dd_replay::FailureOracle;
use dd_sim::IoSummary;
use dd_trace::FailureSnapshot;
use std::sync::Arc;

/// An I/O specification for one workload.
pub trait Spec: Send + Sync {
    /// A short stable name.
    fn name(&self) -> &'static str;

    /// Checks observable behaviour; `None` means the output is correct,
    /// `Some` describes the failure (with a stable `failure_id`).
    fn check(&self, io: &IoSummary) -> Option<FailureSnapshot>;
}

/// Adapts a [`Spec`] into the oracle form `dd-replay` consumes.
pub fn oracle_of(spec: Arc<dyn Spec>) -> FailureOracle {
    Arc::new(move |io| spec.check(io))
}

/// Builds a failure snapshot with the given identity, copying crash and
/// counter evidence from the run (what a bug report would contain).
pub fn snapshot(id: &str, description: String, io: &IoSummary) -> FailureSnapshot {
    FailureSnapshot {
        failure_id: id.to_owned(),
        description,
        crashes: io.crashes.clone(),
        counters: io.counters.clone(),
    }
}

/// The closure form a [`FnSpec`] wraps.
type SpecFn = Box<dyn Fn(&IoSummary) -> Option<FailureSnapshot> + Send + Sync>;

/// A spec built from a plain closure (convenient for tests and examples).
pub struct FnSpec {
    name: &'static str,
    f: SpecFn,
}

impl FnSpec {
    /// Wraps a closure as a [`Spec`].
    pub fn new(
        name: &'static str,
        f: impl Fn(&IoSummary) -> Option<FailureSnapshot> + Send + Sync + 'static,
    ) -> Self {
        FnSpec {
            name,
            f: Box::new(f),
        }
    }
}

impl Spec for FnSpec {
    fn name(&self) -> &'static str {
        self.name
    }

    fn check(&self, io: &IoSummary) -> Option<FailureSnapshot> {
        (self.f)(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spec_delegates() {
        let spec = FnSpec::new("positive-counter", |io| {
            if io.counter("errors") > 0 {
                Some(snapshot("too-many-errors", "errors observed".into(), io))
            } else {
                None
            }
        });
        let mut io = IoSummary::default();
        assert!(spec.check(&io).is_none());
        io.counters.insert("errors".into(), 3);
        let f = spec.check(&io).unwrap();
        assert_eq!(f.failure_id, "too-many-errors");
        assert_eq!(f.counters["errors"], 3);
        assert_eq!(spec.name(), "positive-counter");
    }

    #[test]
    fn oracle_adapter_works() {
        let spec: Arc<dyn Spec> = Arc::new(FnSpec::new("s", |_| None));
        let oracle = oracle_of(spec);
        assert!(oracle(&IoSummary::default()).is_none());
    }
}
