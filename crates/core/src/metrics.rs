//! The paper's §3.2 metrics: debugging fidelity, efficiency and utility.
//!
//! - **Debugging fidelity (DF)**: 0 if the replay does not reproduce the
//!   failure; 1 if it reproduces the failure *and* the original root cause;
//!   `1/n` if it reproduces the failure through a different root cause,
//!   where `n` is the number of potential root causes for that failure.
//! - **Debugging efficiency (DE)**: original execution duration divided by
//!   the time to reproduce the failure (replay plus inference/analysis).
//!   Values above 1 are possible when a synthesised execution is shorter
//!   than the original.
//! - **Debugging utility (DU)**: `DF × DE`.

use crate::rootcause::{active_causes, causes_for, CauseCtx, RootCause};
use dd_replay::{Recording, ReplayResult};
use serde::{Deserialize, Serialize};

/// Debugging-fidelity assessment of one replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityReport {
    /// The DF value in `{0} ∪ {1/n} ∪ {1}`.
    pub df: f64,
    /// Whether the replay exhibited the original failure.
    pub reproduced_failure: bool,
    /// Whether the replay exhibited the original root cause (meaningful only
    /// when the failure was reproduced).
    pub same_root_cause: bool,
    /// Number of potential root causes for this failure (`n`).
    pub n_causes: usize,
    /// Root causes active in the original execution.
    pub original_causes: Vec<String>,
    /// Root causes active in the replayed execution.
    pub replay_causes: Vec<String>,
}

/// Measures debugging fidelity per §3.2.
///
/// `causes` must be the workload's declared potential root causes. When the
/// original run did not fail at all, fidelity is trivially 1 (there is
/// nothing to reproduce).
pub fn debugging_fidelity(
    causes: &[RootCause],
    recording: &Recording,
    replay: &ReplayResult,
) -> FidelityReport {
    let original = &recording.original;
    let Some(failure) = &original.failure else {
        return FidelityReport {
            df: 1.0,
            reproduced_failure: true,
            same_root_cause: true,
            n_causes: 0,
            original_causes: Vec::new(),
            replay_causes: Vec::new(),
        };
    };

    let candidates = causes_for(causes, &failure.failure_id);
    let n = candidates.len().max(1);

    let orig_ctx = CauseCtx {
        trace: &original.trace,
        registry: &original.registry,
        io: &original.io,
    };
    let original_causes: Vec<String> = active_causes(causes, &orig_ctx)
        .into_iter()
        .filter(|c| c.failure_id == failure.failure_id)
        .map(|c| c.id.to_owned())
        .collect();

    if !replay.reproduced_failure {
        return FidelityReport {
            df: 0.0,
            reproduced_failure: false,
            same_root_cause: false,
            n_causes: n,
            original_causes,
            replay_causes: Vec::new(),
        };
    }

    let replay_ctx = CauseCtx {
        trace: &replay.trace,
        registry: &replay.registry,
        io: &replay.io,
    };
    let replay_causes: Vec<String> = active_causes(causes, &replay_ctx)
        .into_iter()
        .filter(|c| c.failure_id == failure.failure_id)
        .map(|c| c.id.to_owned())
        .collect();

    let same = original_causes.iter().any(|c| replay_causes.contains(c));
    let df = if same { 1.0 } else { 1.0 / n as f64 };
    FidelityReport {
        df,
        reproduced_failure: true,
        same_root_cause: same,
        n_causes: n,
        original_causes,
        replay_causes,
    }
}

/// Measures debugging efficiency per §3.2: original duration over total
/// reproduction time (inference plus the replayed execution itself).
pub fn debugging_efficiency(recording: &Recording, replay: &ReplayResult) -> f64 {
    let reproduce_ticks = replay
        .replay_ticks
        .saturating_add(replay.inference.ticks)
        .max(1);
    recording.original.duration as f64 / reproduce_ticks as f64
}

/// The combined §3.2 assessment for one model on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilityReport {
    /// Debugging fidelity.
    pub fidelity: FidelityReport,
    /// Debugging efficiency.
    pub de: f64,
    /// Debugging utility `DU = DF × DE`.
    pub du: f64,
}

/// Computes DF, DE and DU for one replay.
pub fn debugging_utility(
    causes: &[RootCause],
    recording: &Recording,
    replay: &ReplayResult,
) -> UtilityReport {
    let fidelity = debugging_fidelity(causes, recording, replay);
    let de = debugging_efficiency(recording, replay);
    let du = fidelity.df * de;
    UtilityReport { fidelity, de, du }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_replay::{Artifact, InferenceStats, ModelKind, OriginalRun};
    use dd_sim::{IoSummary, Registry, StopReason};
    use dd_trace::{FailureSnapshot, LogStats, OutputLog, Trace};

    fn recording(failure: Option<FailureSnapshot>, duration: u64) -> Recording {
        Recording {
            model: ModelKind::Failure,
            artifact: Artifact::OutputLite {
                outputs: OutputLog::default(),
            },
            overhead_factor: 1.0,
            log: LogStats::default(),
            original: OriginalRun {
                io: IoSummary::default(),
                trace: Trace::default(),
                registry: Registry::default(),
                stop: StopReason::Quiescent,
                failure,
                duration,
            },
        }
    }

    fn replay(reproduced: bool, replay_ticks: u64, infer_ticks: u64) -> ReplayResult {
        ReplayResult {
            io: IoSummary::default(),
            trace: Trace::default(),
            registry: Registry::default(),
            stop: StopReason::Quiescent,
            failure: None,
            reproduced_failure: reproduced,
            artifact_satisfied: true,
            inference: InferenceStats {
                explored: 1,
                ticks: infer_ticks,
                found: true,
                found_at: Some(0),
                ..InferenceStats::default()
            },
            replay_ticks,
            value_divergences: 0,
        }
    }

    fn snapshot(id: &str) -> FailureSnapshot {
        FailureSnapshot {
            failure_id: id.into(),
            ..Default::default()
        }
    }

    #[test]
    fn df_zero_when_failure_not_reproduced() {
        let causes = vec![
            RootCause::new("a", "f", "", |_| true),
            RootCause::new("b", "f", "", |_| false),
        ];
        let rec = recording(Some(snapshot("f")), 100);
        let rep = replay(false, 100, 0);
        let f = debugging_fidelity(&causes, &rec, &rep);
        assert_eq!(f.df, 0.0);
        assert!(!f.reproduced_failure);
        assert_eq!(f.n_causes, 2);
    }

    #[test]
    fn df_one_when_same_cause_active() {
        // Cause "a" is active in every trace (predicate `true`), so both the
        // original and the replay exhibit it.
        let causes = vec![
            RootCause::new("a", "f", "", |_| true),
            RootCause::new("b", "f", "", |_| false),
        ];
        let rec = recording(Some(snapshot("f")), 100);
        let rep = replay(true, 100, 0);
        let f = debugging_fidelity(&causes, &rec, &rep);
        assert_eq!(f.df, 1.0);
        assert!(f.same_root_cause);
        assert_eq!(f.original_causes, vec!["a"]);
    }

    #[test]
    fn df_fraction_when_different_cause() {
        // Discriminate executions by trace length: the "original" cause
        // fires only on empty traces... both traces here are empty, so
        // instead discriminate by io counter.
        let causes = vec![
            RootCause::new("orig", "f", "", |ctx| ctx.io.counter("marker") == 1),
            RootCause::new("alt", "f", "", |ctx| ctx.io.counter("marker") == 0),
            RootCause::new("other", "f", "", |_| false),
        ];
        let mut rec = recording(Some(snapshot("f")), 100);
        rec.original.io.counters.insert("marker".into(), 1);
        let rep = replay(true, 100, 0);
        let f = debugging_fidelity(&causes, &rec, &rep);
        assert!(!f.same_root_cause);
        assert_eq!(f.n_causes, 3);
        assert!((f.df - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(f.original_causes, vec!["orig"]);
        assert_eq!(f.replay_causes, vec!["alt"]);
    }

    #[test]
    fn df_trivial_when_original_passed() {
        let causes: Vec<RootCause> = Vec::new();
        let rec = recording(None, 100);
        let rep = replay(true, 100, 0);
        assert_eq!(debugging_fidelity(&causes, &rec, &rep).df, 1.0);
    }

    #[test]
    fn de_ratio_and_greater_than_one() {
        let rec = recording(Some(snapshot("f")), 1000);
        // Synthesised execution much shorter than the original.
        let rep = replay(true, 100, 200);
        let de = debugging_efficiency(&rec, &rep);
        assert!((de - 1000.0 / 300.0).abs() < 1e-9);
        assert!(de > 1.0);
        // Expensive inference pushes DE below 1.
        let slow = replay(true, 1000, 9000);
        assert!(debugging_efficiency(&rec, &slow) < 1.0);
    }

    #[test]
    fn du_is_product() {
        let causes = vec![RootCause::new("a", "f", "", |_| true)];
        let rec = recording(Some(snapshot("f")), 1000);
        let rep = replay(true, 500, 500);
        let u = debugging_utility(&causes, &rec, &rep);
        assert!((u.du - u.fidelity.df * u.de).abs() < 1e-12);
        assert_eq!(u.fidelity.df, 1.0);
        assert!((u.de - 1.0).abs() < 1e-9);
    }
}
