//! Root causes as predicates — the paper's §3 formalisation.
//!
//! > "Let P be the predicate on the program state that constrains the
//! > execution — according to the fix — to produce correct output. The root
//! > cause is the negation of predicate P."
//!
//! A [`RootCause`] names one deviation-from-perfect-implementation that can
//! produce a given failure, with a trace predicate that decides whether a
//! *particular execution* exhibits it. Workloads declare every known
//! potential root cause for each failure; the count is the `n` in the
//! debugging-fidelity value `1/n` (§3.2), and a *fixed* program variant
//! (where P always holds) validates that the predicate corresponds to a
//! real fix.

use dd_sim::{IoSummary, Registry};
use dd_trace::Trace;
use std::sync::Arc;

/// Everything a cause predicate may inspect about one execution.
pub struct CauseCtx<'a> {
    /// The execution's full trace.
    pub trace: &'a Trace,
    /// Name tables.
    pub registry: &'a Registry,
    /// Observable behaviour.
    pub io: &'a IoSummary,
}

/// Decides whether an execution exhibits a root cause.
pub type CausePredicate = Arc<dyn Fn(&CauseCtx<'_>) -> bool + Send + Sync>;

/// One potential root cause of a failure.
#[derive(Clone)]
pub struct RootCause {
    /// Stable identifier (e.g. `"migration-commit-race"`).
    pub id: &'static str,
    /// Human-readable description of the deviation.
    pub description: &'static str,
    /// The failure this cause can explain (a [`Spec`](crate::Spec)
    /// `failure_id`).
    pub failure_id: &'static str,
    /// Whether this execution exhibits the cause.
    pub predicate: CausePredicate,
}

impl RootCause {
    /// Creates a root cause.
    pub fn new(
        id: &'static str,
        failure_id: &'static str,
        description: &'static str,
        predicate: impl Fn(&CauseCtx<'_>) -> bool + Send + Sync + 'static,
    ) -> Self {
        RootCause {
            id,
            description,
            failure_id,
            predicate: Arc::new(predicate),
        }
    }

    /// Evaluates the predicate on an execution.
    pub fn active_in(&self, ctx: &CauseCtx<'_>) -> bool {
        (self.predicate)(ctx)
    }
}

impl core::fmt::Debug for RootCause {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RootCause")
            .field("id", &self.id)
            .field("failure_id", &self.failure_id)
            .finish()
    }
}

/// Returns the ids of all causes active in an execution.
pub fn active_causes<'a>(causes: &'a [RootCause], ctx: &CauseCtx<'_>) -> Vec<&'a RootCause> {
    causes.iter().filter(|c| c.active_in(ctx)).collect()
}

/// Returns the causes that can explain the given failure id.
pub fn causes_for<'a>(causes: &'a [RootCause], failure_id: &str) -> Vec<&'a RootCause> {
    causes
        .iter()
        .filter(|c| c.failure_id == failure_id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::Event;

    fn ctx_with_crash<'a>(
        trace: &'a Trace,
        registry: &'a Registry,
        io: &'a IoSummary,
    ) -> CauseCtx<'a> {
        CauseCtx {
            trace,
            registry,
            io,
        }
    }

    #[test]
    fn predicates_evaluate_on_traces() {
        let cause = RootCause::new("crashy", "f1", "task crashed", |ctx| {
            ctx.trace.any(|e| matches!(e, Event::Crash { .. }))
        });
        let empty = Trace::default();
        let registry = Registry::default();
        let io = IoSummary::default();
        assert!(!cause.active_in(&ctx_with_crash(&empty, &registry, &io)));

        let crashing = Trace::from_events(vec![(
            dd_sim::EventMeta { step: 0, time: 0 },
            Event::Crash {
                task: dd_sim::TaskId(0),
                reason: "x".into(),
                site: "s".into(),
            },
        )]);
        assert!(cause.active_in(&ctx_with_crash(&crashing, &registry, &io)));
    }

    #[test]
    fn filtering_by_failure_id() {
        let causes = vec![
            RootCause::new("a", "f1", "", |_| true),
            RootCause::new("b", "f1", "", |_| false),
            RootCause::new("c", "f2", "", |_| true),
        ];
        assert_eq!(causes_for(&causes, "f1").len(), 2);
        assert_eq!(causes_for(&causes, "f2")[0].id, "c");
        let trace = Trace::default();
        let registry = Registry::default();
        let io = IoSummary::default();
        let ctx = CauseCtx {
            trace: &trace,
            registry: &registry,
            io: &io,
        };
        let active = active_causes(&causes, &ctx);
        assert_eq!(
            active.iter().map(|c| c.id).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
    }

    #[test]
    fn debug_format_is_compact() {
        let c = RootCause::new("x", "f", "desc", |_| true);
        assert!(format!("{c:?}").contains("\"x\""));
    }
}
