//! # dd-core — debug determinism and root-cause-driven selectivity
//!
//! The primary contribution of *"Debug Determinism: The Sweet Spot for
//! Replay-Based Debugging"* (HotOS 2011), reproduced as a library:
//!
//! - **Failures** are I/O-specification violations ([`Spec`]), including
//!   performance characteristics.
//! - **Root causes** are fix-predicate negations, operationalised as trace
//!   predicates ([`RootCause`]).
//! - **Debug determinism** means replaying the same failure *and* the same
//!   root cause. It is approximated by **RCSE** ([`RcseRecorder`],
//!   [`DebugModel`]): record the thread schedule and control-plane data,
//!   dial fidelity up when potential-bug triggers fire, dial down after a
//!   quiet window.
//! - **Metrics** ([`debugging_fidelity`], [`debugging_efficiency`],
//!   [`debugging_utility`]): DF ∈ {0, 1/n, 1}, DE = t_orig / t_reproduce,
//!   DU = DF × DE.
//! - The [`experiment`] runner evaluates any [`DeterminismModel`] on any
//!   [`Workload`] and prints the Fig. 1 / Fig. 2 rows.

pub mod driver;
pub mod experiment;
pub mod metrics;
pub mod rcse;
pub mod rootcause;
pub mod spec;
pub mod workload;

pub use driver::{BehaviorCheck, Exploration, Session};
pub use experiment::{
    enumerate_root_causes, evaluate_model, evaluate_model_on, evaluate_suite,
    find_cause_equivalent_executions, format_table, CauseWitness, ModelReport,
};
pub use metrics::{
    debugging_efficiency, debugging_fidelity, debugging_utility, FidelityReport, UtilityReport,
};
pub use rcse::{
    root_cause_recorded, train, DebugModel, Fidelity, RcseConfig, RcseRecorder, ResolvedPlaneMap,
    Training,
};
pub use rootcause::{active_causes, causes_for, CauseCtx, CausePredicate, RootCause};
pub use spec::{oracle_of, snapshot, FnSpec, Spec};
pub use workload::{RunSetup, Workload};

// Re-export the pieces users need alongside the core API.
pub use dd_replay::{
    DeterminismModel, FailureModel, InferenceBudget, ModelKind, MsgOrderModel, OutputHeavyModel,
    OutputLiteModel, PerfectModel, RaceCompleteModel, Recording, ReplayResult, ValueModel,
};
