//! The experiment runner: record → replay → assess, per model per workload.
//!
//! This is the harness behind Fig. 1, Fig. 2 and the ablations: it runs a
//! workload's production incident under each determinism model, replays from
//! the artifact, and reports recording overhead alongside DF/DE/DU.

use crate::metrics::{debugging_utility, UtilityReport};
use crate::rootcause::{causes_for, CauseCtx};
use crate::workload::Workload;
use dd_replay::{DeterminismModel, InferenceBudget, ModelKind, Recording, ReplayResult};
use dd_trace::LogStats;
use serde::{Deserialize, Serialize};

/// The full evaluation of one model on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelReport {
    /// Workload name.
    pub workload: String,
    /// The model evaluated.
    pub model: ModelKind,
    /// Production recording overhead (wall / exec).
    pub overhead_factor: f64,
    /// Log volume recorded.
    pub log: LogStats,
    /// DF / DE / DU.
    pub utility: UtilityReport,
    /// Whether the artifact's constraints held on the replayed execution.
    pub artifact_satisfied: bool,
    /// Inference executions explored (0 for non-inference models).
    pub inference_explored: u64,
    /// Value-feed divergences (value determinism only).
    pub value_divergences: u64,
}

impl ModelReport {
    /// One formatted row: model, overhead, DF, DE, DU.
    pub fn row(&self) -> String {
        format!(
            "{:<14} {:>9.2}x {:>10} {:>8.3} {:>8.3} {:>8.3} {:>9}",
            self.model.to_string(),
            self.overhead_factor,
            self.log.bytes,
            self.utility.fidelity.df,
            self.utility.de,
            self.utility.du,
            self.inference_explored,
        )
    }

    /// The table header matching [`ModelReport::row`].
    pub fn header() -> String {
        format!(
            "{:<14} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9}",
            "model", "overhead", "log-bytes", "DF", "DE", "DU", "explored"
        )
    }
}

/// Evaluates one model on one workload: record the production incident,
/// replay from the artifact, assess fidelity/efficiency/utility.
pub fn evaluate_model(
    workload: &dyn Workload,
    model: &dyn DeterminismModel,
    budget: &InferenceBudget,
) -> (ModelReport, Recording, ReplayResult) {
    evaluate_model_on(&workload.scenario(), workload, model, budget)
}

/// [`evaluate_model`] against an explicit scenario — the same pipeline for
/// callers that override the production incident (e.g. a
/// [`Session`](crate::driver::Session) with a discovered failing schedule).
pub fn evaluate_model_on(
    scenario: &dd_replay::Scenario,
    workload: &dyn Workload,
    model: &dyn DeterminismModel,
    budget: &InferenceBudget,
) -> (ModelReport, Recording, ReplayResult) {
    let recording = model.record(scenario);
    let replay = model.replay(scenario, &recording, budget);
    let causes = workload.root_causes();
    let utility = debugging_utility(&causes, &recording, &replay);
    let report = ModelReport {
        workload: workload.name().to_owned(),
        model: model.kind(),
        overhead_factor: recording.overhead_factor,
        log: recording.log,
        utility,
        artifact_satisfied: replay.artifact_satisfied,
        inference_explored: replay.inference.explored,
        value_divergences: replay.value_divergences,
    };
    (report, recording, replay)
}

/// Evaluates a suite of models on one workload.
pub fn evaluate_suite(
    workload: &dyn Workload,
    models: &[&dyn DeterminismModel],
    budget: &InferenceBudget,
) -> Vec<ModelReport> {
    models
        .iter()
        .map(|m| evaluate_model(workload, *m, budget).0)
        .collect()
}

/// Renders reports as a text table (one row per model).
pub fn format_table(reports: &[ModelReport]) -> String {
    let mut s = String::new();
    s.push_str(&ModelReport::header());
    s.push('\n');
    for r in reports {
        s.push_str(&r.row());
        s.push('\n');
    }
    s
}

/// Empirically verifies which declared root causes are reachable: for each
/// cause of the original failure, searches the workload's nondeterminism
/// space for an execution that (a) exhibits the failure and (b) activates
/// that cause. Returns `(cause id, reachable)` pairs.
///
/// This is the §3.2 proposal for determining `n` empirically ("check if the
/// system can replay all of the true positives").
pub fn enumerate_root_causes(
    workload: &dyn Workload,
    budget: &InferenceBudget,
) -> Vec<(&'static str, bool)> {
    find_cause_equivalent_executions(workload, budget)
        .into_iter()
        .map(|w| (w.cause, w.witness.is_some()))
        .collect()
}

/// A root cause together with the execution the explorer found for it.
pub struct CauseWitness {
    /// The cause id.
    pub cause: &'static str,
    /// A run specification whose execution exhibits the production failure
    /// through this cause, if one was found within budget.
    pub witness: Option<dd_replay::RunSpec>,
    /// Candidate executions explored for this cause.
    pub explored: u64,
}

/// The paper's §5 "ideal" system, made concrete: record just the failure,
/// then find *all* root-cause-equivalent executions that exhibit it — one
/// witness execution per declared potential cause.
///
/// This is the exhaustive counterpart of failure-deterministic replay
/// (which stops at the first consistent execution); its cost is the sum of
/// the per-cause searches, which is exactly the scaling challenge §5 notes.
pub fn find_cause_equivalent_executions(
    workload: &dyn Workload,
    budget: &InferenceBudget,
) -> Vec<CauseWitness> {
    let scenario = workload.scenario();
    let causes = workload.root_causes();
    // Identify the production failure.
    let original = scenario.execute(&scenario.original_spec(), vec![]);
    let Some(failure) = (scenario.failure_of)(&original.io) else {
        return causes
            .iter()
            .map(|c| CauseWitness {
                cause: c.id,
                witness: None,
                explored: 0,
            })
            .collect();
    };
    causes_for(&causes, &failure.failure_id)
        .into_iter()
        .map(|cause| {
            let result = dd_replay::search(&scenario, budget, None, |out| {
                let Some(f) = (scenario.failure_of)(&out.io) else {
                    return false;
                };
                if f.failure_id != failure.failure_id {
                    return false;
                }
                let trace = dd_trace::Trace::from_run(out);
                let ctx = CauseCtx {
                    trace: &trace,
                    registry: &out.registry,
                    io: &out.io,
                };
                cause.active_in(&ctx)
            });
            CauseWitness {
                cause: cause.id,
                witness: result.spec,
                explored: result.stats.explored,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::FidelityReport;

    #[test]
    fn table_formatting_is_stable() {
        let report = ModelReport {
            workload: "w".into(),
            model: ModelKind::Value,
            overhead_factor: 3.2,
            log: LogStats {
                records: 10,
                bytes: 1000,
            },
            utility: UtilityReport {
                fidelity: FidelityReport {
                    df: 1.0,
                    reproduced_failure: true,
                    same_root_cause: true,
                    n_causes: 3,
                    original_causes: vec![],
                    replay_causes: vec![],
                },
                de: 0.9,
                du: 0.9,
            },
            artifact_satisfied: true,
            inference_explored: 0,
            value_divergences: 0,
        };
        let table = format_table(&[report]);
        assert!(table.contains("value"));
        assert!(table.contains("3.20x"));
        assert!(table.lines().count() == 2);
    }
}
