//! Property tests for `dd-detect::vclock`: the partial-order laws the whole
//! happens-before stack (race detection, DPOR conflict analysis) relies on,
//! plus agreement between vector-clock happens-before and `dd-sim`'s actual
//! event order on seeded traces.

use dd_detect::VectorClock;
use dd_sim::{run_program, Builder, ChanClass, Event, Program, RandomPolicy, RunConfig, TaskId};
use proptest::prelude::*;

/// Builds a clock from up to `vals.len()` components; a zero value leaves
/// the component absent, exercising the sparse representation.
fn clock_of(vals: &[u64]) -> VectorClock {
    let mut c = VectorClock::new();
    for (t, &v) in vals.iter().enumerate() {
        c.set(TaskId(t as u32), v);
    }
    c
}

fn joined(a: &VectorClock, b: &VectorClock) -> VectorClock {
    let mut j = a.clone();
    j.join(b);
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `≤` is reflexive.
    #[test]
    fn leq_is_reflexive(vals in prop::collection::vec(0u64..5, 4)) {
        let a = clock_of(&vals);
        prop_assert!(a.leq(&a));
    }

    /// `≤` is antisymmetric: mutual dominance means equality.
    #[test]
    fn leq_is_antisymmetric(
        x in prop::collection::vec(0u64..5, 4),
        y in prop::collection::vec(0u64..5, 4),
    ) {
        let a = clock_of(&x);
        let b = clock_of(&y);
        if a.leq(&b) && b.leq(&a) {
            prop_assert_eq!(a, b);
        }
    }

    /// `≤` is transitive — checked on constructed chains (always ordered)
    /// and on arbitrary triples (conditionally).
    #[test]
    fn leq_is_transitive(
        x in prop::collection::vec(0u64..5, 4),
        y in prop::collection::vec(0u64..5, 4),
        z in prop::collection::vec(0u64..5, 4),
    ) {
        let a = clock_of(&x);
        let b = joined(&a, &clock_of(&y));
        let c = joined(&b, &clock_of(&z));
        prop_assert!(a.leq(&b) && b.leq(&c) && a.leq(&c), "constructed chain must be ordered");

        let (p, q, r) = (clock_of(&x), clock_of(&y), clock_of(&z));
        if p.leq(&q) && q.leq(&r) {
            prop_assert!(p.leq(&r), "transitivity violated: {p} ≤ {q} ≤ {r}");
        }
    }

    /// Join is the least upper bound: an upper bound of both arguments, and
    /// below every other upper bound.
    #[test]
    fn join_is_a_least_upper_bound(
        x in prop::collection::vec(0u64..5, 4),
        y in prop::collection::vec(0u64..5, 4),
        extra in prop::collection::vec(0u64..5, 4),
    ) {
        let a = clock_of(&x);
        let b = clock_of(&y);
        let j = joined(&a, &b);
        prop_assert!(a.leq(&j), "join must dominate its left argument");
        prop_assert!(b.leq(&j), "join must dominate its right argument");
        prop_assert_eq!(joined(&a, &b), joined(&b, &a));

        // Every upper bound of a and b dominates the join. Constructed
        // upper bound: j ⊔ extra; arbitrary candidate: extra when it happens
        // to dominate both.
        let ub = joined(&j, &clock_of(&extra));
        prop_assert!(j.leq(&ub));
        let candidate = clock_of(&extra);
        if a.leq(&candidate) && b.leq(&candidate) {
            prop_assert!(j.leq(&candidate), "join must be the LEAST upper bound");
        }
    }

    /// Concurrency is symmetric, irreflexive, and excludes ordering.
    #[test]
    fn concurrent_is_symmetric_and_excludes_order(
        x in prop::collection::vec(0u64..5, 4),
        y in prop::collection::vec(0u64..5, 4),
    ) {
        let a = clock_of(&x);
        let b = clock_of(&y);
        prop_assert_eq!(a.concurrent(&b), b.concurrent(&a));
        prop_assert!(!a.concurrent(&a));
        if a.concurrent(&b) {
            prop_assert!(!a.leq(&b) && !b.leq(&a));
        } else {
            prop_assert!(a.leq(&b) || b.leq(&a));
        }
    }

    /// Ticking advances exactly the ticking task's component, strictly.
    #[test]
    fn tick_strictly_advances_own_component(
        x in prop::collection::vec(0u64..5, 4),
        t in 0u32..4,
    ) {
        let before = clock_of(&x);
        let mut after = before.clone();
        let new = after.tick(TaskId(t));
        prop_assert_eq!(new, before.get(TaskId(t)) + 1);
        prop_assert!(before.leq(&after) && before != after, "tick must strictly increase");
        for other in 0..4u32 {
            if other != t {
                prop_assert_eq!(after.get(TaskId(other)), before.get(TaskId(other)));
            }
        }
    }
}

/// A mixed-synchronisation program: racing workers, a lock-protected
/// counter, channel hand-offs and a join — enough edge variety to exercise
/// every clock rule.
struct MixedSync {
    workers: u32,
    iters: i64,
}

impl Program for MixedSync {
    fn name(&self) -> &'static str {
        "vclock-mixed-sync"
    }

    fn setup(&self, b: &mut Builder<'_>) {
        let shared = b.var("shared", 0i64);
        let guarded = b.var("guarded", 0i64);
        let m = b.mutex("m");
        let done = b.channel::<i64>("done", ChanClass::Local);
        let n = self.workers;
        let iters = self.iters;
        for i in 0..n {
            b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                for _ in 0..iters {
                    let v = ctx.read(&shared, "w::read").await?;
                    ctx.write(&shared, v + 1, "w::write").await?;
                    ctx.lock(m, "w::lock").await?;
                    let g = ctx.read(&guarded, "w::gread").await?;
                    ctx.write(&guarded, g + 1, "w::gwrite").await?;
                    ctx.unlock(m, "w::unlock").await?;
                }
                ctx.send(&done, 1, "w::done").await
            });
        }
        b.spawn("collector", "main", move |mut ctx| async move {
            let child = ctx
                .spawn("helper", "main", move |mut c| async move {
                    let _ = c.read(&shared, "h::read").await?;
                    Ok(())
                })
                .await?;
            for _ in 0..n {
                ctx.recv(&done, "c::recv").await?;
            }
            ctx.join(child, "c::join").await?;
            Ok(())
        });
    }
}

/// Replays the trace through the same happens-before edges the race
/// detector uses, returning each task-attributed event's clock (after its
/// tick) in trace order.
fn event_clocks(program: &MixedSync, seed: u64) -> Vec<(TaskId, VectorClock)> {
    use std::collections::{HashMap, VecDeque};
    let out = run_program(
        program,
        RunConfig::with_seed(seed),
        Box::new(RandomPolicy::new(seed)),
        vec![],
    );
    let mut tasks: HashMap<u32, VectorClock> = HashMap::new();
    let mut locks: HashMap<u32, VectorClock> = HashMap::new();
    let mut chans: HashMap<u32, VecDeque<VectorClock>> = HashMap::new();
    let mut clocks = Vec::new();
    for (_, event) in out.trace() {
        match event {
            Event::TaskSpawn { parent, child, .. } => {
                if let Some(p) = parent {
                    let pvc = tasks.entry(p.0).or_default().clone();
                    tasks.entry(child.0).or_default().join(&pvc);
                }
                tasks.entry(child.0).or_default().tick(*child);
                clocks.push((*child, tasks[&child.0].clone()));
                continue;
            }
            Event::LockAcquire { task, lock, .. } => {
                if let Some(lvc) = locks.get(&lock.0).cloned() {
                    tasks.entry(task.0).or_default().join(&lvc);
                }
            }
            Event::LockRelease { task, lock, .. } => {
                let c = tasks.entry(task.0).or_default();
                c.tick(*task);
                locks.insert(lock.0, c.clone());
                clocks.push((*task, c.clone()));
                continue;
            }
            Event::Send { task, chan, .. } => {
                let c = tasks.entry(task.0).or_default();
                c.tick(*task);
                chans.entry(chan.0).or_default().push_back(c.clone());
                clocks.push((*task, c.clone()));
                continue;
            }
            Event::Recv { task, chan, .. } => {
                if let Some(mvc) = chans.entry(chan.0).or_default().pop_front() {
                    tasks.entry(task.0).or_default().join(&mvc);
                }
            }
            Event::Joined { task, target, .. } => {
                let tvc = tasks.entry(target.0).or_default().clone();
                tasks.entry(task.0).or_default().join(&tvc);
            }
            _ => {}
        }
        if let Some(task) = event.task() {
            let c = tasks.entry(task.0).or_default();
            c.tick(task);
            clocks.push((task, c.clone()));
        }
    }
    clocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Happens-before must agree with the simulator's event order: a
    /// task's clocks grow strictly along its own event sequence, and no
    /// later event is ever strictly below an earlier one (an hb edge can
    /// never point backwards in trace order).
    #[test]
    fn happens_before_agrees_with_trace_order(
        workers in 1u32..4,
        iters in 1i64..5,
        seed in 0u64..500,
    ) {
        let clocks = event_clocks(&MixedSync { workers, iters }, seed);
        prop_assert!(!clocks.is_empty());

        // Program order: strictly increasing per task.
        let mut last: std::collections::HashMap<u32, VectorClock> = Default::default();
        for (task, clock) in &clocks {
            if let Some(prev) = last.get(&task.0) {
                prop_assert!(
                    prev.leq(clock) && prev != clock,
                    "task {task}: clock did not strictly advance ({prev} then {clock})"
                );
            }
            last.insert(task.0, clock.clone());
        }

        // Cross-task: happens-before never contradicts trace order.
        let sample: Vec<_> = clocks.iter().take(250).collect();
        for (i, (ti, ci)) in sample.iter().enumerate() {
            for (tj, cj) in sample.iter().skip(i + 1) {
                if ti == tj {
                    continue;
                }
                prop_assert!(
                    !(cj.leq(ci) && cj != ci),
                    "event by {tj} at a later trace position sits strictly \
                     below an earlier event by {ti} ({cj} < {ci})"
                );
            }
        }
    }
}
