//! Lost-update detection: interleaving analysis for read-modify-write
//! races.
//!
//! A *lost update* happens when task A reads a variable, task B writes it,
//! and A then writes back a value computed from its stale read — B's write
//! vanishes. This is the second manifestation of Hypertable issue 63 (a
//! migration's index partition clobbered by a concurrent commit, or vice
//! versa), and a generally useful root-cause predicate building block.

use dd_sim::{Event, Registry, TaskId, VarId};
use dd_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One detected lost update.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LostUpdate {
    /// The variable.
    pub var: VarId,
    /// The variable's name (empty if the registry does not know it).
    pub var_name: String,
    /// The task whose stale write clobbered another's.
    pub writer: TaskId,
    /// The task whose intermediate write was lost.
    pub overwritten: TaskId,
    /// Step of the clobbering write.
    pub step: u64,
}

/// Scans a trace for lost updates on variables accepted by `name_filter`.
pub fn lost_updates(
    trace: &Trace,
    registry: &Registry,
    name_filter: impl Fn(&str) -> bool,
) -> Vec<LostUpdate> {
    // Per variable: each task's pending read step, and writes since.
    #[derive(Default)]
    struct VarState {
        pending_reads: HashMap<u32, u64>,
        writes: Vec<(TaskId, u64)>,
    }
    let mut vars: HashMap<u32, VarState> = HashMap::new();
    let mut out = Vec::new();

    let var_name =
        |v: VarId| -> String { registry.vars.get(v.index()).cloned().unwrap_or_default() };

    for e in trace.iter() {
        match &e.event {
            Event::Read { task, var, .. } => {
                if !name_filter(&var_name(*var)) {
                    continue;
                }
                vars.entry(var.0)
                    .or_default()
                    .pending_reads
                    .insert(task.0, e.meta.step);
            }
            Event::Write { task, var, .. } => {
                if !name_filter(&var_name(*var)) {
                    continue;
                }
                let st = vars.entry(var.0).or_default();
                if let Some(&read_step) = st.pending_reads.get(&task.0) {
                    // Any other task's write between this task's read and
                    // this write is clobbered.
                    if let Some(&(victim, _)) = st
                        .writes
                        .iter()
                        .find(|(w, s)| *w != *task && *s > read_step && *s < e.meta.step)
                    {
                        out.push(LostUpdate {
                            var: *var,
                            var_name: var_name(*var),
                            writer: *task,
                            overwritten: victim,
                            step: e.meta.step,
                        });
                    }
                }
                st.pending_reads.remove(&task.0);
                st.writes.push((*task, e.meta.step));
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{EventMeta, Value};

    fn ev(step: u64, event: Event) -> (EventMeta, Event) {
        (EventMeta { step, time: step }, event)
    }

    fn read(step: u64, task: u32, var: u32) -> (EventMeta, Event) {
        ev(
            step,
            Event::Read {
                task: TaskId(task),
                var: VarId(var),
                value: Value::Int(0),
                site: "s".into(),
            },
        )
    }

    fn write(step: u64, task: u32, var: u32) -> (EventMeta, Event) {
        ev(
            step,
            Event::Write {
                task: TaskId(task),
                var: VarId(var),
                value: Value::Int(1),
                site: "s".into(),
            },
        )
    }

    fn registry_with_var() -> Registry {
        Registry {
            vars: vec!["x".into()],
            ..Registry::default()
        }
    }

    #[test]
    fn interleaved_rmw_is_flagged() {
        // A reads, B writes, A writes → B's write lost.
        let trace = Trace::from_events(vec![read(0, 0, 0), write(1, 1, 0), write(2, 0, 0)]);
        let lu = lost_updates(&trace, &registry_with_var(), |_| true);
        assert_eq!(lu.len(), 1);
        assert_eq!(lu[0].writer, TaskId(0));
        assert_eq!(lu[0].overwritten, TaskId(1));
    }

    #[test]
    fn serialized_rmw_is_clean() {
        // A: read, write; then B: read, write — no interleaving.
        let trace = Trace::from_events(vec![
            read(0, 0, 0),
            write(1, 0, 0),
            read(2, 1, 0),
            write(3, 1, 0),
        ]);
        assert!(lost_updates(&trace, &registry_with_var(), |_| true).is_empty());
    }

    #[test]
    fn same_task_interleaving_is_not_a_lost_update() {
        let trace = Trace::from_events(vec![read(0, 0, 0), write(1, 0, 0), write(2, 0, 0)]);
        assert!(lost_updates(&trace, &registry_with_var(), |_| true).is_empty());
    }

    #[test]
    fn name_filter_limits_scope() {
        let trace = Trace::from_events(vec![read(0, 0, 0), write(1, 1, 0), write(2, 0, 0)]);
        assert!(lost_updates(&trace, &registry_with_var(), |n| n == "y").is_empty());
        assert_eq!(
            lost_updates(&trace, &registry_with_var(), |n| n == "x").len(),
            1
        );
    }
}
