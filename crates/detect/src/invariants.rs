//! Dynamic invariant inference and runtime monitoring (data-based
//! selection, §3.1.2).
//!
//! Following the paper's proposal (citing Ernst et al.'s dynamic invariant
//! detection), invariants are *learned* from probe samples in passing
//! training runs before release. In production the [`InvariantMonitor`]
//! watches the same probes; a violation signals that execution is likely on
//! an error path, which RCSE uses to dial recording fidelity up.

use dd_sim::{observer_boilerplate, Event, EventMeta, Observer, Value};
use dd_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An invariant over one probe point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Invariant {
    /// The probe always had exactly this value.
    Const(Value),
    /// Integer probe within an inclusive range.
    Range {
        /// Smallest training value.
        min: i64,
        /// Largest training value.
        max: i64,
    },
    /// The probe took one of at most a few distinct values.
    OneOf(BTreeSet<Value>),
}

impl Invariant {
    /// Returns `true` if `value` satisfies this invariant.
    pub fn holds(&self, value: &Value) -> bool {
        match self {
            Invariant::Const(v) => v == value,
            Invariant::Range { min, max } => {
                value.as_int().is_some_and(|i| (*min..=*max).contains(&i))
            }
            Invariant::OneOf(set) => set.contains(value),
        }
    }
}

/// A set of learned invariants, keyed by probe name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvariantSet {
    invariants: BTreeMap<String, Invariant>,
}

/// Maximum cardinality for [`Invariant::OneOf`] before generalising.
const ONE_OF_LIMIT: usize = 8;

/// Slack added to learned integer ranges, as a fraction of the observed
/// span (Daikon-style confidence widening to reduce brittle invariants).
const RANGE_SLACK_NUM: i64 = 1;
const RANGE_SLACK_DEN: i64 = 4;

impl InvariantSet {
    /// Learns invariants from the probe samples in training traces.
    ///
    /// For each probe name: if all samples are equal, learn [`Invariant::Const`];
    /// else if all are integers, learn a slack-widened [`Invariant::Range`];
    /// else if few distinct values, learn [`Invariant::OneOf`]; otherwise
    /// learn nothing for that probe.
    pub fn infer(training: &[Trace]) -> Self {
        let mut samples: BTreeMap<String, Vec<Value>> = BTreeMap::new();
        for trace in training {
            for e in trace.iter() {
                if let Event::Probe { name, value, .. } = &e.event {
                    samples.entry(name.clone()).or_default().push(value.clone());
                }
            }
        }
        let mut invariants = BTreeMap::new();
        for (name, vals) in samples {
            if vals.is_empty() {
                continue;
            }
            let distinct: BTreeSet<Value> = vals.iter().cloned().collect();
            if distinct.len() == 1 {
                invariants.insert(
                    name,
                    Invariant::Const(distinct.into_iter().next().expect("len checked")),
                );
                continue;
            }
            let ints: Option<Vec<i64>> = vals.iter().map(Value::as_int).collect();
            if let Some(ints) = ints {
                let min = *ints.iter().min().expect("non-empty");
                let max = *ints.iter().max().expect("non-empty");
                let slack = ((max - min) * RANGE_SLACK_NUM / RANGE_SLACK_DEN).max(0);
                invariants.insert(
                    name,
                    Invariant::Range {
                        min: min - slack,
                        max: max + slack,
                    },
                );
                continue;
            }
            if distinct.len() <= ONE_OF_LIMIT {
                invariants.insert(name, Invariant::OneOf(distinct));
            }
        }
        InvariantSet { invariants }
    }

    /// Adds or replaces an invariant by hand (developer-provided predicate).
    pub fn insert(&mut self, probe: &str, inv: Invariant) {
        self.invariants.insert(probe.to_owned(), inv);
    }

    /// Looks up the invariant for a probe.
    pub fn get(&self, probe: &str) -> Option<&Invariant> {
        self.invariants.get(probe)
    }

    /// Number of learned invariants.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Returns `true` if nothing was learned.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Checks a sample; `true` means it satisfies the (possibly absent)
    /// invariant.
    pub fn check(&self, probe: &str, value: &Value) -> bool {
        self.invariants
            .get(probe)
            .is_none_or(|inv| inv.holds(value))
    }
}

/// One observed invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The probe that violated.
    pub probe: String,
    /// The offending value.
    pub value: Value,
    /// Step of the violation.
    pub step: u64,
    /// Execution-clock time of the violation.
    pub time: u64,
}

/// Online monitor for a learned [`InvariantSet`].
#[derive(Debug, Default)]
pub struct InvariantMonitor {
    set: InvariantSet,
    violations: Vec<Violation>,
    /// Wall ticks charged per probe check when run online.
    pub cost_per_check: u64,
}

impl InvariantMonitor {
    /// Creates a monitor for the given invariants.
    pub fn new(set: InvariantSet) -> Self {
        InvariantMonitor {
            set,
            violations: Vec::new(),
            cost_per_check: 0,
        }
    }

    /// Creates a monitor charging `cost` per probe check.
    pub fn with_cost(set: InvariantSet, cost: u64) -> Self {
        InvariantMonitor {
            set,
            violations: Vec::new(),
            cost_per_check: cost,
        }
    }

    /// Violations seen so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Returns `true` if any violation has fired.
    pub fn fired(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Processes one event; returns `true` on a new violation.
    pub fn handle(&mut self, meta: &EventMeta, event: &Event) -> bool {
        if let Event::Probe { name, value, .. } = event {
            if !self.set.check(name, value) {
                self.violations.push(Violation {
                    probe: name.clone(),
                    value: value.clone(),
                    step: meta.step,
                    time: meta.time,
                });
                return true;
            }
        }
        false
    }
}

impl Observer for InvariantMonitor {
    fn name(&self) -> &'static str {
        "invariant-monitor"
    }

    fn on_event(&mut self, meta: &EventMeta, event: &Event) -> u64 {
        self.handle(meta, event);
        match event {
            Event::Probe { .. } => self.cost_per_check,
            _ => 0,
        }
    }

    observer_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::TaskId;

    fn probe_trace(name: &str, values: &[i64]) -> Trace {
        Trace::from_events(
            values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    (
                        EventMeta {
                            step: i as u64,
                            time: i as u64,
                        },
                        Event::Probe {
                            task: TaskId(0),
                            name: name.to_owned(),
                            value: Value::Int(v),
                            site: "s".into(),
                        },
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn constant_probe_learns_const() {
        let set = InvariantSet::infer(&[probe_trace("mode", &[1, 1, 1])]);
        assert_eq!(set.get("mode"), Some(&Invariant::Const(Value::Int(1))));
        assert!(set.check("mode", &Value::Int(1)));
        assert!(!set.check("mode", &Value::Int(2)));
    }

    #[test]
    fn integer_probe_learns_widened_range() {
        let set = InvariantSet::infer(&[probe_trace("qlen", &[0, 4, 8])]);
        match set.get("qlen") {
            Some(Invariant::Range { min, max }) => {
                // Span 8, slack 2.
                assert_eq!((*min, *max), (-2, 10));
            }
            other => panic!("expected range, got {other:?}"),
        }
        assert!(set.check("qlen", &Value::Int(10)));
        assert!(!set.check("qlen", &Value::Int(50)));
    }

    #[test]
    fn mixed_values_learn_one_of() {
        let t = Trace::from_events(vec![
            (
                EventMeta { step: 0, time: 0 },
                Event::Probe {
                    task: TaskId(0),
                    name: "state".into(),
                    value: Value::Str("idle".into()),
                    site: "s".into(),
                },
            ),
            (
                EventMeta { step: 1, time: 1 },
                Event::Probe {
                    task: TaskId(0),
                    name: "state".into(),
                    value: Value::Str("busy".into()),
                    site: "s".into(),
                },
            ),
        ]);
        let set = InvariantSet::infer(&[t]);
        assert!(set.check("state", &Value::Str("idle".into())));
        assert!(!set.check("state", &Value::Str("panic".into())));
    }

    #[test]
    fn unknown_probe_always_passes() {
        let set = InvariantSet::infer(&[]);
        assert!(set.check("anything", &Value::Int(999)));
        assert!(set.is_empty());
    }

    #[test]
    fn inferred_invariants_hold_on_training_data() {
        let traces = vec![probe_trace("a", &[3, 7, 5]), probe_trace("a", &[4, 6, 2])];
        let set = InvariantSet::infer(&traces);
        for t in &traces {
            for (_, v) in t.probes("a") {
                assert!(set.check("a", v));
            }
        }
    }

    #[test]
    fn monitor_fires_on_violation() {
        let set = InvariantSet::infer(&[probe_trace("qlen", &[0, 2, 4])]);
        let mut mon = InvariantMonitor::new(set);
        let meta = EventMeta { step: 9, time: 9 };
        let ok_event = Event::Probe {
            task: TaskId(0),
            name: "qlen".into(),
            value: Value::Int(3),
            site: "s".into(),
        };
        assert!(!mon.handle(&meta, &ok_event));
        let bad_event = Event::Probe {
            task: TaskId(0),
            name: "qlen".into(),
            value: Value::Int(100),
            site: "s".into(),
        };
        assert!(mon.handle(&meta, &bad_event));
        assert!(mon.fired());
        assert_eq!(mon.violations()[0].probe, "qlen");
    }

    #[test]
    fn manual_invariants_can_be_added() {
        let mut set = InvariantSet::default();
        set.insert("req_size", Invariant::Range { min: 0, max: 1024 });
        assert!(set.check("req_size", &Value::Int(512)));
        assert!(!set.check("req_size", &Value::Int(4096)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn serde_round_trip() {
        let set = InvariantSet::infer(&[probe_trace("x", &[1, 2, 3])]);
        let s = serde_json::to_string(&set).unwrap();
        let back: InvariantSet = serde_json::from_str(&s).unwrap();
        assert_eq!(set, back);
    }
}
