//! Happens-before data-race detection.
//!
//! A vector-clock detector in the Djit+ family: it maintains a clock per
//! task, per lock, per channel message and per condition-variable
//! notification, and checks every shared access against the variable's last
//! writer and the readers since. Two accesses to the same variable race when
//! at least one is a write and their clocks are incomparable.
//!
//! The detector runs either online (as an [`Observer`]) or offline over a
//! recorded [`Trace`]. Online it is also usable as an RCSE *trigger*: the
//! moment a race is detected, recording fidelity can be dialed up
//! (§3.1.3 of the paper).

use crate::vclock::VectorClock;
use dd_sim::{observer_boilerplate, AccessKind, ChanId, Event, EventMeta, Observer, TaskId, VarId};
use dd_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// One endpoint of a racing pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RaceEndpoint {
    /// The accessing task.
    pub task: TaskId,
    /// Read or write.
    pub kind: AccessKind,
    /// Program site of the access.
    pub site: String,
}

/// A detected data race.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaceReport {
    /// The variable raced on.
    pub var: VarId,
    /// The earlier access.
    pub first: RaceEndpoint,
    /// The later access (the one that triggered detection).
    pub second: RaceEndpoint,
    /// Step at which the race was detected.
    pub step: u64,
    /// Execution-clock time of detection.
    pub time: u64,
}

#[derive(Debug, Clone, Default)]
struct VarState {
    last_write: Option<(TaskId, String, VectorClock)>,
    /// Reader snapshots since the last write, coalesced per task.
    reads_since: BTreeMap<u32, (String, VectorClock)>,
}

/// The happens-before race detector.
#[derive(Debug, Default)]
pub struct HbRaceDetector {
    task_clocks: HashMap<u32, VectorClock>,
    lock_clocks: HashMap<u32, VectorClock>,
    /// Per-channel queue of sender-side clock snapshots (one per queued
    /// message), so each receive acquires exactly its message's clock.
    chan_clocks: HashMap<u32, VecDeque<VectorClock>>,
    vars: HashMap<u32, VarState>,
    races: Vec<RaceReport>,
    /// Dedup key: (var, first site, second site).
    seen: HashSet<(u32, String, String)>,
    /// Cost charged per access event when run as an observer (wall ticks).
    pub cost_per_access: u64,
}

impl HbRaceDetector {
    /// Creates a detector with zero observer cost (offline analysis).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector charging `cost_per_access` wall ticks per shared
    /// access when run online.
    pub fn with_cost(cost_per_access: u64) -> Self {
        HbRaceDetector {
            cost_per_access,
            ..Self::default()
        }
    }

    /// The races found so far.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }

    /// Consumes the detector, returning all race reports.
    pub fn into_races(self) -> Vec<RaceReport> {
        self.races
    }

    /// Returns `true` if any race has been found.
    pub fn found_any(&self) -> bool {
        !self.races.is_empty()
    }

    /// Runs the detector over a full recorded trace.
    pub fn analyze(trace: &Trace) -> Vec<RaceReport> {
        let mut d = HbRaceDetector::new();
        for e in trace.iter() {
            d.handle(&e.meta, &e.event);
        }
        d.into_races()
    }

    fn clock_mut(&mut self, task: TaskId) -> &mut VectorClock {
        self.task_clocks.entry(task.0).or_default()
    }

    fn chan_queue(&mut self, chan: ChanId) -> &mut VecDeque<VectorClock> {
        self.chan_clocks.entry(chan.0).or_default()
    }

    /// Processes one event; returns `true` if a *new* race was recorded.
    pub fn handle(&mut self, meta: &EventMeta, event: &Event) -> bool {
        let before = self.races.len();
        match event {
            Event::TaskSpawn { parent, child, .. } => {
                // Child inherits the parent's history.
                if let Some(p) = parent {
                    let pvc = self.clock_mut(*p).clone();
                    let cvc = self.clock_mut(*child);
                    cvc.join(&pvc);
                }
                let child = *child;
                let v = self.clock_mut(child).tick(child);
                let _ = v;
            }
            Event::LockAcquire { task, lock, .. } => {
                if let Some(lvc) = self.lock_clocks.get(&lock.0).cloned() {
                    self.clock_mut(*task).join(&lvc);
                }
                self.clock_mut(*task).tick(*task);
            }
            Event::LockRelease { task, lock, .. } => {
                self.clock_mut(*task).tick(*task);
                let tvc = self.clock_mut(*task).clone();
                self.lock_clocks.insert(lock.0, tvc);
            }
            Event::CondWait { task, .. } => {
                // The wait releases the lock; the LockAcquire on wake-up (a
                // separate event) re-establishes edges.
                self.clock_mut(*task).tick(*task);
            }
            Event::CondNotify { task, woken, .. } => {
                self.clock_mut(*task).tick(*task);
                let nvc = self.clock_mut(*task).clone();
                for w in woken {
                    self.clock_mut(*w).join(&nvc);
                }
            }
            Event::Send { task, chan, .. } => {
                self.clock_mut(*task).tick(*task);
                let tvc = self.clock_mut(*task).clone();
                self.chan_queue(*chan).push_back(tvc);
            }
            Event::Recv { task, chan, .. } => {
                if let Some(mvc) = self.chan_queue(*chan).pop_front() {
                    self.clock_mut(*task).join(&mvc);
                }
                self.clock_mut(*task).tick(*task);
            }
            Event::Joined { task, target, .. } => {
                let tvc = self.clock_mut(*target).clone();
                self.clock_mut(*task).join(&tvc);
                self.clock_mut(*task).tick(*task);
            }
            Event::TaskExit { task, .. } => {
                self.clock_mut(*task).tick(*task);
            }
            Event::Read {
                task, var, site, ..
            } => {
                self.clock_mut(*task).tick(*task);
                self.check_read(meta, *task, *var, site);
            }
            Event::Write {
                task, var, site, ..
            } => {
                self.clock_mut(*task).tick(*task);
                self.check_write(meta, *task, *var, site);
            }
            _ => {}
        }
        self.races.len() > before
    }

    fn check_read(&mut self, meta: &EventMeta, task: TaskId, var: VarId, site: &str) {
        let tvc = self.task_clocks.get(&task.0).cloned().unwrap_or_default();
        let state = self.vars.entry(var.0).or_default();
        if let Some((wt, wsite, wvc)) = &state.last_write {
            if *wt != task && !wvc.leq(&tvc) {
                let report = RaceReport {
                    var,
                    first: RaceEndpoint {
                        task: *wt,
                        kind: AccessKind::Write,
                        site: wsite.clone(),
                    },
                    second: RaceEndpoint {
                        task,
                        kind: AccessKind::Read,
                        site: site.to_owned(),
                    },
                    step: meta.step,
                    time: meta.time,
                };
                let key = (var.0, report.first.site.clone(), report.second.site.clone());
                if self.seen.insert(key) {
                    self.races.push(report);
                }
            }
        }
        state.reads_since.insert(task.0, (site.to_owned(), tvc));
    }

    fn check_write(&mut self, meta: &EventMeta, task: TaskId, var: VarId, site: &str) {
        let tvc = self.task_clocks.get(&task.0).cloned().unwrap_or_default();
        let state = self.vars.entry(var.0).or_default();
        let mut reports = Vec::new();
        if let Some((wt, wsite, wvc)) = &state.last_write {
            if *wt != task && !wvc.leq(&tvc) {
                reports.push(RaceReport {
                    var,
                    first: RaceEndpoint {
                        task: *wt,
                        kind: AccessKind::Write,
                        site: wsite.clone(),
                    },
                    second: RaceEndpoint {
                        task,
                        kind: AccessKind::Write,
                        site: site.to_owned(),
                    },
                    step: meta.step,
                    time: meta.time,
                });
            }
        }
        for (rt, (rsite, rvc)) in &state.reads_since {
            if *rt != task.0 && !rvc.leq(&tvc) {
                reports.push(RaceReport {
                    var,
                    first: RaceEndpoint {
                        task: TaskId(*rt),
                        kind: AccessKind::Read,
                        site: rsite.clone(),
                    },
                    second: RaceEndpoint {
                        task,
                        kind: AccessKind::Write,
                        site: site.to_owned(),
                    },
                    step: meta.step,
                    time: meta.time,
                });
            }
        }
        state.last_write = Some((task, site.to_owned(), tvc));
        state.reads_since.clear();
        for report in reports {
            let key = (var.0, report.first.site.clone(), report.second.site.clone());
            if self.seen.insert(key) {
                self.races.push(report);
            }
        }
    }
}

impl Observer for HbRaceDetector {
    fn name(&self) -> &'static str {
        "hb-race-detector"
    }

    fn on_event(&mut self, meta: &EventMeta, event: &Event) -> u64 {
        self.handle(meta, event);
        match event {
            Event::Read { .. } | Event::Write { .. } => self.cost_per_access,
            _ => 0,
        }
    }

    observer_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{run_program, Builder, ChanClass, Program, RandomPolicy, RunConfig};

    struct Racy;
    impl Program for Racy {
        fn name(&self) -> &'static str {
            "racy"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let x = b.var("x", 0i64);
            for i in 0..2 {
                b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                    let v = ctx.read(&x, "w::read").await?;
                    ctx.write(&x, v + 1, "w::write").await
                });
            }
        }
    }

    struct LockedProgram;
    impl Program for LockedProgram {
        fn name(&self) -> &'static str {
            "locked"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let x = b.var("x", 0i64);
            let m = b.mutex("m");
            for i in 0..2 {
                b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                    ctx.lock(m, "w::lock").await?;
                    let v = ctx.read(&x, "w::read").await?;
                    ctx.write(&x, v + 1, "w::write").await?;
                    ctx.unlock(m, "w::unlock").await
                });
            }
        }
    }

    struct ChannelProgram;
    impl Program for ChannelProgram {
        fn name(&self) -> &'static str {
            "chan_sync"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let x = b.var("x", 0i64);
            let ch = b.channel::<i64>("sync", ChanClass::Local);
            b.spawn("producer", "g", move |mut ctx| async move {
                ctx.write(&x, 41, "prod::write").await?;
                ctx.send(&ch, 1, "prod::send").await
            });
            b.spawn("consumer", "g", move |mut ctx| async move {
                ctx.recv(&ch, "cons::recv").await?;
                let v = ctx.read(&x, "cons::read").await?;
                ctx.write(&x, v + 1, "cons::write").await
            });
        }
    }

    fn trace_of(p: &dyn Program, seed: u64) -> Trace {
        let out = run_program(
            p,
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        Trace::from_run(&out)
    }

    #[test]
    fn unsynchronised_accesses_race() {
        let races = HbRaceDetector::analyze(&trace_of(&Racy, 1));
        assert!(!races.is_empty(), "expected a race on x");
        assert!(races.iter().any(|r| r.second.site.starts_with("w::")));
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        for seed in 0..8 {
            let races = HbRaceDetector::analyze(&trace_of(&LockedProgram, seed));
            assert!(races.is_empty(), "seed {seed}: false positive {races:?}");
        }
    }

    #[test]
    fn channel_sync_orders_accesses() {
        for seed in 0..8 {
            let races = HbRaceDetector::analyze(&trace_of(&ChannelProgram, seed));
            assert!(races.is_empty(), "seed {seed}: false positive {races:?}");
        }
    }

    #[test]
    fn online_detection_matches_offline() {
        let out = run_program(
            &Racy,
            RunConfig::with_seed(3),
            Box::new(RandomPolicy::new(3)),
            vec![Box::new(HbRaceDetector::new())],
        );
        let online = out.observer::<HbRaceDetector>().unwrap();
        let offline = HbRaceDetector::analyze(&Trace::from_run(&out));
        assert_eq!(online.races(), offline.as_slice());
    }

    #[test]
    fn spawn_edge_prevents_false_positive() {
        struct SpawnSync;
        impl Program for SpawnSync {
            fn name(&self) -> &'static str {
                "spawn_sync"
            }
            fn setup(&self, b: &mut Builder<'_>) {
                let x = b.var("x", 0i64);
                b.spawn("parent", "g", move |mut ctx| async move {
                    ctx.write(&x, 7, "parent::write").await?;
                    ctx.spawn("child", "g", move |mut cctx| async move {
                        let _ = cctx.read(&x, "child::read").await?;
                        Ok(())
                    })
                    .await?;
                    Ok(())
                });
            }
        }
        for seed in 0..8 {
            let races = HbRaceDetector::analyze(&trace_of(&SpawnSync, seed));
            assert!(
                races.is_empty(),
                "seed {seed}: spawn edge missing {races:?}"
            );
        }
    }

    #[test]
    fn join_edge_prevents_false_positive() {
        struct JoinSync;
        impl Program for JoinSync {
            fn name(&self) -> &'static str {
                "join_sync"
            }
            fn setup(&self, b: &mut Builder<'_>) {
                let x = b.var("x", 0i64);
                b.spawn("parent", "g", move |mut ctx| async move {
                    let child = ctx
                        .spawn("child", "g", move |mut cctx| async move {
                            cctx.write(&x, 9, "child::write").await
                        })
                        .await?;
                    ctx.join(child, "parent::join").await?;
                    let _ = ctx.read(&x, "parent::read").await?;
                    Ok(())
                });
            }
        }
        for seed in 0..8 {
            let races = HbRaceDetector::analyze(&trace_of(&JoinSync, seed));
            assert!(races.is_empty(), "seed {seed}: join edge missing {races:?}");
        }
    }

    #[test]
    fn races_are_deduplicated_by_site_pair() {
        struct ManyRaces;
        impl Program for ManyRaces {
            fn name(&self) -> &'static str {
                "many"
            }
            fn setup(&self, b: &mut Builder<'_>) {
                let x = b.var("x", 0i64);
                for i in 0..2 {
                    b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                        for _ in 0..50 {
                            let v = ctx.read(&x, "w::read").await?;
                            ctx.write(&x, v + 1, "w::write").await?;
                        }
                        Ok(())
                    });
                }
            }
        }
        let races = HbRaceDetector::analyze(&trace_of(&ManyRaces, 1));
        // At most a handful of distinct site pairs, not hundreds of reports.
        assert!(!races.is_empty());
        assert!(
            races.len() <= 4,
            "expected deduped reports, got {}",
            races.len()
        );
    }
}
