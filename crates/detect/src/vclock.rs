//! Vector clocks: the partial order underlying happens-before analysis.

use dd_sim::TaskId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse vector clock over task ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorClock {
    entries: BTreeMap<u32, u64>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the component for `task` (0 if absent).
    pub fn get(&self, task: TaskId) -> u64 {
        self.entries.get(&task.0).copied().unwrap_or(0)
    }

    /// Sets the component for `task`.
    pub fn set(&mut self, task: TaskId, v: u64) {
        if v == 0 {
            self.entries.remove(&task.0);
        } else {
            self.entries.insert(task.0, v);
        }
    }

    /// Increments `task`'s own component and returns the new value.
    pub fn tick(&mut self, task: TaskId) -> u64 {
        let e = self.entries.entry(task.0).or_insert(0);
        *e += 1;
        *e
    }

    /// Joins (pointwise max) another clock into this one.
    pub fn join(&mut self, other: &VectorClock) {
        for (&t, &v) in &other.entries {
            let e = self.entries.entry(t).or_insert(0);
            if v > *e {
                *e = v;
            }
        }
    }

    /// Returns `true` if `self ≤ other` pointwise (self happens-before or
    /// equals other).
    pub fn leq(&self, other: &VectorClock) -> bool {
        self.entries
            .iter()
            .all(|(&t, &v)| v <= other.entries.get(&t).copied().unwrap_or(0))
    }

    /// Returns `true` if the two clocks are incomparable (concurrent).
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Number of non-zero components.
    pub fn width(&self) -> usize {
        self.entries.len()
    }
}

impl core::fmt::Display for VectorClock {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{{")?;
        for (i, (t, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "t{t}:{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(pairs: &[(u32, u64)]) -> VectorClock {
        let mut c = VectorClock::new();
        for &(t, v) in pairs {
            c.set(TaskId(t), v);
        }
        c
    }

    #[test]
    fn tick_and_get() {
        let mut c = VectorClock::new();
        assert_eq!(c.get(TaskId(0)), 0);
        assert_eq!(c.tick(TaskId(0)), 1);
        assert_eq!(c.tick(TaskId(0)), 2);
        assert_eq!(c.get(TaskId(0)), 2);
        assert_eq!(c.width(), 1);
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = vc(&[(0, 3), (1, 1)]);
        let b = vc(&[(0, 1), (1, 5), (2, 2)]);
        a.join(&b);
        assert_eq!(a, vc(&[(0, 3), (1, 5), (2, 2)]));
    }

    #[test]
    fn leq_and_concurrency() {
        let a = vc(&[(0, 1)]);
        let b = vc(&[(0, 2), (1, 1)]);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        let c = vc(&[(1, 3)]);
        assert!(a.concurrent(&c));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn zero_clock_leq_everything() {
        let z = VectorClock::new();
        assert!(z.leq(&z));
        assert!(z.leq(&vc(&[(4, 9)])));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(vc(&[(0, 1), (2, 3)]).to_string(), "{t0:1, t2:3}");
    }

    #[test]
    fn serde_round_trip() {
        let a = vc(&[(0, 3), (7, 2)]);
        let s = serde_json::to_string(&a).unwrap();
        assert_eq!(serde_json::from_str::<VectorClock>(&s).unwrap(), a);
    }
}
