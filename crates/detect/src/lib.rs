//! # dd-detect — detectors for races, invariants and deviant behaviour
//!
//! The analysis machinery the paper's selection heuristics rely on:
//!
//! - [`VectorClock`] / [`HbRaceDetector`]: precise happens-before data-race
//!   detection (online or offline), used both for root-cause predicates and
//!   as a high-fidelity trigger.
//! - [`LocksetDetector`]: Eraser-style approximate detection — the cheap
//!   always-on "potential-bug detector" §3.1.3 proposes for dialing
//!   recording fidelity up.
//! - [`InvariantSet`] / [`InvariantMonitor`]: dynamic invariant inference
//!   over probe points and runtime monitoring (data-based selection,
//!   §3.1.2).
//! - [`TriggerDetector`]: the common trigger interface consumed by the RCSE
//!   fidelity controller in `dd-core`.

pub mod invariants;
pub mod lockset;
pub mod lostupdate;
pub mod race;
pub mod trigger;
pub mod vclock;

pub use invariants::{Invariant, InvariantMonitor, InvariantSet, Violation};
pub use lockset::{LocksetDetector, LocksetWarning, VarMode};
pub use lostupdate::{lost_updates, LostUpdate};
pub use race::{HbRaceDetector, RaceEndpoint, RaceReport};
pub use trigger::{default_triggers, CrashTrigger, TriggerDetector};
pub use vclock::VectorClock;
