//! Trigger detectors: the "potential-bug detectors" of §3.1.3.
//!
//! A trigger watches the event stream and fires when execution looks like it
//! is heading toward a failure — a race is detected, an invariant breaks, a
//! task crashes. The RCSE fidelity controller (in `dd-core`) dials recording
//! up when any trigger fires and back down after a quiet period.

use crate::invariants::{InvariantMonitor, InvariantSet};
use crate::lockset::LocksetDetector;
use crate::race::HbRaceDetector;
use dd_sim::{Event, EventMeta};

/// A potential-bug detector usable as an RCSE trigger.
pub trait TriggerDetector: Send + 'static {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Processes one event; returns `true` if the trigger fires *now*.
    fn observe(&mut self, meta: &EventMeta, event: &Event) -> bool;

    /// Wall-tick cost this detector charges for this event (its always-on
    /// runtime overhead).
    fn cost(&self, event: &Event) -> u64;
}

impl TriggerDetector for LocksetDetector {
    fn name(&self) -> &'static str {
        "lockset-trigger"
    }

    fn observe(&mut self, meta: &EventMeta, event: &Event) -> bool {
        self.handle(meta, event)
    }

    fn cost(&self, event: &Event) -> u64 {
        match event {
            Event::Read { .. } | Event::Write { .. } => self.cost_per_access,
            _ => 0,
        }
    }
}

impl TriggerDetector for HbRaceDetector {
    fn name(&self) -> &'static str {
        "hb-race-trigger"
    }

    fn observe(&mut self, meta: &EventMeta, event: &Event) -> bool {
        self.handle(meta, event)
    }

    fn cost(&self, event: &Event) -> u64 {
        match event {
            Event::Read { .. } | Event::Write { .. } => self.cost_per_access,
            _ => 0,
        }
    }
}

impl TriggerDetector for InvariantMonitor {
    fn name(&self) -> &'static str {
        "invariant-trigger"
    }

    fn observe(&mut self, meta: &EventMeta, event: &Event) -> bool {
        self.handle(meta, event)
    }

    fn cost(&self, event: &Event) -> u64 {
        match event {
            Event::Probe { .. } => self.cost_per_check,
            _ => 0,
        }
    }
}

/// A trigger that fires on any task crash or failed allocation — the
/// cheapest possible "deviant behaviour" signal (bug-fingerprinting style).
#[derive(Debug, Default)]
pub struct CrashTrigger;

impl TriggerDetector for CrashTrigger {
    fn name(&self) -> &'static str {
        "crash-trigger"
    }

    fn observe(&mut self, _meta: &EventMeta, event: &Event) -> bool {
        matches!(event, Event::Crash { .. } | Event::AllocFail { .. })
    }

    fn cost(&self, _event: &Event) -> u64 {
        0
    }
}

/// Builds the default trigger suite used by combined code/data selection:
/// a lockset race detector, an invariant monitor (if invariants were
/// learned), and the crash trigger.
pub fn default_triggers(
    invariants: Option<InvariantSet>,
    lockset_cost: u64,
) -> Vec<Box<dyn TriggerDetector>> {
    let mut v: Vec<Box<dyn TriggerDetector>> = vec![
        Box::new(LocksetDetector::with_cost(lockset_cost)),
        Box::new(CrashTrigger),
    ];
    if let Some(set) = invariants {
        v.push(Box::new(InvariantMonitor::new(set)));
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{TaskId, Value};

    #[test]
    fn crash_trigger_fires_on_crash_only() {
        let mut t = CrashTrigger;
        let meta = EventMeta { step: 0, time: 0 };
        assert!(!t.observe(
            &meta,
            &Event::Yield {
                task: TaskId(0),
                site: "s".into()
            }
        ));
        assert!(t.observe(
            &meta,
            &Event::Crash {
                task: TaskId(0),
                reason: "x".into(),
                site: "s".into()
            }
        ));
        assert!(t.observe(
            &meta,
            &Event::AllocFail {
                task: TaskId(0),
                requested: 1,
                budget: 0,
                site: "s".into()
            }
        ));
        assert_eq!(
            t.cost(&Event::Yield {
                task: TaskId(0),
                site: "s".into()
            }),
            0
        );
    }

    #[test]
    fn default_suite_composition() {
        let suite = default_triggers(None, 1);
        assert_eq!(suite.len(), 2);
        let mut set = InvariantSet::default();
        set.insert("x", crate::invariants::Invariant::Const(Value::Int(1)));
        let suite = default_triggers(Some(set), 1);
        assert_eq!(suite.len(), 3);
    }

    #[test]
    fn invariant_monitor_as_trigger() {
        let mut set = InvariantSet::default();
        set.insert("x", crate::invariants::Invariant::Const(Value::Int(1)));
        let mut mon = InvariantMonitor::new(set);
        let meta = EventMeta { step: 0, time: 0 };
        let bad = Event::Probe {
            task: TaskId(0),
            name: "x".into(),
            value: Value::Int(2),
            site: "s".into(),
        };
        assert!(TriggerDetector::observe(&mut mon, &meta, &bad));
    }
}
