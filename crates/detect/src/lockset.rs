//! Eraser-style lockset race detection.
//!
//! The classic low-overhead approximate detector: each shared variable keeps
//! a *candidate lockset* — the locks held at every access so far,
//! intersected. If the candidate set becomes empty while the variable is
//! write-shared, a potential race is reported. Unlike happens-before
//! detection this needs no vector clocks, which is why the paper's §3.1.3
//! proposes detectors of this class as cheap always-on triggers.

use dd_sim::{observer_boilerplate, Event, EventMeta, Observer, TaskId, VarId};
use dd_trace::Trace;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VarMode {
    /// Never accessed.
    Virgin,
    /// Only one task has touched it.
    Exclusive,
    /// Multiple tasks, reads only since sharing began.
    Shared,
    /// Multiple tasks with at least one write: lockset violations report.
    SharedModified,
}

/// A potential race flagged by the lockset discipline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocksetWarning {
    /// The variable.
    pub var: VarId,
    /// The access that emptied the candidate set.
    pub task: TaskId,
    /// Site of that access.
    pub site: String,
    /// Step at which it was flagged.
    pub step: u64,
}

#[derive(Debug, Clone)]
struct VarLockState {
    mode: VarMode,
    owner: Option<TaskId>,
    candidates: Option<BTreeSet<u32>>,
    reported: bool,
}

impl Default for VarLockState {
    fn default() -> Self {
        VarLockState {
            mode: VarMode::Virgin,
            owner: None,
            candidates: None,
            reported: false,
        }
    }
}

/// The lockset detector.
#[derive(Debug, Default)]
pub struct LocksetDetector {
    held: HashMap<u32, BTreeSet<u32>>,
    vars: HashMap<u32, VarLockState>,
    warnings: Vec<LocksetWarning>,
    /// Wall ticks charged per shared access when run online. The default 0
    /// models a sampled hardware-assisted detector (DataCollider-style).
    pub cost_per_access: u64,
}

impl LocksetDetector {
    /// Creates a detector with zero online cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector charging `cost_per_access` per shared access.
    pub fn with_cost(cost_per_access: u64) -> Self {
        LocksetDetector {
            cost_per_access,
            ..Self::default()
        }
    }

    /// Warnings so far.
    pub fn warnings(&self) -> &[LocksetWarning] {
        &self.warnings
    }

    /// Returns `true` if anything has been flagged.
    pub fn found_any(&self) -> bool {
        !self.warnings.is_empty()
    }

    /// Runs the detector over a recorded trace.
    pub fn analyze(trace: &Trace) -> Vec<LocksetWarning> {
        let mut d = LocksetDetector::new();
        for e in trace.iter() {
            d.handle(&e.meta, &e.event);
        }
        d.warnings
    }

    /// Processes one event; returns `true` if a *new* warning was recorded.
    pub fn handle(&mut self, meta: &EventMeta, event: &Event) -> bool {
        let before = self.warnings.len();
        match event {
            Event::LockAcquire { task, lock, .. } => {
                self.held.entry(task.0).or_default().insert(lock.0);
            }
            Event::LockRelease { task, lock, .. } => {
                if let Some(h) = self.held.get_mut(&task.0) {
                    h.remove(&lock.0);
                }
            }
            Event::Read {
                task, var, site, ..
            } => {
                self.access(meta, *task, *var, site, false);
            }
            Event::Write {
                task, var, site, ..
            } => {
                self.access(meta, *task, *var, site, true);
            }
            _ => {}
        }
        self.warnings.len() > before
    }

    fn access(&mut self, meta: &EventMeta, task: TaskId, var: VarId, site: &str, write: bool) {
        let held = self.held.get(&task.0).cloned().unwrap_or_default();
        let state = self.vars.entry(var.0).or_default();
        match state.mode {
            VarMode::Virgin => {
                state.mode = VarMode::Exclusive;
                state.owner = Some(task);
            }
            VarMode::Exclusive => {
                if state.owner != Some(task) {
                    state.mode = if write {
                        VarMode::SharedModified
                    } else {
                        VarMode::Shared
                    };
                    state.candidates = Some(held.clone());
                }
            }
            VarMode::Shared => {
                let c = state.candidates.get_or_insert_with(|| held.clone());
                *c = c.intersection(&held).copied().collect();
                if write {
                    state.mode = VarMode::SharedModified;
                }
            }
            VarMode::SharedModified => {
                let c = state.candidates.get_or_insert_with(|| held.clone());
                *c = c.intersection(&held).copied().collect();
            }
        }
        if state.mode == VarMode::SharedModified
            && state.candidates.as_ref().is_some_and(BTreeSet::is_empty)
            && !state.reported
        {
            state.reported = true;
            self.warnings.push(LocksetWarning {
                var,
                task,
                site: site.to_owned(),
                step: meta.step,
            });
        }
    }
}

impl Observer for LocksetDetector {
    fn name(&self) -> &'static str {
        "lockset-detector"
    }

    fn on_event(&mut self, meta: &EventMeta, event: &Event) -> u64 {
        self.handle(meta, event);
        match event {
            Event::Read { .. } | Event::Write { .. } => self.cost_per_access,
            _ => 0,
        }
    }

    observer_boilerplate!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{run_program, Builder, Program, RandomPolicy, RunConfig};

    struct Unlocked;
    impl Program for Unlocked {
        fn name(&self) -> &'static str {
            "unlocked"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let x = b.var("x", 0i64);
            for i in 0..2 {
                b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                    let v = ctx.read(&x, "w::read").await?;
                    ctx.write(&x, v + 1, "w::write").await
                });
            }
        }
    }

    struct Locked;
    impl Program for Locked {
        fn name(&self) -> &'static str {
            "locked"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let x = b.var("x", 0i64);
            let m = b.mutex("m");
            for i in 0..2 {
                b.spawn(&format!("w{i}"), "g", move |mut ctx| async move {
                    ctx.lock(m, "w::lock").await?;
                    let v = ctx.read(&x, "w::read").await?;
                    ctx.write(&x, v + 1, "w::write").await?;
                    ctx.unlock(m, "w::unlock").await
                });
            }
        }
    }

    fn trace_of(p: &dyn Program, seed: u64) -> Trace {
        let out = run_program(
            p,
            RunConfig::with_seed(seed),
            Box::new(RandomPolicy::new(seed)),
            vec![],
        );
        Trace::from_run(&out)
    }

    #[test]
    fn unlocked_sharing_is_flagged() {
        let warnings = LocksetDetector::analyze(&trace_of(&Unlocked, 1));
        assert_eq!(warnings.len(), 1, "one warning per variable");
    }

    #[test]
    fn consistent_locking_passes() {
        for seed in 0..8 {
            let warnings = LocksetDetector::analyze(&trace_of(&Locked, seed));
            assert!(warnings.is_empty(), "seed {seed}: {warnings:?}");
        }
    }

    #[test]
    fn exclusive_access_never_flagged() {
        struct Solo;
        impl Program for Solo {
            fn name(&self) -> &'static str {
                "solo"
            }
            fn setup(&self, b: &mut Builder<'_>) {
                let x = b.var("x", 0i64);
                b.spawn("only", "g", move |mut ctx| async move {
                    for _ in 0..10 {
                        let v = ctx.read(&x, "only::read").await?;
                        ctx.write(&x, v + 1, "only::write").await?;
                    }
                    Ok(())
                });
            }
        }
        assert!(LocksetDetector::analyze(&trace_of(&Solo, 1)).is_empty());
    }

    #[test]
    fn read_sharing_without_writes_passes() {
        struct Readers;
        impl Program for Readers {
            fn name(&self) -> &'static str {
                "readers"
            }
            fn setup(&self, b: &mut Builder<'_>) {
                let x = b.var("x", 42i64);
                for i in 0..3 {
                    b.spawn(&format!("r{i}"), "g", move |mut ctx| async move {
                        let _ = ctx.read(&x, "r::read").await?;
                        Ok(())
                    });
                }
            }
        }
        assert!(LocksetDetector::analyze(&trace_of(&Readers, 1)).is_empty());
    }

    #[test]
    fn lockset_is_cheaper_than_precise_detection_but_approximate() {
        // The lockset discipline flags consistent-lock programs never, and
        // unlocked write-sharing always — even when the particular
        // interleaving happened to be race-free, which is what makes it a
        // *potential-bug* detector (a trigger, not a verdict).
        let warnings = LocksetDetector::analyze(&trace_of(&Unlocked, 2));
        assert!(!warnings.is_empty());
    }
}
