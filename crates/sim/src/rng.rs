//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-for-bit reproducible across runs and across
//! dependency upgrades, so it ships its own small generator instead of
//! depending on a particular version of an external RNG crate. The generator
//! is `xoshiro256**` seeded through SplitMix64, the standard recommended
//! seeding procedure.

use serde::{Deserialize, Serialize};

/// Expands a 64-bit seed into a well-mixed stream (SplitMix64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a new stream from `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The simulator's deterministic RNG (`xoshiro256**`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetRng {
    s: [u64; 4],
    /// Number of 64-bit draws made so far (part of recorded run metadata).
    draws: u64,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // xoshiro must not start in the all-zero state.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        DetRng { s, draws: 0 }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Debiased multiply-shift (Lemire). The retry loop terminates with
        // overwhelming probability after one or two draws.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick_index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Returns `true` with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }

    /// Returns the number of 64-bit draws made so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// The raw generator state — the four `xoshiro256**` state words plus
    /// the draw count — for feeding into state digests. Two generators with
    /// equal digest words produce identical future streams.
    pub fn digest_words(&self) -> [u64; 5] {
        [self.s[0], self.s[1], self.s[2], self.s[3], self.draws]
    }

    /// Forks a child generator whose stream is independent of the parent's
    /// subsequent output.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain SplitMix64.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = DetRng::seed_from(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        DetRng::seed_from(1).next_below(0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = DetRng::seed_from(99);
        let hits = (0..10_000).filter(|_| r.chance(1, 4)).count();
        assert!((2000..3000).contains(&hits), "got {hits} hits for p=1/4");
    }

    #[test]
    fn draw_count_tracks() {
        let mut r = DetRng::seed_from(5);
        r.next_u64();
        r.next_u64();
        assert_eq!(r.draws(), 2);
    }

    #[test]
    fn fork_is_deterministic_but_distinct() {
        let mut a = DetRng::seed_from(11);
        let mut b = DetRng::seed_from(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        assert_ne!(fa.next_u64(), a.next_u64());
    }

    #[test]
    fn serde_round_trip_preserves_stream() {
        let mut r = DetRng::seed_from(3);
        r.next_u64();
        let json = serde_json::to_string(&r).unwrap();
        let mut back: DetRng = serde_json::from_str(&json).unwrap();
        assert_eq!(r.next_u64(), back.next_u64());
    }
}
