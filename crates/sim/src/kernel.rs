//! Kernel state and operation execution.
//!
//! The kernel owns every machine object (tasks, variables, locks, condition
//! variables, channels, ports), the virtual clocks, the RNG, the pending
//! environment events, and the run's observers. The whole simulation is
//! single-threaded: task bodies are coroutines polled by the driver loop,
//! so exactly one thing touches the kernel at a time — the driver (making
//! scheduling decisions) or the operation it is executing on behalf of the
//! granted task. All methods take `&mut self`; there is no locking here.
//!
//! # The `WorldState` / shell split
//!
//! The kernel is two layers:
//!
//! - `WorldState` — every piece of *machine* state a run evolves: tasks,
//!   variables, locks, condition variables, channels, ports, clocks, RNG,
//!   pending timers/inputs/crashes, the trace, the decision stream, each
//!   parked task's announced operation (`TaskRec::pending_op`), and the
//!   per-task syscall-result log. It is plain data and `Clone`: cloning it
//!   at a decision point yields a [`WorldSnapshot`] from which the run can
//!   be resumed deterministically (restore + re-run ⇒ the identical trace).
//!   Within the world, *hot* machine state (bounded by the number of live
//!   objects) is cloned eagerly, while the append-only history logs — the
//!   trace, decisions, enabled sets, outputs, consumed inputs, crashes and
//!   syscall logs — live in [`ChunkedLog`]s whose sealed chunks are
//!   `Arc`-shared between the run and every snapshot, so snapshot cost is
//!   O(live state), independent of how long the run has been going (see
//!   [`WorldSnapshot::cost`]).
//! - The shell — everything tied to *this* execution of the run rather
//!   than the machine it simulates: observers, the scheduling policy, the
//!   nondeterminism-override hook, and collected snapshots. None of it is
//!   cloneable and none of it is needed to reconstruct the machine. (The
//!   coroutine futures themselves live one layer further out, in the
//!   driver's engine — a future is just the *continuation* of a task body;
//!   everything it has told the machine is already in the world.)
//!
//! Restoring a snapshot cannot clone the original coroutine futures (Rust
//! futures are not `Clone`), so `resume` re-runs each started task body in
//! *fast-forward* mode: completed operations are fed back from the world's
//! syscall log without touching kernel state, decisions, or events — those
//! are already part of the restored world — until the body re-reaches the
//! sync point it was parked at when the snapshot was taken. This is a thin
//! in-engine replay loop (one synchronous poll per task); there are no
//! threads to re-attach and no per-task runtime state to reconstruct.
//!
//! # Thread-safety of the split
//!
//! The split is also a *thread-safety* boundary. `WorldState` and
//! [`WorldSnapshot`] are `Send + Sync`: a parallel schedule explorer keeps
//! one shared pool of snapshots and hands them to worker threads, each of
//! which owns a private execution shell — its own observers, policy clone
//! ([`SchedulePolicy::clone_box`] is `Send`-safe), and its own coroutine
//! engine (futures are engine-local and never cross threads). Nothing in
//! the shell crosses threads; everything in the world may.

use crate::config::{ChanClass, CheckpointPlan, EnvConfig, NondetOverride, OpCosts, TimedInput};
use crate::conflict::OpDesc;
use crate::error::{SimError, SimResult, StopReason};
use crate::event::{DecisionKind, Event, EventMeta, Observer};
use crate::history::ChunkedLog;
use crate::ids::{ChanId, CondvarId, LockId, PortId, Site, TaskId, VarId, KERNEL_SITE};
use crate::policy::SchedulePolicy;
use crate::rng::DetRng;
use crate::snapshot::{SnapshotMark, SnapshotSink};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// What a blocked task is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum BlockOn {
    /// Lock is held by someone else.
    Lock(LockId),
    /// Channel is empty (with an optional wake deadline).
    Chan { chan: ChanId, deadline: Option<u64> },
    /// Waiting for a condition-variable notification.
    Cvar(CondvarId),
    /// Input port has no data yet.
    Port(PortId),
    /// Waiting for a task to exit.
    Join(TaskId),
    /// Sleeping until an absolute virtual time.
    Timer { until: u64 },
}

/// Scheduling phase of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum Phase {
    /// Parked at a sync point; eligible to be granted.
    Ready,
    /// Granted by the driver; about to execute its operation.
    Granted,
    /// Executing user code between operations.
    Running,
    /// Waiting for a resource or timer.
    Blocked(BlockOn),
    /// Finished (`ok = false` on error or panic).
    Exited { ok: bool },
}

/// Direction of an external port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortDir {
    /// Scripted inputs flow in.
    In,
    /// Observable outputs flow out.
    Out,
}

/// Snapshot-able per-task machine state. A task's *continuation* (the
/// coroutine future for its body) lives outside the kernel, in the driver's
/// engine; everything the body has told the machine is here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TaskRec {
    pub name: String,
    pub group: String,
    pub phase: Phase,
    pub killed: bool,
    pub joiners: Vec<TaskId>,
    pub mem_used: u64,
    pub mem_budget: Option<u64>,
    /// Conflict footprint of the operation this task is parked on (set when
    /// the task announces at a sync point, cleared when the op completes).
    /// `None` means the task's next operation is not yet known — explorers
    /// must treat it as conflicting with everything.
    pub pending: Option<OpDesc>,
    /// The announced-but-not-completed operation itself, including any
    /// op-local state it accumulated across blocked attempts (a resolved
    /// recv deadline, a condvar wait past its enter stage, an absolute
    /// sleep time). Held *by value* in the world so a snapshot captures
    /// mid-operation progress; the driver moves it out to execute and puts
    /// it back if the op blocks.
    pub pending_op: Option<Op>,
}

/// One completed interaction between a task body and the kernel, recorded
/// (when checkpointing is enabled) so a restored run can fast-forward a
/// freshly rebuilt task coroutine to its snapshot position by feeding these
/// back.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum SysLogEntry {
    /// A completed operation's result.
    Ret(SimResult<Value>),
    /// A completed runtime spawn (the child's id).
    Spawn(TaskId),
    /// A `TaskCtx::now()` observation.
    Now(u64),
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct VarRec {
    pub name: String,
    pub value: Value,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct LockRec {
    pub name: String,
    pub holder: Option<TaskId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct CvarRec {
    pub name: String,
    /// FIFO of waiting tasks (each also remembers its lock in its op state).
    pub waiters: Vec<TaskId>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct ChanRec {
    pub name: String,
    pub class: ChanClass,
    pub queue: VecDeque<Value>,
    pub closed: bool,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PortRec {
    pub name: String,
    pub dir: PortDir,
    pub queue: VecDeque<Value>,
    /// Scripted inputs not yet delivered (pending arrival).
    pub remaining_inputs: usize,
}

/// A single observable output emitted by the program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputRecord {
    /// When it was emitted (exec clock).
    pub time: u64,
    /// The emitting task.
    pub task: TaskId,
    /// The output port.
    pub port: PortId,
    /// Port name (denormalised for convenience).
    pub port_name: String,
    /// The emitted value.
    pub value: Value,
}

/// A task crash (explicit failure or panic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecord {
    /// When it happened (exec clock).
    pub time: u64,
    /// The crashed task.
    pub task: TaskId,
    /// Description.
    pub reason: String,
    /// Program site (or `"panic"`).
    pub site: String,
}

/// One resolved nondeterministic decision, with enough context for both
/// exact replay (by task id) and systematic search (by candidate index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// What was decided.
    pub kind: DecisionKind,
    /// How many candidates there were.
    pub n: u32,
    /// Index of the chosen candidate.
    pub chosen_index: u32,
    /// The chosen task.
    pub chosen: TaskId,
}

struct ObserverSlot {
    obs: Box<dyn Observer>,
    cost: u64,
}

/// A pending scripted input (time-sorted, consumed front to back).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct PendingInput {
    time: u64,
    port: PortId,
    value: Value,
}

/// One recorded enabled set: every candidate task at a decision point with
/// its pending-operation conflict footprint.
pub type EnabledSet = Vec<(TaskId, Option<OpDesc>)>;

/// Chunk capacity of the per-task syscall logs. Deliberately smaller than
/// the [default](crate::history::DEFAULT_CHUNK_LEN): a snapshot copies one
/// tail *per task*, so the per-task bound is what keeps many-task worlds
/// cheap to clone.
const SYSLOG_CHUNK_LEN: usize = 64;

/// The complete snapshotable machine state of a run (see module docs).
///
/// Everything here is plain data: cloning a `WorldState` at a decision
/// point (no task granted or running) captures the run exactly, and a run
/// resumed from the clone evolves identically to the original. The
/// append-only history logs are [`ChunkedLog`]s, so the clone deep-copies
/// only the hot machine state plus each log's bounded tail; sealed history
/// chunks are shared by reference.
#[derive(Clone)]
pub(crate) struct WorldState {
    pub tasks: Vec<TaskRec>,
    pub vars: Vec<VarRec>,
    pub locks: Vec<LockRec>,
    pub cvars: Vec<CvarRec>,
    pub chans: Vec<ChanRec>,
    pub ports: Vec<PortRec>,

    /// Execution clock (virtual ticks; excludes instrumentation).
    pub time: u64,
    /// Total instrumentation cost charged by observers (wall ticks beyond
    /// `time`).
    pub wall_extra: u64,
    /// Successful operations so far.
    pub steps: u64,
    /// Events emitted so far.
    pub events: u64,

    pub rng: DetRng,

    /// Wake-up times for sleeping tasks and receive deadlines.
    pub timers: BinaryHeap<Reverse<(u64, u32)>>,
    /// Time-sorted scripted inputs not yet delivered.
    pub pending_inputs: VecDeque<PendingInput>,
    /// Time-sorted scheduled crashes not yet fired.
    pub pending_crashes: VecDeque<(u64, String)>,
    /// Time-sorted scheduled partition starts not yet fired
    /// (`(start, a, b)`).
    pub pending_partitions: VecDeque<(u64, String, String)>,
    /// Time-sorted scheduled partition heals not yet fired
    /// (`(heal, a, b)`).
    pub pending_heals: VecDeque<(u64, String, String)>,
    /// Currently active partitions, as order-normalised group-prefix pairs.
    pub active_partitions: BTreeSet<(String, String)>,
    /// Time-sorted scheduled restarts not yet fired.
    pub pending_restarts: VecDeque<(u64, String)>,
    /// Restart groups delivered by [`deliver_due`](Kernel::deliver_due) and
    /// not yet respawned. The driver drains this immediately after every
    /// delivery, so it is empty at decision points (and thus in snapshots).
    pub restarts_due: Vec<String>,
    /// Completed restarts in firing order: `(group, base task id)` of each
    /// respawned batch. Snapshot resume replays these through the program's
    /// recovery entry point to regenerate the respawned task bodies.
    pub restarts_fired: Vec<(String, u32)>,
    /// Per-group environment crash counts (scheduled group kills).
    pub crash_counts: BTreeMap<String, u64>,
    /// Per-group restart counts.
    pub restart_counts: BTreeMap<String, u64>,

    pub trace: Option<ChunkedLog<(EventMeta, Event)>>,

    pub outputs: ChunkedLog<OutputRecord>,
    /// Inputs the program consumed, in consumption order (port name, value).
    pub inputs_seen: ChunkedLog<(String, Value)>,
    pub counters: BTreeMap<String, i64>,
    pub crashes: ChunkedLog<CrashRecord>,
    pub decisions: ChunkedLog<DecisionRecord>,
    /// Per-decision snapshot of the enabled set with each candidate's
    /// pending-operation footprint, aligned index-for-index with
    /// `decisions`. This is the conflict metadata partial-order-reduced
    /// search consumes.
    pub decision_enabled: ChunkedLog<EnabledSet>,

    /// Set when the run must wind down; tasks observe it and unwind.
    pub cancelling: bool,
    /// The final stop reason, once determined.
    pub stop: Option<StopReason>,
    pub decision_seq: u64,
    /// Network sends seen so far (indexes the drop script).
    pub net_sends: u64,

    /// Per-task log of completed syscalls since the start of the run, the
    /// raw material of fast-forward resume. Only grows when
    /// [`record_syslog`](Self::record_syslog) is set.
    pub sys_log: Vec<ChunkedLog<SysLogEntry>>,
    /// Whether completed syscalls are being logged (checkpointing enabled).
    pub record_syslog: bool,

    /// FNV-1a digest of the machine state *before* each recorded decision,
    /// aligned index-for-index with `decisions` (digest `i` covers the
    /// world after decisions `0..i` were applied and executed). Only grows
    /// when [`hash_decisions`](Self::hash_decisions) is set.
    pub decision_hashes: ChunkedLog<u64>,
    /// Whether pre-decision state digests are being recorded.
    pub hash_decisions: bool,
}

// ---- snapshot byte accounting ------------------------------------------
//
// Estimators for the heap footprint of one element of each state
// collection, used to report what a snapshot clone copies vs. shares. All
// include `size_of` of the element itself plus its owned heap payload
// (strings, values); they are estimates, but the same estimator is applied
// to both sides of every old-vs-new comparison.

fn sz<T>() -> u64 {
    std::mem::size_of::<T>() as u64
}

fn trace_elem_bytes(e: &(EventMeta, Event)) -> u64 {
    sz::<(EventMeta, Event)>() + e.1.payload_bytes()
}

fn enabled_bytes(en: &EnabledSet) -> u64 {
    sz::<EnabledSet>() + en.len() as u64 * sz::<(TaskId, Option<OpDesc>)>()
}

fn syslog_bytes(e: &SysLogEntry) -> u64 {
    sz::<SysLogEntry>()
        + match e {
            SysLogEntry::Ret(Ok(v)) => v.byte_size(),
            SysLogEntry::Ret(Err(_)) => 16,
            SysLogEntry::Spawn(_) | SysLogEntry::Now(_) => 0,
        }
}

fn output_bytes(o: &OutputRecord) -> u64 {
    sz::<OutputRecord>() + o.port_name.len() as u64 + o.value.byte_size()
}

fn input_seen_bytes(e: &(String, Value)) -> u64 {
    sz::<(String, Value)>() + e.0.len() as u64 + e.1.byte_size()
}

fn crash_bytes(c: &CrashRecord) -> u64 {
    sz::<CrashRecord>() + c.reason.len() as u64 + c.site.len() as u64
}

fn decision_bytes(_: &DecisionRecord) -> u64 {
    sz::<DecisionRecord>()
}

fn hash_elem_bytes(_: &u64) -> u64 {
    sz::<u64>()
}

// ---- state digests ------------------------------------------------------

/// Incremental FNV-1a hasher over manually-fed bytes: the workspace-standard
/// stable hash (the golden-hash suites use the same constants), hand-rolled
/// rather than `DefaultHasher` so digests are reproducible across Rust
/// versions and platforms — promoted trace fixtures commit these values.
#[derive(Debug, Clone, Copy)]
struct StateHasher(u64);

impl StateHasher {
    fn new() -> Self {
        StateHasher(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u64(0),
            Some(x) => {
                self.u64(1);
                self.u64(x);
            }
        }
    }

    fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.u64(0),
            Value::Bool(b) => {
                self.u64(1);
                self.u64(*b as u64);
            }
            Value::Int(i) => {
                self.u64(2);
                self.i64(*i);
            }
            Value::Str(s) => {
                self.u64(3);
                self.str(s);
            }
            Value::Bytes(b) => {
                self.u64(4);
                self.u64(b.len() as u64);
                self.bytes(b);
            }
            Value::List(vs) => {
                self.u64(5);
                self.u64(vs.len() as u64);
                for v in vs {
                    self.value(v);
                }
            }
        }
    }

    fn op_desc(&mut self, d: &OpDesc) {
        match d {
            OpDesc::Var { var, write } => {
                self.u64(0);
                self.u64(var.index() as u64);
                self.u64(*write as u64);
            }
            OpDesc::Lock { lock } => {
                self.u64(1);
                self.u64(lock.index() as u64);
            }
            OpDesc::CvWait { cvar, lock } => {
                self.u64(2);
                self.u64(cvar.index() as u64);
                self.u64(lock.index() as u64);
            }
            OpDesc::CvNotify { cvar } => {
                self.u64(3);
                self.u64(cvar.index() as u64);
            }
            OpDesc::Chan { chan } => {
                self.u64(4);
                self.u64(chan.index() as u64);
            }
            OpDesc::PortIn { port } => {
                self.u64(5);
                self.u64(port.index() as u64);
            }
            OpDesc::PortOut { port } => {
                self.u64(6);
                self.u64(port.index() as u64);
            }
            OpDesc::Rng => self.u64(7),
            OpDesc::Local => self.u64(8),
            OpDesc::Global => self.u64(9),
        }
    }

    fn phase(&mut self, p: &Phase) {
        match p {
            Phase::Ready => self.u64(0),
            Phase::Granted => self.u64(1),
            Phase::Running => self.u64(2),
            Phase::Blocked(b) => {
                self.u64(3);
                match b {
                    BlockOn::Lock(l) => {
                        self.u64(0);
                        self.u64(l.index() as u64);
                    }
                    BlockOn::Chan { chan, deadline } => {
                        self.u64(1);
                        self.u64(chan.index() as u64);
                        self.opt_u64(*deadline);
                    }
                    BlockOn::Cvar(c) => {
                        self.u64(2);
                        self.u64(c.index() as u64);
                    }
                    BlockOn::Port(p) => {
                        self.u64(3);
                        self.u64(p.index() as u64);
                    }
                    BlockOn::Join(t) => {
                        self.u64(4);
                        self.u64(t.index() as u64);
                    }
                    BlockOn::Timer { until } => {
                        self.u64(5);
                        self.u64(*until);
                    }
                }
            }
            Phase::Exited { ok } => {
                self.u64(4);
                self.u64(*ok as u64);
            }
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The approximate heap footprint of one [`WorldSnapshot`], split into the
/// part a snapshot clone *copies* and the part it *shares* with the run
/// that produced it (see [`WorldSnapshot::cost`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotCost {
    /// Bytes of hot machine state (tasks, vars, locks, cvars, channels,
    /// ports, timers, pending environment events, counters) — always
    /// copied, bounded by the number of live objects.
    pub live_bytes: u64,
    /// Bytes of history a clone copies: one 8-byte handle per sealed chunk
    /// plus each log's bounded mutable tail.
    pub history_cloned_bytes: u64,
    /// Bytes the full history occupies — what a structure-unaware deep
    /// clone (the pre-chunking representation) would copy.
    pub history_total_bytes: u64,
}

impl SnapshotCost {
    /// Bytes one snapshot clone actually copies: O(live state).
    pub fn cloned_bytes(&self) -> u64 {
        self.live_bytes + self.history_cloned_bytes
    }

    /// Bytes a deep (history-unaware) clone would copy: O(history).
    pub fn deep_bytes(&self) -> u64 {
        self.live_bytes + self.history_total_bytes
    }

    /// How many times fewer bytes the shared representation copies.
    pub fn reduction(&self) -> f64 {
        self.deep_bytes() as f64 / self.cloned_bytes().max(1) as f64
    }
}

impl WorldState {
    /// Approximate heap bytes of the hot machine state a clone copies.
    fn live_bytes(&self) -> u64 {
        let tasks: u64 = self
            .tasks
            .iter()
            .map(|t| {
                sz::<TaskRec>()
                    + t.name.len() as u64
                    + t.group.len() as u64
                    + t.joiners.len() as u64 * sz::<TaskId>()
            })
            .sum();
        let vars: u64 = self
            .vars
            .iter()
            .map(|v| sz::<VarRec>() + v.name.len() as u64 + v.value.byte_size())
            .sum();
        let locks: u64 = self
            .locks
            .iter()
            .map(|l| sz::<LockRec>() + l.name.len() as u64)
            .sum();
        let cvars: u64 = self
            .cvars
            .iter()
            .map(|c| {
                sz::<CvarRec>() + c.name.len() as u64 + c.waiters.len() as u64 * sz::<TaskId>()
            })
            .sum();
        let chans: u64 = self
            .chans
            .iter()
            .map(|c| {
                sz::<ChanRec>()
                    + c.name.len() as u64
                    + c.queue
                        .iter()
                        .map(|v| sz::<Value>() + v.byte_size())
                        .sum::<u64>()
            })
            .sum();
        let ports: u64 = self
            .ports
            .iter()
            .map(|p| {
                sz::<PortRec>()
                    + p.name.len() as u64
                    + p.queue
                        .iter()
                        .map(|v| sz::<Value>() + v.byte_size())
                        .sum::<u64>()
            })
            .sum();
        let timers = self.timers.len() as u64 * sz::<Reverse<(u64, u32)>>();
        let pending_inputs: u64 = self
            .pending_inputs
            .iter()
            .map(|p| sz::<PendingInput>() + p.value.byte_size())
            .sum();
        let pending_crashes: u64 = self
            .pending_crashes
            .iter()
            .map(|(_, g)| sz::<(u64, String)>() + g.len() as u64)
            .sum();
        let faults: u64 = self
            .pending_partitions
            .iter()
            .chain(&self.pending_heals)
            .map(|(_, a, b)| sz::<(u64, String, String)>() + (a.len() + b.len()) as u64)
            .sum::<u64>()
            + self
                .active_partitions
                .iter()
                .map(|(a, b)| sz::<(String, String)>() + (a.len() + b.len()) as u64)
                .sum::<u64>()
            + self
                .pending_restarts
                .iter()
                .map(|(_, g)| sz::<(u64, String)>() + g.len() as u64)
                .sum::<u64>()
            + self
                .restarts_due
                .iter()
                .map(|g| sz::<String>() + g.len() as u64)
                .sum::<u64>()
            + self
                .restarts_fired
                .iter()
                .map(|(g, _)| sz::<(String, u32)>() + g.len() as u64)
                .sum::<u64>()
            + self
                .crash_counts
                .keys()
                .chain(self.restart_counts.keys())
                .map(|k| k.len() as u64 + 8 + 48)
                .sum::<u64>();
        let counters: u64 = self
            .counters
            .keys()
            .map(|k| k.len() as u64 + 8 + 48) // key + value + node overhead
            .sum();
        sz::<WorldState>()
            + tasks
            + vars
            + locks
            + cvars
            + chans
            + ports
            + timers
            + pending_inputs
            + pending_crashes
            + faults
            + counters
    }

    /// Bytes of history a clone of this world copies (chunk handles plus
    /// tails) and bytes the full history occupies, as
    /// `(cloned, total)`.
    fn history_bytes(&self) -> (u64, u64) {
        let mut cloned = 0;
        let mut total = 0;
        if let Some(trace) = &self.trace {
            cloned += trace.clone_bytes(trace_elem_bytes);
            total += trace.total_bytes(trace_elem_bytes);
        }
        cloned += self.outputs.clone_bytes(output_bytes);
        total += self.outputs.total_bytes(output_bytes);
        cloned += self.inputs_seen.clone_bytes(input_seen_bytes);
        total += self.inputs_seen.total_bytes(input_seen_bytes);
        cloned += self.crashes.clone_bytes(crash_bytes);
        total += self.crashes.total_bytes(crash_bytes);
        cloned += self.decisions.clone_bytes(decision_bytes);
        total += self.decisions.total_bytes(decision_bytes);
        cloned += self.decision_enabled.clone_bytes(enabled_bytes);
        total += self.decision_enabled.total_bytes(enabled_bytes);
        cloned += self.decision_hashes.clone_bytes(hash_elem_bytes);
        total += self.decision_hashes.total_bytes(hash_elem_bytes);
        for log in &self.sys_log {
            cloned += log.clone_bytes(syslog_bytes);
            total += log.total_bytes(syslog_bytes);
        }
        (cloned, total)
    }

    /// The cost split of snapshotting this world.
    pub(crate) fn snapshot_cost(&self) -> SnapshotCost {
        let (history_cloned_bytes, history_total_bytes) = self.history_bytes();
        SnapshotCost {
            live_bytes: self.live_bytes(),
            history_cloned_bytes,
            history_total_bytes,
        }
    }

    /// Sealed history chunks this world shares (same allocations) with
    /// `other` — two snapshots of the same run share their common prefix.
    fn shared_history_chunks(&self, other: &WorldState) -> usize {
        let mut shared = match (&self.trace, &other.trace) {
            (Some(a), Some(b)) => a.shared_chunks_with(b),
            _ => 0,
        };
        shared += self.outputs.shared_chunks_with(&other.outputs);
        shared += self.inputs_seen.shared_chunks_with(&other.inputs_seen);
        shared += self.crashes.shared_chunks_with(&other.crashes);
        shared += self.decisions.shared_chunks_with(&other.decisions);
        shared += self
            .decision_enabled
            .shared_chunks_with(&other.decision_enabled);
        shared += self
            .decision_hashes
            .shared_chunks_with(&other.decision_hashes);
        shared += self
            .sys_log
            .iter()
            .zip(&other.sys_log)
            .map(|(a, b)| a.shared_chunks_with(b))
            .sum::<usize>();
        shared
    }

    /// A deep copy sharing no history chunks with `self` — the
    /// pre-chunking snapshot representation, kept as the baseline the
    /// `snapshot_cost` benchmark measures against.
    fn unshared(&self) -> WorldState {
        let mut w = self.clone();
        w.trace = self.trace.as_ref().map(ChunkedLog::unshared);
        w.outputs = self.outputs.unshared();
        w.inputs_seen = self.inputs_seen.unshared();
        w.crashes = self.crashes.unshared();
        w.decisions = self.decisions.unshared();
        w.decision_enabled = self.decision_enabled.unshared();
        w.decision_hashes = self.decision_hashes.unshared();
        w.sys_log = self.sys_log.iter().map(ChunkedLog::unshared).collect();
        w
    }

    /// FNV-1a digest of the live machine state (see
    /// [`decision_hashes`](Self::decision_hashes)).
    ///
    /// Covers everything that determines the run's future: clocks, step and
    /// event counts, the RNG, every task, variable, lock, condition
    /// variable, channel and port, timers, pending environment events,
    /// counters and the history *lengths* (hashing full history content
    /// would make each digest O(run length); any content divergence
    /// necessarily flows through the live state that produced it).
    /// Instrumentation cost (`wall_extra`) is deliberately excluded:
    /// attached observers differ between a recording and its replay, and
    /// recording overhead must not perturb the digest.
    pub(crate) fn digest(&self) -> u64 {
        let mut h = StateHasher::new();
        h.u64(self.time);
        h.u64(self.steps);
        h.u64(self.events);
        h.u64(self.decision_seq);
        h.u64(self.net_sends);
        h.u64(self.cancelling as u64);
        for w in self.rng.digest_words() {
            h.u64(w);
        }
        h.u64(self.tasks.len() as u64);
        for t in &self.tasks {
            h.phase(&t.phase);
            h.u64(t.killed as u64);
            h.u64(t.mem_used);
            h.u64(t.joiners.len() as u64);
            for j in &t.joiners {
                h.u64(j.index() as u64);
            }
            match &t.pending {
                None => h.u64(0),
                Some(d) => {
                    h.u64(1);
                    h.op_desc(d);
                }
            }
            // Hash the op-local progress the in-flight op has accumulated
            // (the historical `InflightPatch` encoding, kept byte-identical
            // so golden digests survive the coroutine-engine refactor).
            match &t.pending_op {
                Some(Op::CvWait {
                    stage: CvStage::Relock,
                    ..
                }) => h.u64(1),
                Some(Op::Recv {
                    deadline: Some(d), ..
                }) => {
                    h.u64(2);
                    h.u64(*d);
                }
                Some(Op::Sleep { until: Some(u), .. }) => {
                    h.u64(3);
                    h.u64(*u);
                }
                _ => h.u64(0),
            }
        }
        h.u64(self.vars.len() as u64);
        for v in &self.vars {
            h.value(&v.value);
        }
        h.u64(self.locks.len() as u64);
        for l in &self.locks {
            h.opt_u64(l.holder.map(|t| t.index() as u64));
        }
        h.u64(self.cvars.len() as u64);
        for c in &self.cvars {
            h.u64(c.waiters.len() as u64);
            for w in &c.waiters {
                h.u64(w.index() as u64);
            }
        }
        h.u64(self.chans.len() as u64);
        for c in &self.chans {
            h.u64(c.closed as u64);
            h.u64(c.queue.len() as u64);
            for v in &c.queue {
                h.value(v);
            }
        }
        h.u64(self.ports.len() as u64);
        for p in &self.ports {
            h.u64(p.remaining_inputs as u64);
            h.u64(p.queue.len() as u64);
            for v in &p.queue {
                h.value(v);
            }
        }
        // BinaryHeap iteration order is unspecified; hash the sorted view.
        let mut timers: Vec<(u64, u32)> = self.timers.iter().map(|r| r.0).collect();
        timers.sort_unstable();
        h.u64(timers.len() as u64);
        for (when, seq) in timers {
            h.u64(when);
            h.u64(seq as u64);
        }
        h.u64(self.pending_inputs.len() as u64);
        for p in &self.pending_inputs {
            h.u64(p.time);
            h.u64(p.port.index() as u64);
            h.value(&p.value);
        }
        h.u64(self.pending_crashes.len() as u64);
        for (time, group) in &self.pending_crashes {
            h.u64(*time);
            h.str(group);
        }
        // Fault-plane state is hashed only when present, so clean-run
        // digests (pinned by the golden-hash suites and promoted fixtures)
        // are byte-identical to the pre-fault-plane encoding.
        if !self.pending_partitions.is_empty() {
            h.u64(self.pending_partitions.len() as u64);
            for (time, a, b) in &self.pending_partitions {
                h.u64(*time);
                h.str(a);
                h.str(b);
            }
        }
        if !self.pending_heals.is_empty() {
            h.u64(self.pending_heals.len() as u64);
            for (time, a, b) in &self.pending_heals {
                h.u64(*time);
                h.str(a);
                h.str(b);
            }
        }
        if !self.active_partitions.is_empty() {
            h.u64(self.active_partitions.len() as u64);
            for (a, b) in &self.active_partitions {
                h.str(a);
                h.str(b);
            }
        }
        if !self.pending_restarts.is_empty() {
            h.u64(self.pending_restarts.len() as u64);
            for (time, group) in &self.pending_restarts {
                h.u64(*time);
                h.str(group);
            }
        }
        if !self.restarts_due.is_empty() {
            h.u64(self.restarts_due.len() as u64);
            for group in &self.restarts_due {
                h.str(group);
            }
        }
        if !self.restarts_fired.is_empty() {
            h.u64(self.restarts_fired.len() as u64);
            for (group, base) in &self.restarts_fired {
                h.str(group);
                h.u64(*base as u64);
            }
        }
        if !self.crash_counts.is_empty() {
            h.u64(self.crash_counts.len() as u64);
            for (group, n) in &self.crash_counts {
                h.str(group);
                h.u64(*n);
            }
        }
        if !self.restart_counts.is_empty() {
            h.u64(self.restart_counts.len() as u64);
            for (group, n) in &self.restart_counts {
                h.str(group);
                h.u64(*n);
            }
        }
        h.u64(self.counters.len() as u64);
        for (name, total) in &self.counters {
            h.str(name);
            h.i64(*total);
        }
        h.u64(self.outputs.len() as u64);
        h.u64(self.inputs_seen.len() as u64);
        h.u64(self.crashes.len() as u64);
        h.finish()
    }
}

/// A resumable checkpoint: a clone of the machine state at a decision
/// point, plus the scheduling policy's state at the same instant.
///
/// Produced by runs configured with [`CheckpointPlan`]
/// (see [`RunOutput::snapshots`](crate::driver::RunOutput)); consumed by
/// [`resume_program`](crate::driver::resume_program). Resuming with the
/// snapshot's own policy replays the remainder of the original run
/// identically; resuming with an override policy forks the schedule at this
/// point.
pub struct WorldSnapshot {
    pub(crate) world: WorldState,
    pub(crate) policy: Box<dyn SchedulePolicy>,
}

impl WorldSnapshot {
    /// The decision index this snapshot was taken at (state *before* the
    /// decision with this sequence number was made).
    pub fn at_decision(&self) -> u64 {
        self.world.decision_seq
    }

    /// Successful operations executed up to the snapshot point.
    pub fn steps(&self) -> u64 {
        self.world.steps
    }

    /// Execution-clock value at the snapshot point.
    pub fn time(&self) -> u64 {
        self.world.time
    }

    /// The decision path that leads to this snapshot: the chosen candidate
    /// index of each recorded decision, in order ([`at_decision`](Self::at_decision)
    /// entries).
    ///
    /// Parallel schedule explorers use this to re-bind a queued subtree job
    /// to the deepest snapshot *compatible with the job's forced prefix* at
    /// execution time — a snapshot is usable for a prefix iff the prefix
    /// starts with the snapshot's decision path.
    pub fn decision_prefix(&self) -> impl Iterator<Item = u32> + '_ {
        self.world.decisions.iter().map(|d| d.chosen_index)
    }

    /// The approximate byte cost of this snapshot: what a clone copies
    /// (hot state + history chunk handles + history tails) vs. what a
    /// history-unaware deep clone would copy. `cost().cloned_bytes()` is
    /// O(live state) — independent of how long the run had been going —
    /// while `cost().deep_bytes()` grows with the trace.
    pub fn cost(&self) -> SnapshotCost {
        self.world.snapshot_cost()
    }

    /// Number of sealed history chunks this snapshot shares (same
    /// allocation) with `other`. Snapshots of the same run share their
    /// entire common history prefix; a [`deep_clone`](Self::deep_clone)
    /// shares nothing.
    pub fn shared_history_chunks(&self, other: &WorldSnapshot) -> usize {
        self.world.shared_history_chunks(&other.world)
    }

    /// A clone sharing no history chunks with `self` — the pre-chunking
    /// O(history) snapshot representation. Exists so the `snapshot_cost`
    /// benchmark (and regression tests) can measure the old cost against
    /// the new one on identical state; exploration never calls this.
    pub fn deep_clone(&self) -> WorldSnapshot {
        WorldSnapshot {
            world: self.world.unshared(),
            policy: self.policy.clone_box(),
        }
    }
}

impl Clone for WorldSnapshot {
    fn clone(&self) -> Self {
        WorldSnapshot {
            world: self.world.clone(),
            policy: self.policy.clone_box(),
        }
    }
}

impl core::fmt::Debug for WorldSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WorldSnapshot")
            .field("at_decision", &self.at_decision())
            .field("steps", &self.steps())
            .field("time", &self.time())
            .finish()
    }
}

// The load-bearing bounds of parallel exploration, pinned at compile time:
// snapshots (world + policy clone) move between — and are shared by — the
// worker threads of a parallel explorer. If a field ever loses `Send` or
// `Sync`, this fails to compile rather than surfacing as a distant trait
// error in `dd-replay`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorldState>();
    assert_send_sync::<WorldSnapshot>();
};

/// The machine state plus the execution shell. See module docs for the
/// threading discipline and the `WorldState`/shell split.
pub(crate) struct Kernel {
    /// The snapshotable machine state.
    pub world: WorldState,

    // ---- the shell: this execution's I/O and observation plumbing ------
    pub costs: OpCosts,
    pub env: EnvConfig,
    observers: Vec<ObserverSlot>,
    pub policy: Box<dyn SchedulePolicy>,
    pub nondet_override: Option<Box<dyn NondetOverride>>,
    pub stop_on_crash: bool,
    /// Runtime-spawn ceiling (from `RunConfig::max_tasks`): a spawn that
    /// would push `world.tasks` past this fails with
    /// [`SimError::TaskLimit`] instead of growing the world.
    pub max_tasks: u64,
    /// When to clone the world (set from `RunConfig::checkpoints`).
    pub checkpoints: Option<CheckpointPlan>,
    /// Snapshots taken so far, in increasing decision order.
    pub snapshots: Vec<WorldSnapshot>,
    /// When set, snapshots the plan calls for are offered to this sink
    /// (spilled) instead of pushed onto `snapshots`.
    pub sink: Option<Box<dyn SnapshotSink>>,
    /// Marks of the offers the sink kept, in increasing decision order.
    pub spilled: Vec<SnapshotMark>,
    /// Sink write failures, in occurrence order (the run keeps going).
    pub spill_errors: Vec<String>,
    /// Decision index this kernel was resumed at, if it was restored from a
    /// snapshot. The driver skips re-snapshotting at this index — the
    /// caller, by definition, already holds that snapshot.
    pub resumed_at: Option<u64>,
}

/// Outcome of attempting an operation.
pub(crate) enum Attempt {
    /// The operation completed (possibly with an error result).
    Done(SimResult<Value>),
    /// The operation cannot proceed; the task must block.
    Block(BlockOn),
}

/// Stage of a condition-variable wait (the op is re-attempted across wakes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum CvStage {
    /// Not yet enqueued: release the lock and start waiting.
    Enter,
    /// Was notified: reacquire the lock.
    Relock,
}

/// An operation a task asks the kernel to perform.
///
/// Ops are re-attempted after blocking, so variants carry any state that
/// must persist across attempts (e.g. [`CvStage`], resolved sleep deadline).
/// Between attempts the op lives in [`TaskRec::pending_op`] — part of the
/// snapshotable world — so it must be `Clone`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Op {
    Read {
        var: VarId,
        site: Site,
    },
    Write {
        var: VarId,
        value: Value,
        site: Site,
    },
    Lock {
        lock: LockId,
        site: Site,
    },
    Unlock {
        lock: LockId,
        site: Site,
    },
    CvWait {
        cvar: CondvarId,
        lock: LockId,
        stage: CvStage,
        site: Site,
    },
    CvNotify {
        cvar: CondvarId,
        all: bool,
        site: Site,
    },
    Send {
        chan: ChanId,
        value: Value,
        site: Site,
    },
    Recv {
        chan: ChanId,
        deadline: Option<u64>,
        timeout: Option<u64>,
        site: Site,
    },
    CloseChan {
        chan: ChanId,
        site: Site,
    },
    ReadInput {
        port: PortId,
        site: Site,
    },
    WriteOutput {
        port: PortId,
        value: Value,
        site: Site,
    },
    Probe {
        name: &'static str,
        value: Value,
        site: Site,
    },
    Count {
        name: &'static str,
        delta: i64,
        site: Site,
    },
    Rng {
        bound: u64,
        site: Site,
    },
    Sleep {
        until: Option<u64>,
        ticks: u64,
        site: Site,
    },
    Yield {
        site: Site,
    },
    Alloc {
        bytes: u64,
        site: Site,
    },
    Free {
        bytes: u64,
        site: Site,
    },
    Join {
        task: TaskId,
        site: Site,
    },
    Crash {
        reason: String,
        site: Site,
    },
    StopRun {
        site: Site,
    },
}

impl Op {
    /// The conflict footprint of this operation (see [`OpDesc`]).
    pub(crate) fn desc(&self) -> OpDesc {
        match self {
            Op::Read { var, .. } => OpDesc::Var {
                var: *var,
                write: false,
            },
            Op::Write { var, .. } => OpDesc::Var {
                var: *var,
                write: true,
            },
            Op::Lock { lock, .. } | Op::Unlock { lock, .. } => OpDesc::Lock { lock: *lock },
            Op::CvWait { cvar, lock, .. } => OpDesc::CvWait {
                cvar: *cvar,
                lock: *lock,
            },
            Op::CvNotify { cvar, .. } => OpDesc::CvNotify { cvar: *cvar },
            Op::Send { chan, .. } | Op::Recv { chan, .. } | Op::CloseChan { chan, .. } => {
                OpDesc::Chan { chan: *chan }
            }
            Op::ReadInput { port, .. } => OpDesc::PortIn { port: *port },
            Op::WriteOutput { port, .. } => OpDesc::PortOut { port: *port },
            Op::Rng { .. } => OpDesc::Rng,
            // Probes and counters only observe task-local values; sleeps,
            // yields, allocations and joins touch no shared program state.
            Op::Probe { .. }
            | Op::Count { .. }
            | Op::Sleep { .. }
            | Op::Yield { .. }
            | Op::Alloc { .. }
            | Op::Free { .. }
            | Op::Join { .. } => OpDesc::Local,
            // Crashing or stopping the run changes what every other task
            // gets to execute.
            Op::Crash { .. } | Op::StopRun { .. } => OpDesc::Global,
        }
    }
}

impl Kernel {
    #[allow(clippy::too_many_arguments)] // Internal constructor fed by RunConfig.
    pub fn new(
        seed: u64,
        costs: OpCosts,
        env: EnvConfig,
        policy: Box<dyn SchedulePolicy>,
        observers: Vec<Box<dyn Observer>>,
        nondet_override: Option<Box<dyn NondetOverride>>,
        collect_trace: bool,
        stop_on_crash: bool,
    ) -> Self {
        let mut pending_crashes: Vec<(u64, String)> = env
            .crashes
            .iter()
            .map(|c| (c.time, c.group.clone()))
            .collect();
        pending_crashes.sort_by_key(|c| c.0);
        let mut pending_partitions: Vec<(u64, String, String)> = env
            .partitions
            .iter()
            .map(|p| (p.start, p.a.clone(), p.b.clone()))
            .collect();
        pending_partitions.sort_by_key(|p| p.0);
        let mut pending_heals: Vec<(u64, String, String)> = env
            .partitions
            .iter()
            .map(|p| (p.heal, p.a.clone(), p.b.clone()))
            .collect();
        pending_heals.sort_by_key(|p| p.0);
        let mut pending_restarts: Vec<(u64, String)> = env
            .restarts
            .iter()
            .map(|r| (r.time, r.group.clone()))
            .collect();
        pending_restarts.sort_by_key(|r| r.0);
        let world = WorldState {
            tasks: Vec::new(),
            vars: Vec::new(),
            locks: Vec::new(),
            cvars: Vec::new(),
            chans: Vec::new(),
            ports: Vec::new(),
            time: 0,
            wall_extra: 0,
            steps: 0,
            events: 0,
            rng: DetRng::seed_from(seed),
            timers: BinaryHeap::new(),
            pending_inputs: VecDeque::new(),
            pending_crashes: pending_crashes.into(),
            pending_partitions: pending_partitions.into(),
            pending_heals: pending_heals.into(),
            active_partitions: BTreeSet::new(),
            pending_restarts: pending_restarts.into(),
            restarts_due: Vec::new(),
            restarts_fired: Vec::new(),
            crash_counts: BTreeMap::new(),
            restart_counts: BTreeMap::new(),
            trace: collect_trace.then(ChunkedLog::new),
            outputs: ChunkedLog::new(),
            inputs_seen: ChunkedLog::new(),
            counters: BTreeMap::new(),
            crashes: ChunkedLog::new(),
            decisions: ChunkedLog::new(),
            decision_enabled: ChunkedLog::new(),
            cancelling: false,
            stop: None,
            decision_seq: 0,
            net_sends: 0,
            sys_log: Vec::new(),
            record_syslog: false,
            decision_hashes: ChunkedLog::new(),
            hash_decisions: false,
        };
        Kernel {
            world,
            costs,
            env,
            observers: observers
                .into_iter()
                .map(|obs| ObserverSlot { obs, cost: 0 })
                .collect(),
            policy,
            nondet_override,
            stop_on_crash,
            max_tasks: u64::MAX,
            checkpoints: None,
            snapshots: Vec::new(),
            sink: None,
            spilled: Vec::new(),
            spill_errors: Vec::new(),
            resumed_at: None,
        }
    }

    /// Rebuilds a kernel around a restored [`WorldState`].
    ///
    /// The shell (observers, policy, override, checkpoint plan) is fresh.
    /// Nothing per-task needs reconstructing here: the driver's engine
    /// rebuilds each started task's coroutine by fast-forwarding its body
    /// through the world's retained syscall log (see
    /// `driver::resume_program`).
    #[allow(clippy::too_many_arguments)] // Internal constructor fed by RunConfig.
    pub fn resume(
        world: WorldState,
        costs: OpCosts,
        env: EnvConfig,
        policy: Box<dyn SchedulePolicy>,
        observers: Vec<Box<dyn Observer>>,
        nondet_override: Option<Box<dyn NondetOverride>>,
        stop_on_crash: bool,
        checkpoints: Option<CheckpointPlan>,
    ) -> Self {
        let resumed_at = world.decision_seq;
        Kernel {
            world,
            costs,
            env,
            observers: observers
                .into_iter()
                .map(|obs| ObserverSlot { obs, cost: 0 })
                .collect(),
            policy,
            nondet_override,
            stop_on_crash,
            max_tasks: u64::MAX,
            checkpoints,
            snapshots: Vec::new(),
            sink: None,
            spilled: Vec::new(),
            spill_errors: Vec::new(),
            resumed_at: Some(resumed_at),
        }
    }

    /// Clones the world (and policy) into a [`WorldSnapshot`].
    ///
    /// Must only be called at a decision point: no task granted or running.
    pub fn take_snapshot(&mut self) -> WorldSnapshot {
        debug_assert!(
            self.world
                .tasks
                .iter()
                .all(|t| !matches!(t.phase, Phase::Granted | Phase::Running)),
            "snapshots are only valid at decision points"
        );
        WorldSnapshot {
            world: self.world.clone(),
            policy: self.policy.clone_box(),
        }
    }

    /// Appends a completed-syscall log entry for `task` (when enabled).
    pub(crate) fn log_syscall(&mut self, task: TaskId, entry: SysLogEntry) {
        if self.world.record_syslog {
            self.world.sys_log[task.index()].push(entry);
        }
    }

    // ---- registration (setup time and runtime) -------------------------

    pub fn add_task(&mut self, name: &str, group: &str, parent: Option<TaskId>) -> TaskId {
        let id = TaskId(self.world.tasks.len() as u32);
        let mem_budget = self.env.mem_budget.get(group).copied();
        self.world.tasks.push(TaskRec {
            name: name.to_owned(),
            group: group.to_owned(),
            phase: Phase::Ready,
            killed: false,
            joiners: Vec::new(),
            mem_used: 0,
            mem_budget,
            pending: None,
            pending_op: None,
        });
        self.world
            .sys_log
            .push(ChunkedLog::with_chunk_len(SYSLOG_CHUNK_LEN));
        self.emit(Event::TaskSpawn {
            parent,
            child: id,
            name: name.to_owned(),
            group: group.to_owned(),
        });
        id
    }

    pub fn add_var(&mut self, name: &str, init: Value) -> VarId {
        let id = VarId(self.world.vars.len() as u32);
        self.world.vars.push(VarRec {
            name: name.to_owned(),
            value: init,
        });
        id
    }

    pub fn add_lock(&mut self, name: &str) -> LockId {
        let id = LockId(self.world.locks.len() as u32);
        self.world.locks.push(LockRec {
            name: name.to_owned(),
            holder: None,
        });
        id
    }

    pub fn add_cvar(&mut self, name: &str) -> CondvarId {
        let id = CondvarId(self.world.cvars.len() as u32);
        self.world.cvars.push(CvarRec {
            name: name.to_owned(),
            waiters: Vec::new(),
        });
        id
    }

    pub fn add_chan(&mut self, name: &str, class: ChanClass) -> ChanId {
        let id = ChanId(self.world.chans.len() as u32);
        self.world.chans.push(ChanRec {
            name: name.to_owned(),
            class,
            queue: VecDeque::new(),
            closed: false,
        });
        id
    }

    pub fn add_port(&mut self, name: &str, dir: PortDir) -> PortId {
        let id = PortId(self.world.ports.len() as u32);
        self.world.ports.push(PortRec {
            name: name.to_owned(),
            dir,
            queue: VecDeque::new(),
            remaining_inputs: 0,
        });
        id
    }

    /// Loads the input script (after ports exist). Unknown port names are an
    /// error, to catch script/program mismatches early.
    pub fn load_inputs(
        &mut self,
        script: impl Iterator<Item = (String, Vec<TimedInput>)>,
    ) -> Result<(), String> {
        let mut all: Vec<PendingInput> = Vec::new();
        for (port_name, inputs) in script {
            let port = self
                .world
                .ports
                .iter()
                .position(|p| p.name == port_name && p.dir == PortDir::In)
                .map(|i| PortId(i as u32))
                .ok_or_else(|| format!("input script references unknown port {port_name:?}"))?;
            self.world.ports[port.index()].remaining_inputs += inputs.len();
            all.extend(inputs.into_iter().map(|t| PendingInput {
                time: t.time,
                port,
                value: t.value,
            }));
        }
        all.sort_by_key(|p| p.time);
        self.world.pending_inputs = all.into();
        Ok(())
    }

    // ---- event plumbing -------------------------------------------------

    /// Publishes an event to the trace and all observers, charging their
    /// instrumentation costs to the wall clock.
    pub fn emit(&mut self, event: Event) {
        self.world.events += 1;
        let meta = EventMeta {
            step: self.world.steps,
            time: self.world.time,
        };
        for slot in &mut self.observers {
            let c = slot.obs.on_event(&meta, &event);
            slot.cost += c;
            self.world.wall_extra += c;
        }
        if let Some(trace) = &mut self.world.trace {
            trace.push((meta, event));
        }
    }

    /// Resolves a nondeterministic decision through the policy.
    ///
    /// Decisions with a single candidate are trivial and are neither sent to
    /// the policy nor logged — this keeps decision streams schedule-portable.
    /// A policy error (replay divergence) sets the stop reason and returns
    /// `None`.
    pub fn decide(&mut self, kind: DecisionKind, candidates: &[TaskId]) -> Option<TaskId> {
        debug_assert!(!candidates.is_empty());
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        if candidates.len() == 1 {
            // Forced grants stay invisible to logs, digests and events, but
            // order-guided policies still need to see them go by.
            let only = candidates[0];
            let pending = self.world.tasks[only.index()].pending;
            self.policy.note_forced(only, pending.as_ref());
            return Some(only);
        }
        let enabled: EnabledSet = candidates
            .iter()
            .map(|&t| (t, self.world.tasks[t.index()].pending))
            .collect();
        let point = crate::policy::DecisionPoint {
            seq: self.world.decision_seq,
            kind,
            candidates,
            enabled: &enabled,
        };
        // Digest the pre-decision machine state (covering every decision
        // already applied and executed) before the policy resolves this one,
        // so replay can localise the first diverging decision. Pushed even
        // when the policy aborts the run: a strict replay that forced a
        // wrong earlier choice still surfaces the digest covering it, so
        // divergence localisation sees the drift rather than the abort.
        // Never emits an event and never charges cost: golden traces must
        // not move.
        if self.world.hash_decisions {
            let digest = self.world.digest();
            self.world.decision_hashes.push(digest);
        }
        let decided = self.policy.decide(&point);
        match decided {
            Ok(idx) if idx < candidates.len() => {
                self.world.decision_seq += 1;
                let chosen = candidates[idx];
                self.world.decision_enabled.push(enabled);
                self.world.decisions.push(DecisionRecord {
                    kind,
                    n: candidates.len() as u32,
                    chosen_index: idx as u32,
                    chosen,
                });
                self.emit(Event::Decision {
                    kind,
                    candidates: candidates.to_vec(),
                    chosen,
                });
                Some(chosen)
            }
            Ok(bad) => {
                self.world.stop = Some(StopReason::ReplayDivergence {
                    step: self.world.decision_seq,
                    detail: format!("policy returned out-of-range index {bad}"),
                });
                None
            }
            Err(reason) => {
                self.world.stop = Some(reason);
                None
            }
        }
    }

    // ---- wake helpers ---------------------------------------------------

    pub(crate) fn wake(&mut self, task: TaskId) {
        let rec = &mut self.world.tasks[task.index()];
        if !rec.killed && matches!(rec.phase, Phase::Blocked(_)) {
            rec.phase = Phase::Ready;
        }
    }

    fn wake_lock_waiters(&mut self, lock: LockId) {
        let waiting: Vec<TaskId> = self
            .world
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.phase, Phase::Blocked(BlockOn::Lock(l)) if l == lock))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in waiting {
            self.wake(t);
        }
    }

    fn wake_chan_waiters(&mut self, chan: ChanId) {
        let waiting: Vec<TaskId> = self
            .world
            .tasks
            .iter()
            .enumerate()
            .filter(
                |(_, t)| matches!(t.phase, Phase::Blocked(BlockOn::Chan { chan: c, .. }) if c == chan),
            )
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in waiting {
            self.wake(t);
        }
    }

    fn wake_port_waiters(&mut self, port: PortId) {
        let waiting: Vec<TaskId> = self
            .world
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.phase, Phase::Blocked(BlockOn::Port(p)) if p == port))
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for t in waiting {
            self.wake(t);
        }
    }

    // ---- environment ----------------------------------------------------

    /// Earliest pending wake-up time (timer, input, crash, partition edge
    /// or restart), if any.
    pub fn next_pending_time(&self) -> Option<u64> {
        let t1 = self.world.timers.peek().map(|Reverse((t, _))| *t);
        let t2 = self.world.pending_inputs.front().map(|p| p.time);
        let t3 = self.world.pending_crashes.front().map(|c| c.0);
        let t4 = self.world.pending_partitions.front().map(|p| p.0);
        let t5 = self.world.pending_heals.front().map(|p| p.0);
        let t6 = self.world.pending_restarts.front().map(|r| r.0);
        [t1, t2, t3, t4, t5, t6].into_iter().flatten().min()
    }

    /// Delivers every input, timer, crash, partition edge and restart due
    /// at or before the current time. Returns `true` if anything was
    /// delivered. Delivered restarts are staged in
    /// [`WorldState::restarts_due`]; the driver respawns them through the
    /// program's recovery entry point right after this returns.
    pub fn deliver_due(&mut self) -> bool {
        let mut any = false;
        while self
            .world
            .pending_inputs
            .front()
            .is_some_and(|p| p.time <= self.world.time)
        {
            let p = self
                .world
                .pending_inputs
                .pop_front()
                .expect("checked non-empty");
            self.world.ports[p.port.index()]
                .queue
                .push_back(p.value.clone());
            self.world.ports[p.port.index()].remaining_inputs -= 1;
            self.emit(Event::InputArrival {
                port: p.port,
                value: p.value,
            });
            self.wake_port_waiters(p.port);
            any = true;
        }
        while self
            .world
            .timers
            .peek()
            .is_some_and(|Reverse((t, _))| *t <= self.world.time)
        {
            let Reverse((due, tid)) = self.world.timers.pop().expect("checked non-empty");
            let task = TaskId(tid);
            let rec = &self.world.tasks[task.index()];
            let fire = match rec.phase {
                Phase::Blocked(BlockOn::Timer { until }) => until <= self.world.time,
                Phase::Blocked(BlockOn::Chan {
                    deadline: Some(d), ..
                }) => d <= self.world.time,
                _ => false,
            };
            let _ = due;
            if fire {
                self.wake(task);
                any = true;
            }
        }
        while self
            .world
            .pending_crashes
            .front()
            .is_some_and(|c| c.0 <= self.world.time)
        {
            let (_, group) = self
                .world
                .pending_crashes
                .pop_front()
                .expect("checked non-empty");
            self.kill_group(&group);
            any = true;
        }
        while self
            .world
            .pending_partitions
            .front()
            .is_some_and(|p| p.0 <= self.world.time)
        {
            let (_, a, b) = self
                .world
                .pending_partitions
                .pop_front()
                .expect("checked non-empty");
            let pair = if a <= b { (a, b) } else { (b, a) };
            self.world.active_partitions.insert(pair.clone());
            self.emit(Event::PartitionStart {
                a: pair.0,
                b: pair.1,
            });
            any = true;
        }
        while self
            .world
            .pending_heals
            .front()
            .is_some_and(|p| p.0 <= self.world.time)
        {
            let (_, a, b) = self
                .world
                .pending_heals
                .pop_front()
                .expect("checked non-empty");
            let pair = if a <= b { (a, b) } else { (b, a) };
            self.world.active_partitions.remove(&pair);
            self.emit(Event::PartitionHeal {
                a: pair.0,
                b: pair.1,
            });
            any = true;
        }
        while self
            .world
            .pending_restarts
            .front()
            .is_some_and(|r| r.0 <= self.world.time)
        {
            let (_, group) = self
                .world
                .pending_restarts
                .pop_front()
                .expect("checked non-empty");
            *self.world.restart_counts.entry(group.clone()).or_insert(0) += 1;
            self.world.restarts_due.push(group);
            any = true;
        }
        any
    }

    /// Whether an active partition separates `task`'s group from the
    /// failure domain that owns channel `chan`.
    ///
    /// The receiving domain is derived from the channel name: everything
    /// before the first `.` (the convention distributed workloads use for
    /// node-owned channels, e.g. `server0.data`). Matching is by group-name
    /// *prefix* in both directions, so a partition between `server0` and
    /// `client` cuts every client group off from `server0`'s channels.
    /// Purely a function of the environment schedule and the clock — no RNG
    /// is consumed, so partitions stay input nondeterminism.
    fn partitioned(&self, task: TaskId, chan: ChanId) -> bool {
        if self.world.active_partitions.is_empty() {
            return false;
        }
        let sender = &self.world.tasks[task.index()].group;
        let chan_name = &self.world.chans[chan.index()].name;
        let receiver = chan_name.split('.').next().unwrap_or(chan_name);
        self.world.active_partitions.iter().any(|(a, b)| {
            (sender.starts_with(a.as_str()) && receiver.starts_with(b.as_str()))
                || (sender.starts_with(b.as_str()) && receiver.starts_with(a.as_str()))
        })
    }

    /// Kills every task in `group` (node crash).
    pub fn kill_group(&mut self, group: &str) {
        *self.world.crash_counts.entry(group.to_owned()).or_insert(0) += 1;
        let victims: Vec<TaskId> = self
            .world
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.group == group && !t.killed && !matches!(t.phase, Phase::Exited { .. })
            })
            .map(|(i, _)| TaskId(i as u32))
            .collect();
        for &t in &victims {
            self.world.tasks[t.index()].killed = true;
            // Dead tasks cannot be woken by condition variables.
            for cv in &mut self.world.cvars {
                cv.waiters.retain(|&w| w != t);
            }
            self.emit(Event::TaskKilled {
                task: t,
                reason: format!("group {group:?} crashed"),
            });
            // A killed task will never exit on its own; release joiners now.
            let joiners = std::mem::take(&mut self.world.tasks[t.index()].joiners);
            for j in joiners {
                self.wake(j);
            }
        }
        // A group kill models a *process* crash: in-process mutexes die with
        // it. Force-release every lock a victim held so survivors (and tasks
        // respawned by recovery) are not deadlocked on an orphaned holder.
        for l in 0..self.world.locks.len() {
            let lock = LockId(l as u32);
            match self.world.locks[l].holder {
                Some(h) if victims.contains(&h) => {
                    self.world.locks[l].holder = None;
                    self.emit(Event::LockRelease {
                        task: h,
                        lock,
                        site: KERNEL_SITE.into(),
                    });
                    self.wake_lock_waiters(lock);
                }
                _ => {}
            }
        }
        self.emit(Event::GroupKilled {
            group: group.to_owned(),
            tasks: victims,
        });
    }

    // ---- operation execution --------------------------------------------

    /// Attempts `op` on behalf of `task`.
    ///
    /// On success the execution clock advances by the op's cost and the
    /// corresponding events are emitted. On `Block` nothing is charged.
    pub fn exec_op(&mut self, task: TaskId, op: &mut Op) -> Attempt {
        match op {
            Op::Read { var, site } => {
                let actual = self.world.vars[var.index()].value.clone();
                let value = match &mut self.nondet_override {
                    Some(h) => h.override_read(task, *var, &actual).unwrap_or(actual),
                    None => actual,
                };
                self.charge(self.costs.read_cost(value.byte_size()));
                self.emit(Event::Read {
                    task,
                    var: *var,
                    value: value.clone(),
                    site: (*site).into(),
                });
                Attempt::Done(Ok(value))
            }
            Op::Write { var, value, site } => {
                self.world.vars[var.index()].value = value.clone();
                self.charge(self.costs.write_cost(value.byte_size()));
                self.emit(Event::Write {
                    task,
                    var: *var,
                    value: value.clone(),
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Lock { lock, site } => {
                let rec = &mut self.world.locks[lock.index()];
                match rec.holder {
                    Some(h) if h != task => Attempt::Block(BlockOn::Lock(*lock)),
                    Some(_) => Attempt::Done(Err(SimError::Internal(format!(
                        "task {task} re-acquired lock {lock} (not reentrant)"
                    )))),
                    None => {
                        rec.holder = Some(task);
                        self.charge(self.costs.lock);
                        self.emit(Event::LockAcquire {
                            task,
                            lock: *lock,
                            site: (*site).into(),
                        });
                        Attempt::Done(Ok(Value::Unit))
                    }
                }
            }
            Op::Unlock { lock, site } => {
                let rec = &mut self.world.locks[lock.index()];
                if rec.holder != Some(task) {
                    return Attempt::Done(Err(SimError::Internal(format!(
                        "task {task} released lock {lock} it does not hold"
                    ))));
                }
                rec.holder = None;
                self.charge(self.costs.lock);
                self.emit(Event::LockRelease {
                    task,
                    lock: *lock,
                    site: (*site).into(),
                });
                self.wake_lock_waiters(*lock);
                Attempt::Done(Ok(Value::Unit))
            }
            Op::CvWait {
                cvar,
                lock,
                stage,
                site,
            } => match *stage {
                CvStage::Enter => {
                    let lrec = &mut self.world.locks[lock.index()];
                    if lrec.holder != Some(task) {
                        return Attempt::Done(Err(SimError::Internal(format!(
                            "cv wait on {cvar} without holding {lock}"
                        ))));
                    }
                    lrec.holder = None;
                    self.world.cvars[cvar.index()].waiters.push(task);
                    self.charge(self.costs.lock);
                    self.emit(Event::CondWait {
                        task,
                        cvar: *cvar,
                        lock: *lock,
                        site: (*site).into(),
                    });
                    self.wake_lock_waiters(*lock);
                    *stage = CvStage::Relock;
                    Attempt::Block(BlockOn::Cvar(*cvar))
                }
                CvStage::Relock => {
                    // We were notified; reacquire the lock (may block again).
                    let rec = &mut self.world.locks[lock.index()];
                    match rec.holder {
                        Some(h) if h != task => Attempt::Block(BlockOn::Lock(*lock)),
                        Some(_) => Attempt::Done(Err(SimError::Internal(
                            "cv relock while already holding".into(),
                        ))),
                        None => {
                            rec.holder = Some(task);
                            self.charge(self.costs.lock);
                            self.emit(Event::LockAcquire {
                                task,
                                lock: *lock,
                                site: (*site).into(),
                            });
                            Attempt::Done(Ok(Value::Unit))
                        }
                    }
                }
            },
            Op::CvNotify { cvar, all, site } => {
                let queue = &mut self.world.cvars[cvar.index()].waiters;
                let woken: Vec<TaskId> = if queue.is_empty() {
                    Vec::new()
                } else if *all {
                    // Broadcast drains the queue in place — no copy of a
                    // possibly-long waiter list.
                    std::mem::take(queue)
                } else {
                    // Single wake: the policy wants candidates sorted by
                    // id while the queue keeps FIFO order, and `decide`
                    // needs the kernel mutably — so only this path pays
                    // for a sorted copy.
                    let mut waiters = queue.clone();
                    waiters.sort_unstable();
                    match self.decide(DecisionKind::WakeOne(*cvar), &waiters) {
                        Some(chosen) => {
                            self.world.cvars[cvar.index()]
                                .waiters
                                .retain(|&w| w != chosen);
                            vec![chosen]
                        }
                        // Replay divergence: the run is stopping anyway.
                        None => return Attempt::Done(Err(SimError::Cancelled)),
                    }
                };
                for &w in &woken {
                    self.wake(w);
                }
                self.charge(self.costs.lock);
                self.emit(Event::CondNotify {
                    task,
                    cvar: *cvar,
                    all: *all,
                    woken,
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Send { chan, value, site } => {
                let bytes = value.byte_size();
                let class = self.world.chans[chan.index()].class;
                if class == ChanClass::Network {
                    let idx = self.world.net_sends;
                    self.world.net_sends += 1;
                    // Active partitions drop the send deterministically —
                    // before the drop script / congestion roll, and without
                    // consuming RNG, so the same env replays identically.
                    if self.partitioned(task, *chan) {
                        self.charge(self.costs.msg_cost(bytes));
                        self.emit(Event::SendDropped {
                            task,
                            chan: *chan,
                            bytes,
                            site: (*site).into(),
                        });
                        return Attempt::Done(Ok(Value::Unit));
                    }
                    let dropped = match &self.env.drop_script {
                        Some(script) => script.contains(&idx),
                        None => {
                            self.env.drop_per_mille > 0
                                && self.world.rng.chance(self.env.drop_per_mille as u64, 1000)
                        }
                    };
                    if dropped {
                        self.charge(self.costs.msg_cost(bytes));
                        self.emit(Event::SendDropped {
                            task,
                            chan: *chan,
                            bytes,
                            site: (*site).into(),
                        });
                        return Attempt::Done(Ok(Value::Unit));
                    }
                }
                self.world.chans[chan.index()]
                    .queue
                    .push_back(value.clone());
                self.charge(self.costs.msg_cost(bytes));
                self.emit(Event::Send {
                    task,
                    chan: *chan,
                    value: value.clone(),
                    site: (*site).into(),
                });
                self.wake_chan_waiters(*chan);
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Recv {
                chan,
                deadline,
                timeout,
                site,
            } => {
                if let Some(h) = &mut self.nondet_override {
                    if let Some(v) = h.override_recv(task, *chan) {
                        self.charge(self.costs.msg_cost(v.byte_size()));
                        self.emit(Event::Recv {
                            task,
                            chan: *chan,
                            value: v.clone(),
                            site: (*site).into(),
                        });
                        return Attempt::Done(Ok(v));
                    }
                }
                let rec = &mut self.world.chans[chan.index()];
                if let Some(v) = rec.queue.pop_front() {
                    self.charge(self.costs.msg_cost(v.byte_size()));
                    self.emit(Event::Recv {
                        task,
                        chan: *chan,
                        value: v.clone(),
                        site: (*site).into(),
                    });
                    return Attempt::Done(Ok(v));
                }
                if rec.closed {
                    return Attempt::Done(Err(SimError::ChannelClosed(*chan)));
                }
                // Resolve the relative timeout to an absolute deadline once.
                if deadline.is_none() {
                    if let Some(t) = timeout {
                        let d = self.world.time.saturating_add(*t);
                        *deadline = Some(d);
                        self.world.timers.push(Reverse((d, task.0)));
                    }
                }
                if let Some(d) = *deadline {
                    if d <= self.world.time {
                        return Attempt::Done(Err(SimError::RecvTimeout(*chan)));
                    }
                }
                Attempt::Block(BlockOn::Chan {
                    chan: *chan,
                    deadline: *deadline,
                })
            }
            Op::CloseChan { chan, site } => {
                self.world.chans[chan.index()].closed = true;
                self.charge(self.costs.msg_base);
                let _ = site;
                self.wake_chan_waiters(*chan);
                Attempt::Done(Ok(Value::Unit))
            }
            Op::ReadInput { port, site } => {
                if let Some(h) = &mut self.nondet_override {
                    if let Some(v) = h.override_input(task, *port) {
                        self.charge(self.costs.io);
                        self.world
                            .inputs_seen
                            .push((self.world.ports[port.index()].name.clone(), v.clone()));
                        self.emit(Event::InputRead {
                            task,
                            port: *port,
                            value: v.clone(),
                            site: (*site).into(),
                        });
                        return Attempt::Done(Ok(v));
                    }
                }
                let rec = &mut self.world.ports[port.index()];
                if let Some(v) = rec.queue.pop_front() {
                    self.charge(self.costs.io);
                    self.world
                        .inputs_seen
                        .push((self.world.ports[port.index()].name.clone(), v.clone()));
                    self.emit(Event::InputRead {
                        task,
                        port: *port,
                        value: v.clone(),
                        site: (*site).into(),
                    });
                    return Attempt::Done(Ok(v));
                }
                if rec.remaining_inputs == 0 {
                    return Attempt::Done(Err(SimError::InputExhausted(*port)));
                }
                Attempt::Block(BlockOn::Port(*port))
            }
            Op::WriteOutput { port, value, site } => {
                self.charge(self.costs.io);
                let rec = OutputRecord {
                    time: self.world.time,
                    task,
                    port: *port,
                    port_name: self.world.ports[port.index()].name.clone(),
                    value: value.clone(),
                };
                self.world.outputs.push(rec);
                self.emit(Event::Output {
                    task,
                    port: *port,
                    value: value.clone(),
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Probe { name, value, site } => {
                self.charge(self.costs.probe);
                self.emit(Event::Probe {
                    task,
                    name: (*name).to_owned(),
                    value: value.clone(),
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Count { name, delta, site } => {
                let total = self.world.counters.entry((*name).to_owned()).or_insert(0);
                *total += *delta;
                let total = *total;
                self.charge(self.costs.probe);
                self.emit(Event::Counter {
                    task,
                    name: (*name).to_owned(),
                    total,
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Int(total)))
            }
            Op::Rng { bound, site } => {
                let raw = match &mut self.nondet_override {
                    Some(h) => h
                        .override_rng(task)
                        .unwrap_or_else(|| self.world.rng.next_u64()),
                    None => self.world.rng.next_u64(),
                };
                let v = if *bound == 0 { raw } else { raw % *bound };
                self.charge(self.costs.rng);
                self.emit(Event::RngDraw {
                    task,
                    value: raw,
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Int(v as i64)))
            }
            Op::Sleep { until, ticks, site } => match *until {
                None => {
                    let u = self.world.time.saturating_add(*ticks);
                    *until = Some(u);
                    self.world.timers.push(Reverse((u, task.0)));
                    self.emit(Event::Sleep {
                        task,
                        until: u,
                        site: (*site).into(),
                    });
                    Attempt::Block(BlockOn::Timer { until: u })
                }
                Some(u) if u <= self.world.time => Attempt::Done(Ok(Value::Unit)),
                Some(u) => Attempt::Block(BlockOn::Timer { until: u }),
            },
            Op::Yield { site } => {
                self.charge(self.costs.yield_);
                self.emit(Event::Yield {
                    task,
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Alloc { bytes, site } => {
                let rec = &self.world.tasks[task.index()];
                let new_used = rec.mem_used + *bytes;
                if let Some(budget) = rec.mem_budget {
                    if new_used > budget {
                        self.charge(self.costs.alloc);
                        self.emit(Event::AllocFail {
                            task,
                            requested: *bytes,
                            budget,
                            site: (*site).into(),
                        });
                        return Attempt::Done(Err(SimError::OutOfMemory {
                            requested: *bytes,
                            budget,
                        }));
                    }
                }
                self.world.tasks[task.index()].mem_used = new_used;
                self.charge(self.costs.alloc);
                self.emit(Event::Alloc {
                    task,
                    bytes: *bytes,
                    site: (*site).into(),
                });
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Free { bytes, site } => {
                let rec = &mut self.world.tasks[task.index()];
                rec.mem_used = rec.mem_used.saturating_sub(*bytes);
                self.charge(self.costs.alloc);
                let _ = site;
                Attempt::Done(Ok(Value::Unit))
            }
            Op::Join { task: target, site } => {
                if target.index() >= self.world.tasks.len() {
                    return Attempt::Done(Err(SimError::NoSuchTask(*target)));
                }
                let trec = &self.world.tasks[target.index()];
                if matches!(trec.phase, Phase::Exited { .. }) || trec.killed {
                    self.charge(self.costs.yield_);
                    self.emit(Event::Joined {
                        task,
                        target: *target,
                        site: (*site).into(),
                    });
                    return Attempt::Done(Ok(Value::Unit));
                }
                self.world.tasks[target.index()].joiners.push(task);
                Attempt::Block(BlockOn::Join(*target))
            }
            Op::Crash { reason, site } => {
                self.world.crashes.push(CrashRecord {
                    time: self.world.time,
                    task,
                    reason: reason.clone(),
                    site: (*site).to_owned(),
                });
                self.charge(self.costs.yield_);
                self.emit(Event::Crash {
                    task,
                    reason: reason.clone(),
                    site: (*site).into(),
                });
                if self.stop_on_crash && self.world.stop.is_none() {
                    self.world.stop = Some(StopReason::Stopped);
                }
                Attempt::Done(Ok(Value::Unit))
            }
            Op::StopRun { site } => {
                let _ = site;
                if self.world.stop.is_none() {
                    self.world.stop = Some(StopReason::Stopped);
                }
                Attempt::Done(Ok(Value::Unit))
            }
        }
    }

    /// Records a panic-style crash coming from outside `exec_op` (task body
    /// panicked or returned an unexpected error).
    pub fn record_crash(&mut self, task: TaskId, reason: String, site: &str) {
        self.world.crashes.push(CrashRecord {
            time: self.world.time,
            task,
            reason: reason.clone(),
            site: site.to_owned(),
        });
        self.emit(Event::Crash {
            task,
            reason,
            site: site.to_owned().into(),
        });
        if self.stop_on_crash && self.world.stop.is_none() {
            self.world.stop = Some(StopReason::Stopped);
        }
    }

    /// Charges a successful op: advances the execution clock and the step
    /// counter.
    pub(crate) fn charge(&mut self, cost: u64) {
        self.world.time = self.world.time.saturating_add(cost);
        self.world.steps += 1;
        // Deliveries that became due mid-op happen before the next decision;
        // the driver calls `deliver_due` at every decision point.
    }

    /// Total wall ticks: execution plus instrumentation.
    pub fn wall_time(&self) -> u64 {
        self.world.time.saturating_add(self.world.wall_extra)
    }

    /// Per-observer instrumentation cost, by observer name.
    pub fn observer_costs(&self) -> Vec<(String, u64)> {
        self.observers
            .iter()
            .map(|s| (s.obs.name().to_owned(), s.cost))
            .collect()
    }

    /// Consumes the kernel's observers for post-run retrieval.
    pub fn take_observers(&mut self) -> Vec<Box<dyn Observer>> {
        std::mem::take(&mut self.observers)
            .into_iter()
            .map(|s| s.obs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RandomPolicy;

    fn kernel() -> Kernel {
        Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig::clean(),
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        )
    }

    fn kernel_with_task() -> (Kernel, TaskId) {
        let mut k = kernel();
        let t = k.add_task("t", "g", None);
        (k, t)
    }

    #[test]
    fn read_write_round_trip() {
        let (mut k, t) = kernel_with_task();
        let v = k.add_var("x", Value::Int(0));
        let mut w = Op::Write {
            var: v,
            value: Value::Int(7),
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut w), Attempt::Done(Ok(_))));
        let mut r = Op::Read { var: v, site: "s" };
        match k.exec_op(t, &mut r) {
            Attempt::Done(Ok(val)) => assert_eq!(val, Value::Int(7)),
            _ => panic!("read failed"),
        }
        assert_eq!(k.world.steps, 2);
        assert!(k.world.time >= 2);
    }

    #[test]
    fn lock_blocks_second_task() {
        let (mut k, t0) = kernel_with_task();
        let t1 = k.add_task("t1", "g", None);
        let l = k.add_lock("m");
        let mut a = Op::Lock { lock: l, site: "s" };
        assert!(matches!(k.exec_op(t0, &mut a), Attempt::Done(Ok(_))));
        let mut b = Op::Lock { lock: l, site: "s" };
        assert!(matches!(
            k.exec_op(t1, &mut b),
            Attempt::Block(BlockOn::Lock(_))
        ));
        // Unlock wakes the blocked task.
        k.world.tasks[t1.index()].phase = Phase::Blocked(BlockOn::Lock(l));
        let mut u = Op::Unlock { lock: l, site: "s" };
        assert!(matches!(k.exec_op(t0, &mut u), Attempt::Done(Ok(_))));
        assert_eq!(k.world.tasks[t1.index()].phase, Phase::Ready);
    }

    #[test]
    fn unlock_without_holding_is_error() {
        let (mut k, t) = kernel_with_task();
        let l = k.add_lock("m");
        let mut u = Op::Unlock { lock: l, site: "s" };
        match k.exec_op(t, &mut u) {
            Attempt::Done(Err(SimError::Internal(_))) => {}
            _ => panic!("expected internal error"),
        }
    }

    #[test]
    fn send_recv_round_trip() {
        let (mut k, t) = kernel_with_task();
        let c = k.add_chan("ch", ChanClass::Local);
        let mut s = Op::Send {
            chan: c,
            value: Value::Int(3),
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut s), Attempt::Done(Ok(_))));
        let mut r = Op::Recv {
            chan: c,
            deadline: None,
            timeout: None,
            site: "s",
        };
        match k.exec_op(t, &mut r) {
            Attempt::Done(Ok(v)) => assert_eq!(v, Value::Int(3)),
            _ => panic!("recv failed"),
        }
    }

    #[test]
    fn recv_on_empty_blocks_and_closed_errors() {
        let (mut k, t) = kernel_with_task();
        let c = k.add_chan("ch", ChanClass::Local);
        let mut r = Op::Recv {
            chan: c,
            deadline: None,
            timeout: None,
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut r), Attempt::Block(_)));
        let mut cl = Op::CloseChan { chan: c, site: "s" };
        assert!(matches!(k.exec_op(t, &mut cl), Attempt::Done(Ok(_))));
        let mut r2 = Op::Recv {
            chan: c,
            deadline: None,
            timeout: None,
            site: "s",
        };
        assert!(matches!(
            k.exec_op(t, &mut r2),
            Attempt::Done(Err(SimError::ChannelClosed(_)))
        ));
    }

    #[test]
    fn recv_timeout_resolves_deadline_once() {
        let (mut k, t) = kernel_with_task();
        let c = k.add_chan("ch", ChanClass::Local);
        let mut r = Op::Recv {
            chan: c,
            deadline: None,
            timeout: Some(10),
            site: "s",
        };
        let now = k.world.time;
        assert!(matches!(k.exec_op(t, &mut r), Attempt::Block(_)));
        match r {
            Op::Recv {
                deadline: Some(d), ..
            } => assert_eq!(d, now + 10),
            _ => panic!("deadline not resolved"),
        }
        // Past the deadline the retry reports a timeout.
        k.world.time += 20;
        assert!(matches!(
            k.exec_op(t, &mut r),
            Attempt::Done(Err(SimError::RecvTimeout(_)))
        ));
    }

    #[test]
    fn congestion_drops_network_sends() {
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig {
                drop_per_mille: 1000,
                ..EnvConfig::clean()
            },
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        );
        let t = k.add_task("t", "g", None);
        let c = k.add_chan("net", ChanClass::Network);
        let mut s = Op::Send {
            chan: c,
            value: Value::Int(1),
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut s), Attempt::Done(Ok(_))));
        assert!(
            k.world.chans[c.index()].queue.is_empty(),
            "message should be dropped"
        );
        let dropped = k
            .world
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .any(|(_, e)| matches!(e, Event::SendDropped { .. }));
        assert!(dropped);
    }

    #[test]
    fn local_channels_never_drop() {
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig {
                drop_per_mille: 1000,
                ..EnvConfig::clean()
            },
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        );
        let t = k.add_task("t", "g", None);
        let c = k.add_chan("loc", ChanClass::Local);
        let mut s = Op::Send {
            chan: c,
            value: Value::Int(1),
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut s), Attempt::Done(Ok(_))));
        assert_eq!(k.world.chans[c.index()].queue.len(), 1);
    }

    #[test]
    fn alloc_respects_budget() {
        let mut env = EnvConfig::clean();
        env.mem_budget.insert("g".into(), 100);
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            env,
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        );
        let t = k.add_task("t", "g", None);
        let mut a = Op::Alloc {
            bytes: 60,
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut a), Attempt::Done(Ok(_))));
        let mut b = Op::Alloc {
            bytes: 60,
            site: "s",
        };
        assert!(matches!(
            k.exec_op(t, &mut b),
            Attempt::Done(Err(SimError::OutOfMemory { .. }))
        ));
        let mut f = Op::Free {
            bytes: 30,
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut f), Attempt::Done(Ok(_))));
        let mut c = Op::Alloc {
            bytes: 60,
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut c), Attempt::Done(Ok(_))));
    }

    #[test]
    fn cv_wait_releases_lock_and_relocks_on_wake() {
        let (mut k, t0) = kernel_with_task();
        let l = k.add_lock("m");
        let cv = k.add_cvar("cv");
        let mut a = Op::Lock { lock: l, site: "s" };
        assert!(matches!(k.exec_op(t0, &mut a), Attempt::Done(Ok(_))));
        let mut w = Op::CvWait {
            cvar: cv,
            lock: l,
            stage: CvStage::Enter,
            site: "s",
        };
        assert!(matches!(
            k.exec_op(t0, &mut w),
            Attempt::Block(BlockOn::Cvar(_))
        ));
        assert_eq!(
            k.world.locks[l.index()].holder,
            None,
            "lock released during wait"
        );
        assert_eq!(k.world.cvars[cv.index()].waiters, vec![t0]);
        // Notify from another task.
        k.world.tasks[t0.index()].phase = Phase::Blocked(BlockOn::Cvar(cv));
        let t1 = k.add_task("t1", "g", None);
        let mut n = Op::CvNotify {
            cvar: cv,
            all: false,
            site: "s",
        };
        assert!(matches!(k.exec_op(t1, &mut n), Attempt::Done(Ok(_))));
        assert_eq!(k.world.tasks[t0.index()].phase, Phase::Ready);
        assert!(k.world.cvars[cv.index()].waiters.is_empty());
        // Retry reacquires the lock.
        assert!(matches!(k.exec_op(t0, &mut w), Attempt::Done(Ok(_))));
        assert_eq!(k.world.locks[l.index()].holder, Some(t0));
    }

    #[test]
    fn notify_with_no_waiters_is_noop() {
        let (mut k, t) = kernel_with_task();
        let cv = k.add_cvar("cv");
        let mut n = Op::CvNotify {
            cvar: cv,
            all: true,
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut n), Attempt::Done(Ok(_))));
    }

    #[test]
    fn input_port_exhaustion_is_reported() {
        let (mut k, t) = kernel_with_task();
        let p = k.add_port("in", PortDir::In);
        let mut r = Op::ReadInput { port: p, site: "s" };
        assert!(matches!(
            k.exec_op(t, &mut r),
            Attempt::Done(Err(SimError::InputExhausted(_)))
        ));
    }

    #[test]
    fn input_delivery_wakes_waiters() {
        let (mut k, t) = kernel_with_task();
        let p = k.add_port("in", PortDir::In);
        k.load_inputs(
            vec![(
                "in".to_owned(),
                vec![TimedInput {
                    time: 5,
                    value: Value::Int(9),
                }],
            )]
            .into_iter(),
        )
        .unwrap();
        let mut r = Op::ReadInput { port: p, site: "s" };
        assert!(matches!(
            k.exec_op(t, &mut r),
            Attempt::Block(BlockOn::Port(_))
        ));
        k.world.tasks[t.index()].phase = Phase::Blocked(BlockOn::Port(p));
        k.world.time = 5;
        assert!(k.deliver_due());
        assert_eq!(k.world.tasks[t.index()].phase, Phase::Ready);
        match k.exec_op(t, &mut r) {
            Attempt::Done(Ok(v)) => assert_eq!(v, Value::Int(9)),
            _ => panic!("input read failed"),
        }
    }

    #[test]
    fn load_inputs_rejects_unknown_port() {
        let mut k = kernel();
        let err = k.load_inputs(
            vec![(
                "nope".to_owned(),
                vec![TimedInput {
                    time: 0,
                    value: Value::Unit,
                }],
            )]
            .into_iter(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn partition_drops_cross_group_sends_until_heal() {
        use crate::config::PartitionEvent;
        let mut env = EnvConfig::clean();
        env.partitions.push(PartitionEvent {
            start: 5,
            heal: 10,
            a: "server0".into(),
            b: "client".into(),
        });
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            env,
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        );
        let client = k.add_task("loader", "client0", None);
        let server = k.add_task("handler", "server0", None);
        let to_server = k.add_chan("server0.data", ChanClass::Network);
        let to_client = k.add_chan("client0.reply", ChanClass::Network);
        let local = k.add_chan("client0.scratch", ChanClass::Local);
        let send = |chan| Op::Send {
            chan,
            value: Value::Int(1),
            site: "s",
        };
        // Before the partition starts, cross-group sends deliver.
        let mut s = send(to_server);
        assert!(matches!(k.exec_op(client, &mut s), Attempt::Done(Ok(_))));
        assert_eq!(k.world.chans[to_server.index()].queue.len(), 1);
        // Partition starts at t=5: both directions drop; local traffic and
        // the RNG are untouched.
        k.world.time = 5;
        assert!(k.deliver_due());
        let rng_before = k.world.rng.clone();
        let mut s = send(to_server);
        assert!(matches!(k.exec_op(client, &mut s), Attempt::Done(Ok(_))));
        assert_eq!(k.world.chans[to_server.index()].queue.len(), 1);
        let mut s = send(to_client);
        assert!(matches!(k.exec_op(server, &mut s), Attempt::Done(Ok(_))));
        assert!(k.world.chans[to_client.index()].queue.is_empty());
        let mut s = send(local);
        assert!(matches!(k.exec_op(client, &mut s), Attempt::Done(Ok(_))));
        assert_eq!(k.world.chans[local.index()].queue.len(), 1);
        assert_eq!(k.world.rng.digest_words(), rng_before.digest_words());
        let drops = k
            .world
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .filter(|(_, e)| matches!(e, Event::SendDropped { .. }))
            .count();
        assert_eq!(drops, 2);
        // Heal at t=10: traffic flows again.
        k.world.time = 10;
        assert!(k.deliver_due());
        assert!(k.world.active_partitions.is_empty());
        let mut s = send(to_server);
        assert!(matches!(k.exec_op(client, &mut s), Attempt::Done(Ok(_))));
        assert_eq!(k.world.chans[to_server.index()].queue.len(), 2);
    }

    #[test]
    fn restart_is_staged_for_the_driver_and_counted() {
        use crate::config::RestartEvent;
        let mut env = EnvConfig::clean();
        env.restarts.push(RestartEvent {
            time: 3,
            group: "node1".into(),
        });
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            env,
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            None,
            true,
            false,
        );
        k.add_task("a", "node1", None);
        assert_eq!(k.next_pending_time(), Some(3));
        k.world.time = 3;
        assert!(k.deliver_due());
        assert_eq!(k.world.restarts_due, vec!["node1".to_owned()]);
        assert_eq!(k.world.restart_counts["node1"], 1);
    }

    #[test]
    fn kill_group_bumps_per_group_crash_count() {
        let mut k = kernel();
        k.add_task("a", "node1", None);
        k.kill_group("node1");
        k.kill_group("node1");
        assert_eq!(k.world.crash_counts["node1"], 2);
        assert!(k.world.restart_counts.is_empty());
    }

    #[test]
    fn kill_group_marks_tasks_and_cleans_cvars() {
        let mut k = kernel();
        let t0 = k.add_task("a", "node1", None);
        let t1 = k.add_task("b", "node2", None);
        let cv = k.add_cvar("cv");
        k.world.cvars[cv.index()].waiters.push(t0);
        k.kill_group("node1");
        assert!(k.world.tasks[t0.index()].killed);
        assert!(!k.world.tasks[t1.index()].killed);
        assert!(k.world.cvars[cv.index()].waiters.is_empty());
    }

    #[test]
    fn kill_group_releases_held_locks_and_wakes_waiters() {
        let mut k = kernel();
        let t0 = k.add_task("a", "node1", None);
        let t1 = k.add_task("b", "node2", None);
        let l = k.add_lock("m");
        let mut a = Op::Lock { lock: l, site: "s" };
        assert!(matches!(k.exec_op(t0, &mut a), Attempt::Done(Ok(_))));
        let mut b = Op::Lock { lock: l, site: "s" };
        assert!(matches!(
            k.exec_op(t1, &mut b),
            Attempt::Block(BlockOn::Lock(_))
        ));
        k.world.tasks[t1.index()].phase = Phase::Blocked(BlockOn::Lock(l));
        // The crash models a process death: its mutexes are released, not
        // orphaned, so the surviving waiter acquires the lock.
        k.kill_group("node1");
        assert_eq!(k.world.locks[l.index()].holder, None);
        assert_eq!(k.world.tasks[t1.index()].phase, Phase::Ready);
        let mut again = Op::Lock { lock: l, site: "s" };
        assert!(matches!(k.exec_op(t1, &mut again), Attempt::Done(Ok(_))));
    }

    #[test]
    fn join_on_killed_task_completes() {
        let mut k = kernel();
        let t0 = k.add_task("a", "node1", None);
        let t1 = k.add_task("b", "node2", None);
        k.kill_group("node1");
        let mut j = Op::Join {
            task: t0,
            site: "s",
        };
        assert!(matches!(k.exec_op(t1, &mut j), Attempt::Done(Ok(_))));
    }

    #[test]
    fn crash_op_records_and_optionally_stops() {
        let (mut k, t) = kernel_with_task();
        let mut c = Op::Crash {
            reason: "boom".into(),
            site: "s",
        };
        assert!(matches!(k.exec_op(t, &mut c), Attempt::Done(Ok(_))));
        assert_eq!(k.world.crashes.len(), 1);
        assert!(k.world.stop.is_none());
        k.stop_on_crash = true;
        let mut c2 = Op::Crash {
            reason: "boom2".into(),
            site: "s",
        };
        let _ = k.exec_op(t, &mut c2);
        assert!(k.world.stop.is_some());
    }

    #[test]
    fn counters_accumulate() {
        let (mut k, t) = kernel_with_task();
        let mut c1 = Op::Count {
            name: "drops",
            delta: 2,
            site: "s",
        };
        let _ = k.exec_op(t, &mut c1);
        let mut c2 = Op::Count {
            name: "drops",
            delta: 3,
            site: "s",
        };
        match k.exec_op(t, &mut c2) {
            Attempt::Done(Ok(v)) => assert_eq!(v, Value::Int(5)),
            _ => panic!("count failed"),
        }
        assert_eq!(k.world.counters["drops"], 5);
    }

    #[test]
    fn rng_draw_is_recorded_and_bounded() {
        let (mut k, t) = kernel_with_task();
        for _ in 0..50 {
            let mut r = Op::Rng {
                bound: 10,
                site: "s",
            };
            match k.exec_op(t, &mut r) {
                Attempt::Done(Ok(Value::Int(v))) => assert!((0..10).contains(&v)),
                _ => panic!("rng failed"),
            }
        }
        let draws = k
            .world
            .trace
            .as_ref()
            .unwrap()
            .iter()
            .filter(|(_, e)| matches!(e, Event::RngDraw { .. }))
            .count();
        assert_eq!(draws, 50);
    }

    #[test]
    fn rng_override_hook_takes_precedence() {
        struct FixedRng;
        impl NondetOverride for FixedRng {
            fn override_rng(&mut self, _t: TaskId) -> Option<u64> {
                Some(7)
            }
        }
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig::clean(),
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            Some(Box::new(FixedRng)),
            false,
            false,
        );
        let t = k.add_task("t", "g", None);
        let mut r = Op::Rng {
            bound: 100,
            site: "s",
        };
        match k.exec_op(t, &mut r) {
            Attempt::Done(Ok(v)) => assert_eq!(v, Value::Int(7)),
            _ => panic!("rng failed"),
        }
    }

    #[test]
    fn read_override_hook_replaces_value() {
        struct FixedRead;
        impl NondetOverride for FixedRead {
            fn override_read(&mut self, _t: TaskId, _v: VarId, _a: &Value) -> Option<Value> {
                Some(Value::Int(99))
            }
        }
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig::clean(),
            Box::new(RandomPolicy::new(1)),
            Vec::new(),
            Some(Box::new(FixedRead)),
            false,
            false,
        );
        let t = k.add_task("t", "g", None);
        let v = k.add_var("x", Value::Int(1));
        let mut r = Op::Read { var: v, site: "s" };
        match k.exec_op(t, &mut r) {
            Attempt::Done(Ok(val)) => assert_eq!(val, Value::Int(99)),
            _ => panic!("read failed"),
        }
    }

    #[test]
    fn sleep_sets_timer_and_wakes() {
        let (mut k, t) = kernel_with_task();
        let mut s = Op::Sleep {
            until: None,
            ticks: 10,
            site: "s",
        };
        let start = k.world.time;
        assert!(matches!(
            k.exec_op(t, &mut s),
            Attempt::Block(BlockOn::Timer { .. })
        ));
        k.world.tasks[t.index()].phase = Phase::Blocked(BlockOn::Timer { until: start + 10 });
        assert_eq!(k.next_pending_time(), Some(start + 10));
        k.world.time = start + 10;
        assert!(k.deliver_due());
        assert_eq!(k.world.tasks[t.index()].phase, Phase::Ready);
        assert!(matches!(k.exec_op(t, &mut s), Attempt::Done(Ok(_))));
    }

    #[test]
    fn decide_skips_singletons_and_records_multis() {
        let mut k = kernel();
        let t0 = k.add_task("a", "g", None);
        let t1 = k.add_task("b", "g", None);
        assert_eq!(k.decide(DecisionKind::NextTask, &[t0]), Some(t0));
        assert!(k.world.decisions.is_empty());
        let chosen = k.decide(DecisionKind::NextTask, &[t0, t1]).unwrap();
        assert!(chosen == t0 || chosen == t1);
        assert_eq!(k.world.decisions.len(), 1);
        assert_eq!(k.world.decisions[0].n, 2);
    }

    #[test]
    fn observer_costs_accrue_to_wall_clock() {
        struct Pricey;
        impl Observer for Pricey {
            fn name(&self) -> &'static str {
                "pricey"
            }
            fn on_event(&mut self, _m: &EventMeta, _e: &Event) -> u64 {
                5
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut k = Kernel::new(
            1,
            OpCosts::default(),
            EnvConfig::clean(),
            Box::new(RandomPolicy::new(1)),
            vec![Box::new(Pricey)],
            None,
            false,
            false,
        );
        let t = k.add_task("t", "g", None);
        let v = k.add_var("x", Value::Int(0));
        let mut w = Op::Write {
            var: v,
            value: Value::Int(1),
            site: "s",
        };
        let _ = k.exec_op(t, &mut w);
        // add_task + write events so far; each costs 5 wall ticks.
        assert_eq!(k.world.wall_extra, 10);
        assert!(k.wall_time() > k.world.time);
        assert_eq!(k.observer_costs(), vec![("pricey".to_owned(), 10)]);
    }
}
