//! The on-disk snapshot codec and the spill hook.
//!
//! A [`WorldSnapshot`] splits into two very
//! different kinds of state:
//!
//! - *live* machine state (tasks, variables, locks, channels, ports,
//!   clocks, RNG, pending environment events) — small, different at every
//!   snapshot; and
//! - *history* logs ([`ChunkedLog`]s) — large, append-only, and chunked
//!   into immutable sealed chunks plus one bounded mutable tail.
//!
//! Sealed chunks never change after sealing, so two snapshots of the same
//! run share every chunk of their common prefix. The on-disk format
//! exploits exactly that: a snapshot *manifest* carries the live state, the
//! inline log tails, and for each log only the *number* of sealed chunks it
//! references — the chunk payloads themselves are content-addressed by
//! `(log name, chunk index)` and written once, the first time any snapshot
//! references them. A later snapshot of the same run is therefore a
//! *delta*: its manifest plus whichever chunks sealed since the previous
//! spill.
//!
//! This module owns the *codec* (world ⇄ serializable manifest + chunk
//! payloads) and the [`SnapshotSink`] hook the driver offers snapshots
//! through; the store that lays manifests and chunks out on disk (and
//! enforces the replay-starting-point availability bound) lives in
//! `dd-trace`, which has the file-format dependencies.
//!
//! Integrity: the manifest embeds the world's FNV-1a
//! `WorldState::digest` at encode time, and
//! [`decode_snapshot`] recomputes it after reassembly — a truncated or
//! garbled artifact fails decode with an error naming the mismatch instead
//! of resuming from a corrupt world.

use crate::error::StopReason;
use crate::history::ChunkedLog;
use crate::kernel::{
    ChanRec, CvarRec, LockRec, PendingInput, PortRec, TaskRec, VarRec, WorldSnapshot, WorldState,
};
use crate::policy::SchedulePolicy;
use crate::rng::DetRng;
use serde::{Content, Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

/// Version tag of the snapshot manifest format.
///
/// Version 2 added the fault-plane runtime state (partition schedule
/// status, restart queue, per-group crash/restart counters) to the live
/// state; version-1 manifests predate scheduled faults and are rejected.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 2;

/// One history log's entry in a [`SnapshotManifest`]: the chunking
/// geometry, how many sealed chunks the snapshot references (their payloads
/// live in separate content-addressed artifacts), and the mutable tail
/// inline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogManifest {
    /// Canonical log name (`"trace"`, `"decisions"`, `"syslog-3"`, …).
    pub name: String,
    /// Elements per sealed chunk.
    pub chunk_len: u64,
    /// Number of sealed chunks; payload `i` is fetched by
    /// `(name, i)` for `i < sealed`.
    pub sealed: u64,
    /// The mutable tail, encoded inline (always smaller than one chunk).
    pub tail: Content,
}

/// The serializable form of one [`WorldSnapshot`] minus the sealed chunk
/// payloads (see the [module docs](self) for the delta layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotManifest {
    /// Format version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub version: u32,
    /// Decision index the snapshot was taken at.
    pub decision: u64,
    /// Successful operations executed up to the snapshot point.
    pub step: u64,
    /// Execution-clock value at the snapshot point.
    pub time: u64,
    /// FNV-1a digest of the world at encode time; decode recomputes and
    /// compares it to reject corrupt or truncated artifacts.
    pub digest: u64,
    /// The live (non-log) machine state, encoded.
    pub live: Content,
    /// One entry per history log present in the world.
    pub logs: Vec<LogManifest>,
}

/// Identifies one spilled snapshot in a [`RunOutput`](crate::driver::RunOutput):
/// where in the run it was taken and the sink-assigned id it is retrievable
/// under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotMark {
    /// Decision index the snapshot was taken at.
    pub decision: u64,
    /// Operation count at the snapshot point.
    pub step: u64,
    /// Execution-clock value at the snapshot point.
    pub time: u64,
    /// Sink-assigned retrieval id.
    pub id: u64,
}

/// Destination for spilled snapshots (see
/// [`RunConfig::snapshot_sink`](crate::config::RunConfig)).
///
/// When a sink is configured, the driver *offers* it every snapshot the
/// run's [`CheckpointPlan`](crate::config::CheckpointPlan) calls for
/// instead of accumulating them in memory. The sink decides whether to keep the offer (its placement and
/// eviction policy is its own business — `dd-trace`'s store maintains a
/// bounded distance-to-nearest-checkpoint guarantee) and returns the id the
/// kept snapshot is retrievable under.
pub trait SnapshotSink: Send {
    /// Offers one snapshot. Returns `Ok(Some(id))` if the sink kept it,
    /// `Ok(None)` if it declined, and `Err` on a write failure (the run
    /// continues; errors are surfaced in
    /// [`RunOutput::spill_errors`](crate::driver::RunOutput)).
    fn offer(&mut self, snap: &WorldSnapshot) -> Result<Option<u64>, String>;
}

/// The live (non-log) half of a [`WorldState`], in a serializable mirror.
#[derive(Serialize, Deserialize)]
struct LiveState {
    tasks: Vec<TaskRec>,
    vars: Vec<VarRec>,
    locks: Vec<LockRec>,
    cvars: Vec<CvarRec>,
    chans: Vec<ChanRec>,
    ports: Vec<PortRec>,
    time: u64,
    wall_extra: u64,
    steps: u64,
    events: u64,
    rng: DetRng,
    timers: BinaryHeap<Reverse<(u64, u32)>>,
    pending_inputs: VecDeque<PendingInput>,
    pending_crashes: VecDeque<(u64, String)>,
    pending_partitions: VecDeque<(u64, String, String)>,
    pending_heals: VecDeque<(u64, String, String)>,
    active_partitions: BTreeSet<(String, String)>,
    pending_restarts: VecDeque<(u64, String)>,
    restarts_due: Vec<String>,
    restarts_fired: Vec<(String, u32)>,
    crash_counts: BTreeMap<String, u64>,
    restart_counts: BTreeMap<String, u64>,
    counters: BTreeMap<String, i64>,
    cancelling: bool,
    stop: Option<StopReason>,
    decision_seq: u64,
    net_sends: u64,
    record_syslog: bool,
    hash_decisions: bool,
}

impl LiveState {
    fn of(w: &WorldState) -> LiveState {
        LiveState {
            tasks: w.tasks.clone(),
            vars: w.vars.clone(),
            locks: w.locks.clone(),
            cvars: w.cvars.clone(),
            chans: w.chans.clone(),
            ports: w.ports.clone(),
            time: w.time,
            wall_extra: w.wall_extra,
            steps: w.steps,
            events: w.events,
            rng: w.rng.clone(),
            timers: w.timers.clone(),
            pending_inputs: w.pending_inputs.clone(),
            pending_crashes: w.pending_crashes.clone(),
            pending_partitions: w.pending_partitions.clone(),
            pending_heals: w.pending_heals.clone(),
            active_partitions: w.active_partitions.clone(),
            pending_restarts: w.pending_restarts.clone(),
            restarts_due: w.restarts_due.clone(),
            restarts_fired: w.restarts_fired.clone(),
            crash_counts: w.crash_counts.clone(),
            restart_counts: w.restart_counts.clone(),
            counters: w.counters.clone(),
            cancelling: w.cancelling,
            stop: w.stop.clone(),
            decision_seq: w.decision_seq,
            net_sends: w.net_sends,
            record_syslog: w.record_syslog,
            hash_decisions: w.hash_decisions,
        }
    }
}

fn log_manifest<T: Serialize>(name: &str, log: &ChunkedLog<T>) -> LogManifest {
    LogManifest {
        name: name.to_owned(),
        chunk_len: log.chunk_len() as u64,
        sealed: log.sealed_chunk_count() as u64,
        tail: log.tail().to_content(),
    }
}

/// Encodes a snapshot's manifest: live state, log geometry, inline tails,
/// and the integrity digest. Chunk payloads are fetched separately via
/// [`sealed_chunk`].
///
/// The scheduling policy is *not* part of the manifest — the two consumers
/// supply their own (exact replay rebuilds a
/// [`ReplayPolicy`](crate::policy::ReplayPolicy) from the schedule
/// artifact's decisions; exploration forks with a search policy).
pub fn encode_manifest(snap: &WorldSnapshot) -> SnapshotManifest {
    let w = &snap.world;
    let mut logs = Vec::new();
    if let Some(trace) = &w.trace {
        logs.push(log_manifest("trace", trace));
    }
    logs.push(log_manifest("outputs", &w.outputs));
    logs.push(log_manifest("inputs_seen", &w.inputs_seen));
    logs.push(log_manifest("crashes", &w.crashes));
    logs.push(log_manifest("decisions", &w.decisions));
    logs.push(log_manifest("decision_enabled", &w.decision_enabled));
    logs.push(log_manifest("decision_hashes", &w.decision_hashes));
    for (i, log) in w.sys_log.iter().enumerate() {
        logs.push(log_manifest(&format!("syslog-{i}"), log));
    }
    SnapshotManifest {
        version: SNAPSHOT_FORMAT_VERSION,
        decision: w.decision_seq,
        step: w.steps,
        time: w.time,
        digest: w.digest(),
        live: LiveState::of(w).to_content(),
        logs,
    }
}

/// Encodes the payload of one sealed chunk of the named log, or `None` if
/// the log or index does not exist in this snapshot. Chunk payloads are
/// immutable: `(log, index)` encodes identically in every later snapshot of
/// the same run, which is what lets a store write each one exactly once.
pub fn sealed_chunk(snap: &WorldSnapshot, log: &str, index: u64) -> Option<Content> {
    let w = &snap.world;
    let i = usize::try_from(index).ok()?;
    match log {
        "trace" => w
            .trace
            .as_ref()
            .and_then(|l| l.sealed_chunk(i))
            .map(|s| s.to_content()),
        "outputs" => w.outputs.sealed_chunk(i).map(|s| s.to_content()),
        "inputs_seen" => w.inputs_seen.sealed_chunk(i).map(|s| s.to_content()),
        "crashes" => w.crashes.sealed_chunk(i).map(|s| s.to_content()),
        "decisions" => w.decisions.sealed_chunk(i).map(|s| s.to_content()),
        "decision_enabled" => w.decision_enabled.sealed_chunk(i).map(|s| s.to_content()),
        "decision_hashes" => w.decision_hashes.sealed_chunk(i).map(|s| s.to_content()),
        _ => log
            .strip_prefix("syslog-")
            .and_then(|n| n.parse::<usize>().ok())
            .and_then(|t| w.sys_log.get(t))
            .and_then(|l| l.sealed_chunk(i))
            .map(|s| s.to_content()),
    }
}

fn decode_log<T: Deserialize>(
    m: &LogManifest,
    fetch: &mut dyn FnMut(&str, u64) -> Result<Content, String>,
) -> Result<ChunkedLog<T>, String> {
    let mut sealed = Vec::with_capacity(m.sealed as usize);
    for i in 0..m.sealed {
        let payload = fetch(&m.name, i)?;
        let chunk = Vec::<T>::from_content(&payload)
            .map_err(|e| format!("log `{}` chunk {i}: {e}", m.name))?;
        sealed.push(chunk);
    }
    let tail =
        Vec::<T>::from_content(&m.tail).map_err(|e| format!("log `{}` tail: {e}", m.name))?;
    ChunkedLog::from_parts(m.chunk_len as usize, sealed, tail)
        .map_err(|e| format!("log `{}`: {e}", m.name))
}

fn find<'a>(logs: &'a [LogManifest], name: &str) -> Result<&'a LogManifest, String> {
    logs.iter()
        .find(|l| l.name == name)
        .ok_or_else(|| format!("manifest is missing log `{name}`"))
}

/// Reassembles a [`WorldSnapshot`] from a manifest, a chunk fetcher (called
/// once per `(log, index)` the manifest references), and the scheduling
/// policy to attach.
///
/// Fails — never panics — on version mismatch, missing or malformed logs,
/// and on any digest mismatch between the manifest and the reassembled
/// world (truncated or garbled artifacts).
pub fn decode_snapshot(
    manifest: &SnapshotManifest,
    fetch: &mut dyn FnMut(&str, u64) -> Result<Content, String>,
    policy: Box<dyn SchedulePolicy>,
) -> Result<WorldSnapshot, String> {
    if manifest.version != SNAPSHOT_FORMAT_VERSION {
        return Err(format!(
            "unsupported snapshot format version {} (this build reads {})",
            manifest.version, SNAPSHOT_FORMAT_VERSION
        ));
    }
    let live = LiveState::from_content(&manifest.live).map_err(|e| format!("live state: {e}"))?;
    let trace = match manifest.logs.iter().find(|l| l.name == "trace") {
        Some(m) => Some(decode_log(m, fetch)?),
        None => None,
    };
    let outputs = decode_log(find(&manifest.logs, "outputs")?, fetch)?;
    let inputs_seen = decode_log(find(&manifest.logs, "inputs_seen")?, fetch)?;
    let crashes = decode_log(find(&manifest.logs, "crashes")?, fetch)?;
    let decisions = decode_log(find(&manifest.logs, "decisions")?, fetch)?;
    let decision_enabled = decode_log(find(&manifest.logs, "decision_enabled")?, fetch)?;
    let decision_hashes = decode_log(find(&manifest.logs, "decision_hashes")?, fetch)?;
    let mut sys_log = Vec::with_capacity(live.tasks.len());
    for i in 0..live.tasks.len() {
        sys_log.push(decode_log(
            find(&manifest.logs, &format!("syslog-{i}"))?,
            fetch,
        )?);
    }
    let world = WorldState {
        tasks: live.tasks,
        vars: live.vars,
        locks: live.locks,
        cvars: live.cvars,
        chans: live.chans,
        ports: live.ports,
        time: live.time,
        wall_extra: live.wall_extra,
        steps: live.steps,
        events: live.events,
        rng: live.rng,
        timers: live.timers,
        pending_inputs: live.pending_inputs,
        pending_crashes: live.pending_crashes,
        pending_partitions: live.pending_partitions,
        pending_heals: live.pending_heals,
        active_partitions: live.active_partitions,
        pending_restarts: live.pending_restarts,
        restarts_due: live.restarts_due,
        restarts_fired: live.restarts_fired,
        crash_counts: live.crash_counts,
        restart_counts: live.restart_counts,
        trace,
        outputs,
        inputs_seen,
        counters: live.counters,
        crashes,
        decisions,
        decision_enabled,
        cancelling: live.cancelling,
        stop: live.stop,
        decision_seq: live.decision_seq,
        net_sends: live.net_sends,
        sys_log,
        record_syslog: live.record_syslog,
        decision_hashes,
        hash_decisions: live.hash_decisions,
    };
    let digest = world.digest();
    if digest != manifest.digest {
        return Err(format!(
            "snapshot digest mismatch: manifest says {:016x}, reassembled world is {digest:016x} \
             (corrupt or truncated artifact)",
            manifest.digest
        ));
    }
    Ok(WorldSnapshot { world, policy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointPlan, EnvConfig, PartitionEvent, RestartEvent, RunConfig};
    use crate::driver::{resume_program, run_program};
    use crate::policy::RandomPolicy;
    use crate::program::{Builder, Program};

    struct Racer;

    impl Program for Racer {
        fn name(&self) -> &'static str {
            "racer"
        }
        fn setup(&self, b: &mut Builder<'_>) {
            let total = b.var("total", 0i64);
            let out = b.out_port("result");
            let done = b.channel::<i64>("done", crate::config::ChanClass::Local);
            for i in 0..3 {
                b.spawn(&format!("adder{i}"), "workers", move |mut ctx| async move {
                    for _ in 0..8 {
                        let v = ctx.read(&total, "adder::read").await?;
                        ctx.write(&total, v + 1, "adder::write").await?;
                    }
                    ctx.send(&done, 1, "adder::done").await
                });
            }
            b.spawn("reporter", "main", move |mut ctx| async move {
                for _ in 0..3 {
                    ctx.recv(&done, "reporter::recv").await?;
                }
                let v = ctx.read(&total, "reporter::read").await?;
                ctx.output(out, v, "reporter::out").await
            });
        }
    }

    fn checkpointed_cfg() -> RunConfig {
        RunConfig {
            seed: 11,
            checkpoints: Some(CheckpointPlan::new(4, 200)),
            hash_decisions: true,
            ..Default::default()
        }
    }

    #[test]
    fn encode_decode_roundtrip_resumes_identically() {
        let out = run_program(
            &Racer,
            checkpointed_cfg(),
            Box::new(RandomPolicy::new(7)),
            vec![],
        );
        assert!(!out.snapshots.is_empty(), "run took no snapshots");
        let snap = &out.snapshots[out.snapshots.len() / 2];

        let manifest = encode_manifest(snap);
        let decoded = decode_snapshot(
            &manifest,
            &mut |log, i| {
                sealed_chunk(snap, log, i).ok_or_else(|| format!("missing chunk {log}/{i}"))
            },
            snap.policy.clone_box(),
        )
        .expect("roundtrip decodes");
        assert_eq!(decoded.at_decision(), snap.at_decision());
        assert_eq!(decoded.world.digest(), snap.world.digest());

        // The restored world resumes to the same behaviour as the original.
        let a = resume_program(&Racer, checkpointed_cfg(), snap, None, vec![]);
        let b = resume_program(&Racer, checkpointed_cfg(), &decoded, None, vec![]);
        assert_eq!(a.final_state_hash, b.final_state_hash);
        assert_eq!(a.io, b.io);
    }

    /// Like [`checkpointed_cfg`] but with a fault schedule arranged so every
    /// mid-run snapshot carries non-empty fault-plane state: an immediately
    /// active partition whose heal is far in the future, a second partition
    /// that stays pending forever, and a restart that fires before the first
    /// decision. The partitioned pair never exchanges `Network` messages in
    /// `Racer`, so outputs are unaffected.
    fn faulted_cfg() -> RunConfig {
        RunConfig {
            env: EnvConfig {
                partitions: vec![
                    PartitionEvent {
                        start: 0,
                        heal: 1 << 40,
                        a: "workers".to_owned(),
                        b: "main".to_owned(),
                    },
                    PartitionEvent {
                        start: 1 << 41,
                        heal: (1 << 41) + 1,
                        a: "east".to_owned(),
                        b: "west".to_owned(),
                    },
                ],
                restarts: vec![RestartEvent {
                    time: 0,
                    group: "workers".to_owned(),
                }],
                ..EnvConfig::default()
            },
            ..checkpointed_cfg()
        }
    }

    #[test]
    fn fault_state_roundtrips_and_resumes_identically() {
        let out = run_program(
            &Racer,
            faulted_cfg(),
            Box::new(RandomPolicy::new(7)),
            vec![],
        );
        assert!(!out.snapshots.is_empty(), "run took no snapshots");
        let snap = &out.snapshots[out.snapshots.len() / 2];
        let w = &snap.world;
        assert!(
            !w.active_partitions.is_empty(),
            "partition should still be active at the snapshot"
        );
        assert!(!w.pending_heals.is_empty());
        assert!(!w.pending_partitions.is_empty());
        assert_eq!(w.restart_counts.get("workers"), Some(&1));
        assert!(!w.restarts_fired.is_empty());

        let manifest = encode_manifest(snap);
        let decoded = decode_snapshot(
            &manifest,
            &mut |log, i| {
                sealed_chunk(snap, log, i).ok_or_else(|| format!("missing chunk {log}/{i}"))
            },
            snap.policy.clone_box(),
        )
        .expect("fault-state roundtrip decodes");
        assert_eq!(decoded.world.active_partitions, w.active_partitions);
        assert_eq!(decoded.world.restarts_fired, w.restarts_fired);
        assert_eq!(decoded.world.digest(), w.digest());

        let a = resume_program(&Racer, faulted_cfg(), snap, None, vec![]);
        let b = resume_program(&Racer, faulted_cfg(), &decoded, None, vec![]);
        assert_eq!(a.final_state_hash, b.final_state_hash);
        assert_eq!(a.io, b.io);
        assert_eq!(a.io.group_restarts.get("workers"), Some(&1));
    }

    #[test]
    fn truncated_fault_state_is_rejected_naming_the_live_state() {
        let out = run_program(
            &Racer,
            faulted_cfg(),
            Box::new(RandomPolicy::new(7)),
            vec![],
        );
        let snap = &out.snapshots[out.snapshots.len() / 2];
        let mut manifest = encode_manifest(snap);
        // Drop the fault-plane fields from the live-state map — the shape a
        // manifest truncated at the version-1 field boundary would have.
        let Content::Map(fields) = &mut manifest.live else {
            panic!("live state encodes as a map");
        };
        fields.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                Some("pending_partitions" | "active_partitions" | "restart_counts")
            )
        });
        let err = decode_snapshot(
            &manifest,
            &mut |log, i| {
                sealed_chunk(snap, log, i).ok_or_else(|| format!("missing chunk {log}/{i}"))
            },
            snap.policy.clone_box(),
        )
        .expect_err("truncated live state must fail decode");
        assert!(
            err.contains("live state") && err.contains("pending_partitions"),
            "{err}"
        );
    }

    #[test]
    fn garbled_crash_log_tail_is_rejected_naming_the_log() {
        let out = run_program(
            &Racer,
            faulted_cfg(),
            Box::new(RandomPolicy::new(7)),
            vec![],
        );
        let snap = &out.snapshots[out.snapshots.len() / 2];
        let mut manifest = encode_manifest(snap);
        let crashes = manifest
            .logs
            .iter_mut()
            .find(|l| l.name == "crashes")
            .expect("manifest carries the crash log");
        crashes.tail = Content::Null;
        let err = decode_snapshot(
            &manifest,
            &mut |log, i| {
                sealed_chunk(snap, log, i).ok_or_else(|| format!("missing chunk {log}/{i}"))
            },
            snap.policy.clone_box(),
        )
        .expect_err("garbled crash-log tail must fail decode");
        assert!(err.contains("log `crashes` tail"), "{err}");
    }

    #[test]
    fn garbled_manifest_digest_is_rejected() {
        let out = run_program(
            &Racer,
            checkpointed_cfg(),
            Box::new(RandomPolicy::new(7)),
            vec![],
        );
        let snap = out.snapshots.first().expect("run took snapshots");
        let mut manifest = encode_manifest(snap);
        manifest.digest ^= 1;
        let err = decode_snapshot(
            &manifest,
            &mut |log, i| {
                sealed_chunk(snap, log, i).ok_or_else(|| format!("missing chunk {log}/{i}"))
            },
            snap.policy.clone_box(),
        )
        .expect_err("digest mismatch must fail decode");
        assert!(err.contains("digest mismatch"), "{err}");
    }
}
