//! Scheduling policies: how nondeterministic choices are resolved.
//!
//! The driver consults a [`SchedulePolicy`] at every decision point (which
//! task runs next, which condition-variable waiter wakes). Policies are the
//! pluggable heart of record/replay:
//!
//! - [`RandomPolicy`] — seeded uniform choice; models an arbitrary
//!   production scheduler while remaining reproducible.
//! - [`ReplayPolicy`] — replays a recorded decision stream exactly,
//!   reporting divergence if the recorded choice is impossible.
//! - [`PrefixPolicy`] — forces a decision prefix then continues randomly;
//!   the building block of the systematic inference search in `dd-replay`.
//! - [`RoundRobinPolicy`] — deterministic fair rotation (useful in tests).
//! - [`PctPolicy`] — probabilistic concurrency testing: random thread
//!   priorities with `d-1` priority-change points, good at exposing rare
//!   interleavings with few runs.

use crate::conflict::OpDesc;
use crate::error::StopReason;
use crate::event::DecisionKind;
use crate::history::ChunkedLog;
use crate::ids::TaskId;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};

/// A decision point presented to the policy.
#[derive(Debug)]
pub struct DecisionPoint<'a> {
    /// Global decision sequence number (0-based).
    pub seq: u64,
    /// What is being decided.
    pub kind: DecisionKind,
    /// Candidates, sorted by task id (deterministic).
    pub candidates: &'a [TaskId],
    /// Each candidate's pending-operation conflict footprint, aligned with
    /// `candidates`. This is the same enabled-set snapshot the kernel logs
    /// into [`RunOutput::decision_enabled`](crate::RunOutput); order-guided
    /// policies use it to tell pinned operations from commuting filler.
    pub enabled: &'a [(TaskId, Option<OpDesc>)],
}

/// One recorded decision, as stored in schedule logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedDecision {
    /// What was decided.
    pub kind: DecisionKind,
    /// The task that was chosen.
    pub chosen: TaskId,
}

/// Resolves nondeterministic choices for the driver.
///
/// Policies are `Send + Sync` so that [`WorldSnapshot`](crate::WorldSnapshot)s
/// (which capture the policy state alongside the machine state) can be
/// shared across the worker threads of a parallel schedule explorer. The
/// `Sync` bound costs implementors nothing: `decide` takes `&mut self`, so
/// a policy never needs interior mutability.
pub trait SchedulePolicy: Send + Sync {
    /// A short label for diagnostics and reports.
    fn label(&self) -> &'static str;

    /// Chooses one of `point.candidates`, returning its index.
    ///
    /// Returning `Err` aborts the run with the given [`StopReason`]
    /// (used by replay divergence detection).
    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason>;

    /// Notifies the policy of a forced (single-candidate) grant.
    ///
    /// Singleton grants are never sent through [`decide`](Self::decide) and
    /// are never logged, which keeps decision streams schedule-portable —
    /// but a policy replaying an *operation-order* log (rather than a
    /// decision stream) still needs to observe them to keep its cursor in
    /// step: an operation that was one of several candidates when recorded
    /// may be the only runnable one under a different interleaving of the
    /// commuting filler around it. The default does nothing.
    fn note_forced(&mut self, _task: TaskId, _pending: Option<&OpDesc>) {}

    /// Clones the policy *with its current state* into a fresh box.
    ///
    /// World snapshots capture this alongside the machine state so that a
    /// resumed run's remaining decisions match the original's exactly. The
    /// clone is `Send`-safe: parallel explorers hand it to a worker thread's
    /// private execution shell.
    fn clone_box(&self) -> Box<dyn SchedulePolicy>;
}

/// Seeded uniform-random policy.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: DetRng,
}

impl RandomPolicy {
    /// Creates a policy from a seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: DetRng::seed_from(seed),
        }
    }
}

impl SchedulePolicy for RandomPolicy {
    fn label(&self) -> &'static str {
        "random"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        Ok(self.rng.pick_index(point.candidates.len()))
    }
}

/// Deterministic round-robin rotation over task ids.
#[derive(Debug, Clone, Default)]
pub struct RoundRobinPolicy {
    last: Option<TaskId>,
}

impl RoundRobinPolicy {
    /// Creates a fresh round-robin policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedulePolicy for RoundRobinPolicy {
    fn label(&self) -> &'static str {
        "round-robin"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        let idx = match self.last {
            None => 0,
            Some(prev) => {
                // First candidate strictly greater than the previous pick,
                // wrapping to the smallest.
                point.candidates.iter().position(|&t| t > prev).unwrap_or(0)
            }
        };
        if point.kind == DecisionKind::NextTask {
            self.last = Some(point.candidates[idx]);
        }
        Ok(idx)
    }
}

/// Replays a recorded decision stream exactly.
///
/// The stream is a [`ChunkedLog`], so building the policy from a recorded
/// artifact — and cloning it into every [`WorldSnapshot`](crate::WorldSnapshot)
/// taken during replay — bumps chunk handles instead of copying the
/// decision history.
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    decisions: ChunkedLog<RecordedDecision>,
    cursor: usize,
    /// What to do when the stream is exhausted or diverges.
    on_exhausted: ExhaustedBehavior,
    fallback: DetRng,
}

/// Behaviour of [`ReplayPolicy`] past the end of its recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExhaustedBehavior {
    /// Abort the run with [`StopReason::ReplayDivergence`].
    Strict,
    /// Continue with seeded random choices.
    RandomContinue,
}

impl ReplayPolicy {
    /// Creates a strict replay policy (divergence aborts the run).
    pub fn strict(decisions: impl Into<ChunkedLog<RecordedDecision>>) -> Self {
        ReplayPolicy {
            decisions: decisions.into(),
            cursor: 0,
            on_exhausted: ExhaustedBehavior::Strict,
            fallback: DetRng::seed_from(0),
        }
    }

    /// Creates a replay policy that falls back to random choices (seeded by
    /// `seed`) once the recorded stream is exhausted.
    pub fn with_random_tail(decisions: impl Into<ChunkedLog<RecordedDecision>>, seed: u64) -> Self {
        ReplayPolicy {
            decisions: decisions.into(),
            cursor: 0,
            on_exhausted: ExhaustedBehavior::RandomContinue,
            fallback: DetRng::seed_from(seed),
        }
    }

    /// Creates a strict replay policy whose cursor starts at `consumed` —
    /// the policy a run *resumed from a snapshot taken at decision
    /// `consumed`* needs: the restored world already contains the effects
    /// of the first `consumed` recorded decisions, so replay picks up at
    /// the next one.
    pub fn resuming_at(
        decisions: impl Into<ChunkedLog<RecordedDecision>>,
        consumed: usize,
    ) -> Self {
        ReplayPolicy {
            decisions: decisions.into(),
            cursor: consumed,
            on_exhausted: ExhaustedBehavior::Strict,
            fallback: DetRng::seed_from(0),
        }
    }

    /// Returns how many recorded decisions have been consumed.
    pub fn consumed(&self) -> usize {
        self.cursor
    }
}

impl SchedulePolicy for ReplayPolicy {
    fn label(&self) -> &'static str {
        "replay"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        if self.cursor >= self.decisions.len() {
            return match self.on_exhausted {
                ExhaustedBehavior::Strict => Err(StopReason::ReplayDivergence {
                    step: point.seq,
                    detail: "recorded decision stream exhausted".into(),
                }),
                ExhaustedBehavior::RandomContinue => {
                    Ok(self.fallback.pick_index(point.candidates.len()))
                }
            };
        }
        let rec = self.decisions[self.cursor];
        self.cursor += 1;
        if rec.kind != point.kind {
            return Err(StopReason::ReplayDivergence {
                step: point.seq,
                detail: format!(
                    "decision kind mismatch: recorded {:?}, live {:?}",
                    rec.kind, point.kind
                ),
            });
        }
        match point.candidates.iter().position(|&t| t == rec.chosen) {
            Some(idx) => Ok(idx),
            None => Err(StopReason::ReplayDivergence {
                step: point.seq,
                detail: format!(
                    "recorded choice {} not runnable (candidates: {:?})",
                    rec.chosen, point.candidates
                ),
            }),
        }
    }
}

/// Forces a prefix of decisions (by candidate index), then continues with
/// seeded random choices.
///
/// This is the primitive used by the systematic explorer: flipping the last
/// index of the prefix enumerates sibling branches of the schedule tree.
#[derive(Debug, Clone)]
pub struct PrefixPolicy {
    prefix: Vec<u32>,
    cursor: usize,
    tail: DetRng,
}

impl PrefixPolicy {
    /// Creates a policy forcing `prefix` (candidate indices), then random
    /// choices from `seed`.
    pub fn new(prefix: Vec<u32>, seed: u64) -> Self {
        PrefixPolicy {
            prefix,
            cursor: 0,
            tail: DetRng::seed_from(seed),
        }
    }
}

impl SchedulePolicy for PrefixPolicy {
    fn label(&self) -> &'static str {
        "prefix"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        if self.cursor < self.prefix.len() {
            let want = self.prefix[self.cursor] as usize;
            self.cursor += 1;
            // Clamp: a forced index past the live candidate list means this
            // branch does not exist; report divergence so the explorer can
            // prune it.
            if want >= point.candidates.len() {
                return Err(StopReason::ReplayDivergence {
                    step: point.seq,
                    detail: format!(
                        "forced index {want} out of range ({} candidates)",
                        point.candidates.len()
                    ),
                });
            }
            return Ok(want);
        }
        Ok(self.tail.pick_index(point.candidates.len()))
    }
}

/// Probabilistic concurrency testing (PCT, Burckhardt et al.).
///
/// Tasks get random priorities; the highest-priority runnable task always
/// runs, except at `depth - 1` randomly chosen priority-change points where
/// the running task's priority drops below everyone else's. With `depth = d`
/// this finds any bug of depth `d` with probability ≥ 1/(n·k^(d-1)).
#[derive(Debug, Clone)]
pub struct PctPolicy {
    rng: DetRng,
    /// Steps at which a priority change fires.
    change_points: Vec<u64>,
    /// Priority per task (higher runs first); assigned on first sight.
    priorities: std::collections::HashMap<TaskId, u64>,
    next_low: u64,
    steps: u64,
}

impl PctPolicy {
    /// Creates a PCT policy with the given seed, expected run length (in
    /// decisions) and bug depth.
    pub fn new(seed: u64, expected_len: u64, depth: u32) -> Self {
        let mut rng = DetRng::seed_from(seed);
        let mut change_points = Vec::new();
        for _ in 1..depth {
            change_points.push(rng.next_below(expected_len.max(1)));
        }
        change_points.sort_unstable();
        PctPolicy {
            rng,
            change_points,
            priorities: Default::default(),
            next_low: 0,
            steps: 0,
        }
    }
}

impl SchedulePolicy for PctPolicy {
    fn label(&self) -> &'static str {
        "pct"
    }

    fn clone_box(&self) -> Box<dyn SchedulePolicy> {
        Box::new(self.clone())
    }

    fn decide(&mut self, point: &DecisionPoint<'_>) -> Result<usize, StopReason> {
        if point.kind != DecisionKind::NextTask {
            return Ok(self.rng.pick_index(point.candidates.len()));
        }
        self.steps += 1;
        for &t in point.candidates {
            let rng = &mut self.rng;
            self.priorities
                .entry(t)
                .or_insert_with(|| (rng.next_u64() >> 16) + (1 << 32));
        }
        let (idx, &best) = point
            .candidates
            .iter()
            .enumerate()
            .max_by_key(|&(_, &t)| (self.priorities[&t], t))
            .expect("candidates are never empty");
        if self
            .change_points
            .first()
            .is_some_and(|&cp| self.steps > cp)
        {
            self.change_points.remove(0);
            // Demote the chosen task below every base priority.
            self.next_low += 1;
            self.priorities.insert(best, self.next_low);
        }
        Ok(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(seq: u64, cands: &[u32]) -> (Vec<TaskId>, u64) {
        (cands.iter().map(|&c| TaskId(c)).collect(), seq)
    }

    fn decide_with(
        p: &mut dyn SchedulePolicy,
        seq: u64,
        cands: &[u32],
    ) -> Result<usize, StopReason> {
        let (c, seq) = point(seq, cands);
        let enabled: Vec<(TaskId, Option<OpDesc>)> = c.iter().map(|&t| (t, None)).collect();
        p.decide(&DecisionPoint {
            seq,
            kind: DecisionKind::NextTask,
            candidates: &c,
            enabled: &enabled,
        })
    }

    #[test]
    fn random_policy_is_deterministic() {
        let mut a = RandomPolicy::new(9);
        let mut b = RandomPolicy::new(9);
        for i in 0..100 {
            assert_eq!(
                decide_with(&mut a, i, &[0, 1, 2, 3]).unwrap(),
                decide_with(&mut b, i, &[0, 1, 2, 3]).unwrap()
            );
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut p = RoundRobinPolicy::new();
        assert_eq!(decide_with(&mut p, 0, &[0, 1, 2]).unwrap(), 0);
        assert_eq!(decide_with(&mut p, 1, &[0, 1, 2]).unwrap(), 1);
        assert_eq!(decide_with(&mut p, 2, &[0, 1, 2]).unwrap(), 2);
        assert_eq!(decide_with(&mut p, 3, &[0, 1, 2]).unwrap(), 0);
    }

    #[test]
    fn round_robin_handles_shrinking_candidates() {
        let mut p = RoundRobinPolicy::new();
        assert_eq!(decide_with(&mut p, 0, &[0, 1, 2]).unwrap(), 0);
        // Task 0 left; next greater than 0 among [1,2] is 1 at index 0.
        assert_eq!(decide_with(&mut p, 1, &[1, 2]).unwrap(), 0);
        assert_eq!(decide_with(&mut p, 2, &[1, 2]).unwrap(), 1);
    }

    #[test]
    fn replay_follows_recorded_choices() {
        let rec = vec![
            RecordedDecision {
                kind: DecisionKind::NextTask,
                chosen: TaskId(2),
            },
            RecordedDecision {
                kind: DecisionKind::NextTask,
                chosen: TaskId(0),
            },
        ];
        let mut p = ReplayPolicy::strict(rec);
        assert_eq!(decide_with(&mut p, 0, &[0, 1, 2]).unwrap(), 2);
        assert_eq!(decide_with(&mut p, 1, &[0, 1]).unwrap(), 0);
        assert_eq!(p.consumed(), 2);
    }

    #[test]
    fn replay_divergence_on_missing_candidate() {
        let rec = vec![RecordedDecision {
            kind: DecisionKind::NextTask,
            chosen: TaskId(5),
        }];
        let mut p = ReplayPolicy::strict(rec);
        let err = decide_with(&mut p, 0, &[0, 1]).unwrap_err();
        assert!(matches!(err, StopReason::ReplayDivergence { .. }));
    }

    #[test]
    fn replay_divergence_on_exhaustion_when_strict() {
        let mut p = ReplayPolicy::strict(vec![]);
        assert!(decide_with(&mut p, 0, &[0]).is_err());
        let mut q = ReplayPolicy::with_random_tail(vec![], 1);
        assert!(decide_with(&mut q, 0, &[0]).is_ok());
    }

    #[test]
    fn replay_divergence_on_kind_mismatch() {
        let rec = vec![RecordedDecision {
            kind: DecisionKind::WakeOne(crate::ids::CondvarId(0)),
            chosen: TaskId(0),
        }];
        let mut p = ReplayPolicy::strict(rec);
        assert!(decide_with(&mut p, 0, &[0]).is_err());
    }

    #[test]
    fn prefix_policy_forces_then_randomizes() {
        let mut p = PrefixPolicy::new(vec![1, 0], 7);
        assert_eq!(decide_with(&mut p, 0, &[0, 1]).unwrap(), 1);
        assert_eq!(decide_with(&mut p, 1, &[0, 1]).unwrap(), 0);
        // Tail choices are valid indices.
        for i in 2..50 {
            let idx = decide_with(&mut p, i, &[0, 1, 2]).unwrap();
            assert!(idx < 3);
        }
    }

    #[test]
    fn prefix_policy_prunes_impossible_branch() {
        let mut p = PrefixPolicy::new(vec![5], 7);
        assert!(decide_with(&mut p, 0, &[0, 1]).is_err());
    }

    #[test]
    fn pct_policy_prefers_priorities_consistently() {
        let mut a = PctPolicy::new(3, 100, 3);
        let mut b = PctPolicy::new(3, 100, 3);
        for i in 0..100 {
            assert_eq!(
                decide_with(&mut a, i, &[0, 1, 2]).unwrap(),
                decide_with(&mut b, i, &[0, 1, 2]).unwrap()
            );
        }
    }
}
