//! The instrumentation interface of the machine: events and observers.
//!
//! Every operation a task performs — and every scheduling decision the
//! driver makes — is published as an [`Event`] to the run's observers.
//! Recorders, race detectors, data-rate profilers and trace collectors are
//! all observers. An observer returns the *instrumentation cost* (in wall
//! ticks) it charges for handling each event, which is how recording
//! overhead is accounted without perturbing execution semantics.

use crate::ids::{ChanId, CondvarId, LockId, PortId, TaskId, VarId};
use std::borrow::Cow;

/// Owned-or-static site label stored in events.
///
/// Built from a static [`Site`](crate::ids::Site) at runtime (no allocation);
/// deserialized traces hold owned strings.
pub type SiteName = Cow<'static, str>;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// Metadata attached to every event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventMeta {
    /// Global operation counter at the time of the event.
    pub step: u64,
    /// Execution-clock timestamp (virtual ticks, excludes instrumentation).
    pub time: u64,
}

/// The kind of nondeterministic decision the driver asked the policy for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionKind {
    /// Which runnable task executes the next operation.
    NextTask,
    /// Which waiter a `notify_one` on the given condition variable wakes.
    WakeOne(CondvarId),
}

/// Whether a memory access is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load from a shared variable.
    Read,
    /// A store to a shared variable.
    Write,
}

/// A single machine event.
///
/// Events carry enough information for full-fidelity recording: identifiers,
/// values, and the static [`Site`](crate::ids::Site) label of the program location that issued
/// the operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A task was created.
    TaskSpawn {
        /// The spawning task, or `None` for setup-time spawns.
        parent: Option<TaskId>,
        /// The new task.
        child: TaskId,
        /// Human-readable task name.
        name: String,
        /// Failure-domain group (e.g. a node name); used by fault injection.
        group: String,
    },
    /// A task finished.
    TaskExit {
        /// The finished task.
        task: TaskId,
        /// `false` if the task returned an error or panicked.
        ok: bool,
    },
    /// A task was killed by the environment (e.g. node crash).
    TaskKilled {
        /// The killed task.
        task: TaskId,
        /// Why it was killed.
        reason: String,
    },
    /// The driver resolved a nondeterministic choice.
    Decision {
        /// What was being decided.
        kind: DecisionKind,
        /// The deterministic candidate list the policy chose from.
        candidates: Vec<TaskId>,
        /// The chosen candidate.
        chosen: TaskId,
    },
    /// A shared-variable read.
    Read {
        /// The reading task.
        task: TaskId,
        /// The variable.
        var: VarId,
        /// The value observed.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A shared-variable write.
    Write {
        /// The writing task.
        task: TaskId,
        /// The variable.
        var: VarId,
        /// The value stored.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A lock was acquired.
    LockAcquire {
        /// The acquiring task.
        task: TaskId,
        /// The lock.
        lock: LockId,
        /// Program location.
        site: SiteName,
    },
    /// A lock was released.
    LockRelease {
        /// The releasing task.
        task: TaskId,
        /// The lock.
        lock: LockId,
        /// Program location.
        site: SiteName,
    },
    /// A task started waiting on a condition variable (lock released).
    CondWait {
        /// The waiting task.
        task: TaskId,
        /// The condition variable.
        cvar: CondvarId,
        /// The lock released while waiting.
        lock: LockId,
        /// Program location.
        site: SiteName,
    },
    /// A condition variable was signalled.
    CondNotify {
        /// The signalling task.
        task: TaskId,
        /// The condition variable.
        cvar: CondvarId,
        /// `true` for `notify_all`.
        all: bool,
        /// The tasks woken.
        woken: Vec<TaskId>,
        /// Program location.
        site: SiteName,
    },
    /// A message was sent on a channel.
    Send {
        /// The sending task.
        task: TaskId,
        /// The channel.
        chan: ChanId,
        /// The message payload.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A message was received from a channel.
    Recv {
        /// The receiving task.
        task: TaskId,
        /// The channel.
        chan: ChanId,
        /// The message payload.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A send was dropped by the environment (network congestion).
    SendDropped {
        /// The sending task.
        task: TaskId,
        /// The channel.
        chan: ChanId,
        /// Size of the dropped payload.
        bytes: u64,
        /// Program location.
        site: SiteName,
    },
    /// The environment delivered a scripted input to a port queue.
    InputArrival {
        /// The port.
        port: PortId,
        /// The input value.
        value: Value,
    },
    /// A task consumed an input from a port.
    InputRead {
        /// The reading task.
        task: TaskId,
        /// The port.
        port: PortId,
        /// The value consumed.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A task emitted an observable output.
    Output {
        /// The emitting task.
        task: TaskId,
        /// The output port.
        port: PortId,
        /// The value emitted.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A named probe sample (used by invariant inference/monitoring).
    Probe {
        /// The probing task.
        task: TaskId,
        /// Probe point name.
        name: String,
        /// Sampled value.
        value: Value,
        /// Program location.
        site: SiteName,
    },
    /// A named counter was adjusted (observable performance output).
    Counter {
        /// The updating task.
        task: TaskId,
        /// Counter name.
        name: String,
        /// New total.
        total: i64,
        /// Program location.
        site: SiteName,
    },
    /// A task crashed (explicit failure or caught panic).
    Crash {
        /// The crashed task.
        task: TaskId,
        /// Crash description.
        reason: String,
        /// Program location (or `"panic"`).
        site: SiteName,
    },
    /// A task allocated memory (environment accounting).
    Alloc {
        /// The allocating task.
        task: TaskId,
        /// Bytes requested.
        bytes: u64,
        /// Program location.
        site: SiteName,
    },
    /// An allocation failed because the task's memory budget was exceeded.
    AllocFail {
        /// The allocating task.
        task: TaskId,
        /// Bytes requested.
        requested: u64,
        /// The task's budget.
        budget: u64,
        /// Program location.
        site: SiteName,
    },
    /// A task began sleeping until the given virtual time.
    Sleep {
        /// The sleeping task.
        task: TaskId,
        /// Absolute wake-up time (exec clock).
        until: u64,
        /// Program location.
        site: SiteName,
    },
    /// A task completed a join on another task (happens-before edge).
    Joined {
        /// The joining task.
        task: TaskId,
        /// The joined (exited or killed) task.
        target: TaskId,
        /// Program location.
        site: SiteName,
    },
    /// A task yielded the processor voluntarily.
    Yield {
        /// The yielding task.
        task: TaskId,
        /// Program location.
        site: SiteName,
    },
    /// The environment killed a whole group (node crash).
    GroupKilled {
        /// The group name.
        group: String,
        /// Tasks that died.
        tasks: Vec<TaskId>,
    },
    /// The environment restarted a previously killed group (node recovery).
    GroupRestarted {
        /// The group name.
        group: String,
        /// The fresh tasks spawned by the recovery entry point.
        tasks: Vec<TaskId>,
    },
    /// A scheduled network partition between two group prefixes began.
    PartitionStart {
        /// First group prefix of the partitioned pair.
        a: String,
        /// Second group prefix of the partitioned pair.
        b: String,
    },
    /// A scheduled network partition healed.
    PartitionHeal {
        /// First group prefix of the partitioned pair.
        a: String,
        /// Second group prefix of the partitioned pair.
        b: String,
    },
    /// A draw from the kernel RNG (input nondeterminism).
    RngDraw {
        /// The drawing task.
        task: TaskId,
        /// The value drawn.
        value: u64,
        /// Program location.
        site: SiteName,
    },
}

impl Event {
    /// Returns the task that issued this event, if any.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            Event::TaskSpawn { parent, .. } => *parent,
            Event::TaskExit { task, .. }
            | Event::TaskKilled { task, .. }
            | Event::Read { task, .. }
            | Event::Write { task, .. }
            | Event::LockAcquire { task, .. }
            | Event::LockRelease { task, .. }
            | Event::CondWait { task, .. }
            | Event::CondNotify { task, .. }
            | Event::Send { task, .. }
            | Event::Recv { task, .. }
            | Event::SendDropped { task, .. }
            | Event::InputRead { task, .. }
            | Event::Output { task, .. }
            | Event::Probe { task, .. }
            | Event::Counter { task, .. }
            | Event::Crash { task, .. }
            | Event::Alloc { task, .. }
            | Event::AllocFail { task, .. }
            | Event::Sleep { task, .. }
            | Event::Joined { task, .. }
            | Event::Yield { task, .. }
            | Event::RngDraw { task, .. } => Some(*task),
            Event::Decision { .. }
            | Event::InputArrival { .. }
            | Event::GroupKilled { .. }
            | Event::GroupRestarted { .. }
            | Event::PartitionStart { .. }
            | Event::PartitionHeal { .. } => None,
        }
    }

    /// Returns the program site of this event, if it has one.
    pub fn site(&self) -> Option<&str> {
        match self {
            Event::Read { site, .. }
            | Event::Write { site, .. }
            | Event::LockAcquire { site, .. }
            | Event::LockRelease { site, .. }
            | Event::CondWait { site, .. }
            | Event::CondNotify { site, .. }
            | Event::Send { site, .. }
            | Event::Recv { site, .. }
            | Event::SendDropped { site, .. }
            | Event::InputRead { site, .. }
            | Event::Output { site, .. }
            | Event::Probe { site, .. }
            | Event::Counter { site, .. }
            | Event::Crash { site, .. }
            | Event::Alloc { site, .. }
            | Event::AllocFail { site, .. }
            | Event::Sleep { site, .. }
            | Event::Joined { site, .. }
            | Event::Yield { site, .. }
            | Event::RngDraw { site, .. } => Some(site),
            _ => None,
        }
    }

    /// Returns the payload size in bytes carried by this event.
    ///
    /// This is the size of the *program data* moved by the operation (used by
    /// the data-rate classifier and the recording cost model), not the size
    /// of the event structure itself.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Event::Read { value, .. }
            | Event::Write { value, .. }
            | Event::Send { value, .. }
            | Event::Recv { value, .. }
            | Event::InputRead { value, .. }
            | Event::InputArrival { value, .. }
            | Event::Output { value, .. }
            | Event::Probe { value, .. } => value.byte_size(),
            Event::Counter { .. } => 8,
            Event::SendDropped { bytes, .. } => *bytes,
            Event::Alloc { bytes, .. } => *bytes,
            Event::RngDraw { .. } => 8,
            _ => 0,
        }
    }

    /// Returns a short stable name for the event kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::TaskSpawn { .. } => "task_spawn",
            Event::TaskExit { .. } => "task_exit",
            Event::TaskKilled { .. } => "task_killed",
            Event::Decision { .. } => "decision",
            Event::Read { .. } => "read",
            Event::Write { .. } => "write",
            Event::LockAcquire { .. } => "lock_acquire",
            Event::LockRelease { .. } => "lock_release",
            Event::CondWait { .. } => "cond_wait",
            Event::CondNotify { .. } => "cond_notify",
            Event::Send { .. } => "send",
            Event::Recv { .. } => "recv",
            Event::SendDropped { .. } => "send_dropped",
            Event::InputArrival { .. } => "input_arrival",
            Event::InputRead { .. } => "input_read",
            Event::Output { .. } => "output",
            Event::Probe { .. } => "probe",
            Event::Counter { .. } => "counter",
            Event::Crash { .. } => "crash",
            Event::Alloc { .. } => "alloc",
            Event::AllocFail { .. } => "alloc_fail",
            Event::Sleep { .. } => "sleep",
            Event::Joined { .. } => "joined",
            Event::Yield { .. } => "yield",
            Event::GroupKilled { .. } => "group_killed",
            Event::GroupRestarted { .. } => "group_restarted",
            Event::PartitionStart { .. } => "partition_start",
            Event::PartitionHeal { .. } => "partition_heal",
            Event::RngDraw { .. } => "rng_draw",
        }
    }
}

/// A synchronous consumer of machine events.
///
/// Observers run inline with the machine (under the kernel lock), so they see
/// a totally ordered event stream. The returned tick count is added to the
/// run's *wall clock* — this is how recording overhead is modelled — but
/// never to the *execution clock*, so observers cannot perturb program
/// behaviour.
pub trait Observer: Send + 'static {
    /// A short name for diagnostics.
    fn name(&self) -> &'static str;

    /// Handles one event; returns instrumentation cost in wall ticks.
    fn on_event(&mut self, meta: &EventMeta, event: &Event) -> u64;

    /// Upcast for post-run retrieval via [`RunOutput`](crate::driver::RunOutput).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast for post-run retrieval.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_event() -> Event {
        Event::Read {
            task: TaskId(1),
            var: VarId(2),
            value: Value::Int(5),
            site: "test::read".into(),
        }
    }

    #[test]
    fn task_and_site_extraction() {
        let e = read_event();
        assert_eq!(e.task(), Some(TaskId(1)));
        assert_eq!(e.site(), Some("test::read"));
        let d = Event::Decision {
            kind: DecisionKind::NextTask,
            candidates: vec![TaskId(0)],
            chosen: TaskId(0),
        };
        assert_eq!(d.task(), None);
        assert_eq!(d.site(), None);
    }

    #[test]
    fn payload_bytes_counts_values() {
        assert_eq!(read_event().payload_bytes(), 8);
        let s = Event::Send {
            task: TaskId(0),
            chan: ChanId(0),
            value: Value::Bytes(vec![0; 64]),
            site: "s".into(),
        };
        assert_eq!(s.payload_bytes(), 68);
        let l = Event::LockAcquire {
            task: TaskId(0),
            lock: LockId(0),
            site: "s".into(),
        };
        assert_eq!(l.payload_bytes(), 0);
    }

    #[test]
    fn kind_names_are_distinct_for_common_kinds() {
        let evs = [
            read_event().kind_name(),
            Event::TaskExit {
                task: TaskId(0),
                ok: true,
            }
            .kind_name(),
            Event::Yield {
                task: TaskId(0),
                site: "s".into(),
            }
            .kind_name(),
        ];
        assert_eq!(
            evs.len(),
            evs.iter().collect::<std::collections::HashSet<_>>().len()
        );
    }

    #[test]
    fn event_serde_round_trip() {
        let e = read_event();
        let s = serde_json::to_string(&e).unwrap();
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
