//! Identifier newtypes for every kind of simulator object.
//!
//! All identifiers are small dense integers assigned in creation order, which
//! makes them deterministic across runs with the same program and
//! configuration. They are used as indices into the kernel's object tables
//! and as stable keys in trace events and recorded artifacts.

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A virtual thread (task) running inside the simulator.
    TaskId,
    "t"
);
id_newtype!(
    /// A shared memory cell.
    VarId,
    "v"
);
id_newtype!(
    /// A mutual-exclusion lock.
    LockId,
    "l"
);
id_newtype!(
    /// A condition variable.
    CondvarId,
    "c"
);
id_newtype!(
    /// A message channel.
    ChanId,
    "ch"
);
id_newtype!(
    /// An external input or output port.
    PortId,
    "p"
);

/// A static code-site label, standing in for a source location in a real
/// binary.
///
/// Sites are the unit of control/data-plane classification, race reporting,
/// and selective recording. By convention they look like
/// `"component::operation"`, e.g. `"rangeserver::commit"`.
pub type Site = &'static str;

/// The site used for kernel-internal events that have no program location.
pub const KERNEL_SITE: Site = "kernel";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert_eq!(VarId(0).to_string(), "v0");
        assert_eq!(ChanId(7).to_string(), "ch7");
        assert_eq!(PortId(1).to_string(), "p1");
        assert_eq!(LockId(2).to_string(), "l2");
        assert_eq!(CondvarId(9).to_string(), "c9");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(TaskId(1) < TaskId(2));
        assert_eq!(TaskId::from(5).index(), 5);
    }

    #[test]
    fn ids_serde_round_trip() {
        let id = ChanId(42);
        let s = serde_json::to_string(&id).unwrap();
        let back: ChanId = serde_json::from_str(&s).unwrap();
        assert_eq!(id, back);
    }
}
