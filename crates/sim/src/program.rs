//! The program-facing API: [`Program`], [`Builder`], [`TaskCtx`] and typed
//! handles.
//!
//! A program declares its shared objects and initial tasks in
//! [`Program::setup`]; task bodies then interact with the machine
//! exclusively through [`TaskCtx`] operations, each of which is a scheduling
//! point. Every operation takes a static [`Site`] label — the stand-in for a
//! source location — which drives plane classification and selective
//! recording.

use crate::config::ChanClass;
use crate::error::{SimError, SimResult};
use crate::ids::{ChanId, CondvarId, LockId, PortId, Site, TaskId, VarId};
use crate::kernel::{Kernel, PortDir};
use crate::value::{SimData, Value};
use std::marker::PhantomData;

/// A typed shared-variable handle.
pub struct TVar<T> {
    /// The underlying variable id.
    pub id: VarId,
    _pd: PhantomData<fn(T) -> T>,
}

impl<T> TVar<T> {
    pub(crate) fn new(id: VarId) -> Self {
        TVar {
            id,
            _pd: PhantomData,
        }
    }
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TVar<T> {}

impl<T> core::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TVar({})", self.id)
    }
}

/// A typed channel handle (usable for both sending and receiving).
pub struct ChanHandle<T> {
    /// The underlying channel id.
    pub id: ChanId,
    _pd: PhantomData<fn(T) -> T>,
}

impl<T> ChanHandle<T> {
    pub(crate) fn new(id: ChanId) -> Self {
        ChanHandle {
            id,
            _pd: PhantomData,
        }
    }
}

impl<T> Clone for ChanHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ChanHandle<T> {}

impl<T> core::fmt::Debug for ChanHandle<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ChanHandle({})", self.id)
    }
}

/// A lock handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexHandle(pub LockId);

/// A condition-variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondvarHandle(pub CondvarId);

/// An input-port handle (scripted external inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InPort(pub PortId);

/// An output-port handle (observable outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPort(pub PortId);

/// A task body: runs once, must propagate [`SimError::Cancelled`] promptly.
pub type TaskFn = Box<dyn FnOnce(&mut TaskCtx) -> SimResult<()> + Send + 'static>;

/// A program the machine can run.
///
/// Implementations must be deterministic: all nondeterminism must flow
/// through [`TaskCtx`] operations (inputs, RNG, scheduling), never through
/// ambient sources like `std::time` or `HashMap` iteration order.
pub trait Program: Send + Sync {
    /// A short stable name (used in reports).
    fn name(&self) -> &'static str;

    /// Declares shared objects and spawns the initial tasks.
    fn setup(&self, b: &mut Builder<'_>);
}

/// Object-declaration counters for rebind-mode setup (see [`Builder`]).
#[derive(Debug, Default, Clone, Copy)]
struct RebindCursor {
    vars: u32,
    locks: u32,
    cvars: u32,
    chans: u32,
    ports: u32,
    tasks: u32,
}

/// Setup-time construction interface handed to [`Program::setup`].
///
/// In the normal (fresh) mode every declaration registers a new machine
/// object. In *rebind* mode — used when resuming a run from a
/// [`WorldSnapshot`](crate::kernel::WorldSnapshot) — the machine objects
/// already exist in the restored world; declarations merely hand back the
/// ids in the original declaration order (setup is deterministic, so the
/// orders match; names are validated as a divergence tripwire) and
/// re-collect the initial task bodies for fast-forward.
pub struct Builder<'k> {
    pub(crate) kernel: &'k mut Kernel,
    pub(crate) spawns: Vec<(TaskId, TaskFn)>,
    rebind: Option<RebindCursor>,
}

impl<'k> Builder<'k> {
    pub(crate) fn new(kernel: &'k mut Kernel) -> Self {
        Builder {
            kernel,
            spawns: Vec::new(),
            rebind: None,
        }
    }

    pub(crate) fn rebind(kernel: &'k mut Kernel) -> Self {
        Builder {
            kernel,
            spawns: Vec::new(),
            rebind: Some(RebindCursor::default()),
        }
    }

    fn rebind_check(kind: &str, declared: &str, existing: Option<&str>) {
        match existing {
            Some(have) if have == declared => {}
            have => panic!(
                "resume rebind diverged: program declared {kind} {declared:?}, \
                 restored world has {have:?} at this position"
            ),
        }
    }

    /// Declares a typed shared variable with an initial value.
    pub fn var<T: SimData>(&mut self, name: &str, init: T) -> TVar<T> {
        TVar::new(self.raw_var(name, init.into_value()))
    }

    /// Declares an untyped shared variable.
    pub fn raw_var(&mut self, name: &str, init: Value) -> VarId {
        if let Some(cur) = &mut self.rebind {
            let id = VarId(cur.vars);
            cur.vars += 1;
            Self::rebind_check(
                "var",
                name,
                self.kernel
                    .world
                    .vars
                    .get(id.index())
                    .map(|v| v.name.as_str()),
            );
            return id;
        }
        self.kernel.add_var(name, init)
    }

    /// Declares a lock.
    pub fn mutex(&mut self, name: &str) -> MutexHandle {
        if let Some(cur) = &mut self.rebind {
            let id = crate::ids::LockId(cur.locks);
            cur.locks += 1;
            Self::rebind_check(
                "lock",
                name,
                self.kernel
                    .world
                    .locks
                    .get(id.index())
                    .map(|l| l.name.as_str()),
            );
            return MutexHandle(id);
        }
        MutexHandle(self.kernel.add_lock(name))
    }

    /// Declares a condition variable.
    pub fn condvar(&mut self, name: &str) -> CondvarHandle {
        if let Some(cur) = &mut self.rebind {
            let id = CondvarId(cur.cvars);
            cur.cvars += 1;
            Self::rebind_check(
                "condvar",
                name,
                self.kernel
                    .world
                    .cvars
                    .get(id.index())
                    .map(|c| c.name.as_str()),
            );
            return CondvarHandle(id);
        }
        CondvarHandle(self.kernel.add_cvar(name))
    }

    /// Declares a typed channel.
    pub fn channel<T: SimData>(&mut self, name: &str, class: ChanClass) -> ChanHandle<T> {
        if let Some(cur) = &mut self.rebind {
            let id = ChanId(cur.chans);
            cur.chans += 1;
            Self::rebind_check(
                "channel",
                name,
                self.kernel
                    .world
                    .chans
                    .get(id.index())
                    .map(|c| c.name.as_str()),
            );
            return ChanHandle::new(id);
        }
        ChanHandle::new(self.kernel.add_chan(name, class))
    }

    /// Declares an input port fed by the run's input script.
    pub fn in_port(&mut self, name: &str) -> InPort {
        InPort(self.port(name, PortDir::In))
    }

    /// Declares an output port for observable outputs.
    pub fn out_port(&mut self, name: &str) -> OutPort {
        OutPort(self.port(name, PortDir::Out))
    }

    fn port(&mut self, name: &str, dir: PortDir) -> PortId {
        if let Some(cur) = &mut self.rebind {
            let id = PortId(cur.ports);
            cur.ports += 1;
            Self::rebind_check(
                "port",
                name,
                self.kernel
                    .world
                    .ports
                    .get(id.index())
                    .map(|p| p.name.as_str()),
            );
            return id;
        }
        self.kernel.add_port(name, dir)
    }

    /// Spawns an initial task in the given failure-domain `group`.
    pub fn spawn<F>(&mut self, name: &str, group: &str, f: F) -> TaskId
    where
        F: FnOnce(&mut TaskCtx) -> SimResult<()> + Send + 'static,
    {
        if let Some(cur) = &mut self.rebind {
            let tid = TaskId(cur.tasks);
            cur.tasks += 1;
            Self::rebind_check(
                "task",
                name,
                self.kernel
                    .world
                    .tasks
                    .get(tid.index())
                    .map(|t| t.name.as_str()),
            );
            self.spawns.push((tid, Box::new(f)));
            return tid;
        }
        let tid = self.kernel.add_task(name, group, None);
        self.spawns.push((tid, Box::new(f)));
        tid
    }
}

/// The per-task operation context.
///
/// All methods are scheduling points: the calling task parks, the driver
/// picks who runs next, and the operation executes atomically with respect
/// to every other task. Methods return [`SimError::Cancelled`] once the run
/// is winding down; bodies must propagate it (use `?`).
pub struct TaskCtx {
    pub(crate) shared: std::sync::Arc<crate::driver::Shared>,
    pub(crate) tid: TaskId,
}

impl TaskCtx {
    /// Returns this task's id.
    pub fn me(&self) -> TaskId {
        self.tid
    }

    /// Returns the current execution-clock time.
    ///
    /// This is a lock-free-equivalent peek: the task logically owns the
    /// processor while running, so the clock cannot move underneath it.
    /// During fast-forward after a restore it returns the clock value the
    /// original execution observed at this point.
    pub fn now(&self) -> u64 {
        crate::driver::observe_now(&self.shared, self.tid)
    }

    /// Reads a typed shared variable.
    ///
    /// Returns [`SimError::Internal`] if the stored value does not decode as
    /// `T` (a programming error, surfaced loudly).
    pub fn read<T: SimData>(&mut self, var: &TVar<T>, site: Site) -> SimResult<T> {
        let v = self.op_read(var.id, site)?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch reading {} at {site}", var.id))
        })
    }

    /// Writes a typed shared variable.
    pub fn write<T: SimData>(&mut self, var: &TVar<T>, value: T, site: Site) -> SimResult<()> {
        self.op_write(var.id, value.into_value(), site)
    }

    /// Reads an untyped shared variable.
    pub fn read_raw(&mut self, var: VarId, site: Site) -> SimResult<Value> {
        self.op_read(var, site)
    }

    /// Writes an untyped shared variable.
    pub fn write_raw(&mut self, var: VarId, value: Value, site: Site) -> SimResult<()> {
        self.op_write(var, value, site)
    }

    /// Acquires a lock (blocking).
    pub fn lock(&mut self, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Lock { lock: m.0, site })
            .map(drop)
    }

    /// Releases a lock.
    pub fn unlock(&mut self, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Unlock { lock: m.0, site })
            .map(drop)
    }

    /// Waits on a condition variable, atomically releasing `m`; on return
    /// the lock is held again.
    pub fn wait(&mut self, cv: CondvarHandle, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::CvWait {
            cvar: cv.0,
            lock: m.0,
            stage: crate::kernel::CvStage::Enter,
            site,
        })
        .map(drop)
    }

    /// Wakes one waiter (scheduling-policy choice among waiters).
    pub fn notify_one(&mut self, cv: CondvarHandle, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::CvNotify {
            cvar: cv.0,
            all: false,
            site,
        })
        .map(drop)
    }

    /// Wakes all waiters.
    pub fn notify_all(&mut self, cv: CondvarHandle, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::CvNotify {
            cvar: cv.0,
            all: true,
            site,
        })
        .map(drop)
    }

    /// Sends a message (unbounded queue; may be dropped on congested
    /// network channels).
    pub fn send<T: SimData>(&mut self, ch: &ChanHandle<T>, msg: T, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Send {
            chan: ch.id,
            value: msg.into_value(),
            site,
        })
        .map(drop)
    }

    /// Receives a message (blocking).
    pub fn recv<T: SimData>(&mut self, ch: &ChanHandle<T>, site: Site) -> SimResult<T> {
        let v = self.syscall(crate::kernel::Op::Recv {
            chan: ch.id,
            deadline: None,
            timeout: None,
            site,
        })?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch receiving on {} at {site}", ch.id))
        })
    }

    /// Receives a message, giving up after `ticks` of virtual time.
    pub fn recv_timeout<T: SimData>(
        &mut self,
        ch: &ChanHandle<T>,
        ticks: u64,
        site: Site,
    ) -> SimResult<T> {
        let v = self.syscall(crate::kernel::Op::Recv {
            chan: ch.id,
            deadline: None,
            timeout: Some(ticks),
            site,
        })?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch receiving on {} at {site}", ch.id))
        })
    }

    /// Closes a channel; subsequent receives on an empty queue fail with
    /// [`SimError::ChannelClosed`].
    pub fn close<T>(&mut self, ch: &ChanHandle<T>, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::CloseChan { chan: ch.id, site })
            .map(drop)
    }

    /// Reads the next scripted input from a port (blocking until arrival;
    /// fails with [`SimError::InputExhausted`] when the script has ended).
    pub fn input<T: SimData>(&mut self, p: InPort, site: Site) -> SimResult<T> {
        let v = self.syscall(crate::kernel::Op::ReadInput { port: p.0, site })?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch reading input {} at {site}", p.0))
        })
    }

    /// Emits an observable output.
    pub fn output<T: SimData>(&mut self, p: OutPort, value: T, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::WriteOutput {
            port: p.0,
            value: value.into_value(),
            site,
        })
        .map(drop)
    }

    /// Samples a named probe point (consumed by invariant inference).
    pub fn probe<T: SimData>(&mut self, name: &'static str, value: T, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Probe {
            name,
            value: value.into_value(),
            site,
        })
        .map(drop)
    }

    /// Adjusts a named counter (part of the observable I/O summary) and
    /// returns the new total.
    pub fn count(&mut self, name: &'static str, delta: i64, site: Site) -> SimResult<i64> {
        let v = self.syscall(crate::kernel::Op::Count { name, delta, site })?;
        Ok(v.as_int().unwrap_or(0))
    }

    /// Draws a uniform value in `[0, bound)` from the kernel RNG
    /// (`bound = 0` means the full 64-bit range).
    pub fn rand_below(&mut self, bound: u64, site: Site) -> SimResult<u64> {
        let v = self.syscall(crate::kernel::Op::Rng { bound, site })?;
        Ok(v.as_int().unwrap_or(0) as u64)
    }

    /// Sleeps for `ticks` of virtual time.
    pub fn sleep(&mut self, ticks: u64, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Sleep {
            until: None,
            ticks,
            site,
        })
        .map(drop)
    }

    /// Yields the processor (a pure scheduling point).
    pub fn yield_now(&mut self, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Yield { site }).map(drop)
    }

    /// Accounts `bytes` of allocation against this task's memory budget.
    pub fn alloc(&mut self, bytes: u64, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Alloc { bytes, site })
            .map(drop)
    }

    /// Returns `bytes` of allocation to the budget.
    pub fn free(&mut self, bytes: u64, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Free { bytes, site })
            .map(drop)
    }

    /// Blocks until `task` exits (or was killed).
    pub fn join(&mut self, task: TaskId, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Join { task, site })
            .map(drop)
    }

    /// Records a crash of this task and unwinds it.
    ///
    /// Always returns an error so it can be written as
    /// `return ctx.crash("reason", site)`.
    pub fn crash(&mut self, reason: &str, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Crash {
            reason: reason.to_owned(),
            site,
        })?;
        Err(SimError::Cancelled)
    }

    /// Requests an orderly early stop of the whole run.
    pub fn stop_run(&mut self, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::StopRun { site }).map(drop)
    }

    /// Spawns a new task in the given failure-domain group.
    pub fn spawn<F>(&mut self, name: &str, group: &str, f: F) -> SimResult<TaskId>
    where
        F: FnOnce(&mut TaskCtx) -> SimResult<()> + Send + 'static,
    {
        crate::driver::spawn_from_ctx(self, name, group, Box::new(f))
    }

    fn op_read(&mut self, var: VarId, site: Site) -> SimResult<Value> {
        self.syscall(crate::kernel::Op::Read { var, site })
    }

    fn op_write(&mut self, var: VarId, value: Value, site: Site) -> SimResult<()> {
        self.syscall(crate::kernel::Op::Write { var, value, site })
            .map(drop)
    }

    fn syscall(&mut self, op: crate::kernel::Op) -> SimResult<Value> {
        crate::driver::syscall(&self.shared, self.tid, op)
    }
}
