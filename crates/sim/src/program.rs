//! The program-facing API: [`Program`], [`Builder`], [`TaskCtx`] and typed
//! handles.
//!
//! A program declares its shared objects and initial tasks in
//! [`Program::setup`]; task bodies are `async` coroutines that interact with
//! the machine exclusively through [`TaskCtx`] operations, each of which is
//! an `await` — a scheduling point where the body suspends and the driver
//! decides who runs next. Every operation takes a static [`Site`] label —
//! the stand-in for a source location — which drives plane classification
//! and selective recording.
//!
//! The futures here never touch a real async runtime: awaiting an operation
//! parks the coroutine by leaving a request in its `TaskSlot` mailbox and
//! returning `Pending`; the driver executes the operation against the
//! kernel and re-polls with the result in the mailbox. Wakers are never
//! used (the driver knows exactly whom to poll), so task bodies must await
//! only `TaskCtx` operations — a foreign future that returns `Pending`
//! would suspend the task forever and is reported as an internal error.

use crate::config::ChanClass;
use crate::error::{SimError, SimResult};
use crate::ids::{ChanId, CondvarId, LockId, PortId, Site, TaskId, VarId};
use crate::kernel::{Kernel, Op, PortDir, SysLogEntry};
use crate::value::{SimData, Value};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// A typed shared-variable handle.
pub struct TVar<T> {
    /// The underlying variable id.
    pub id: VarId,
    _pd: PhantomData<fn(T) -> T>,
}

impl<T> TVar<T> {
    pub(crate) fn new(id: VarId) -> Self {
        TVar {
            id,
            _pd: PhantomData,
        }
    }
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for TVar<T> {}

impl<T> core::fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "TVar({})", self.id)
    }
}

/// A typed channel handle (usable for both sending and receiving).
pub struct ChanHandle<T> {
    /// The underlying channel id.
    pub id: ChanId,
    _pd: PhantomData<fn(T) -> T>,
}

impl<T> ChanHandle<T> {
    pub(crate) fn new(id: ChanId) -> Self {
        ChanHandle {
            id,
            _pd: PhantomData,
        }
    }
}

impl<T> Clone for ChanHandle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for ChanHandle<T> {}

impl<T> core::fmt::Debug for ChanHandle<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ChanHandle({})", self.id)
    }
}

/// A lock handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutexHandle(pub LockId);

/// A condition-variable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CondvarHandle(pub CondvarId);

/// An input-port handle (scripted external inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InPort(pub PortId);

/// An output-port handle (observable outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutPort(pub PortId);

/// The pinned coroutine for one task body. `!Send` by design: futures are
/// engine-local (a parallel explorer gives each worker its own engine and
/// whole world), only the *factories* ([`TaskFn`]) cross threads.
pub type TaskFuture = Pin<Box<dyn Future<Output = SimResult<()>> + 'static>>;

/// A task body factory: runs once, producing the body's coroutine. The body
/// must propagate [`SimError::Cancelled`] promptly.
pub type TaskFn = Box<dyn FnOnce(TaskCtx) -> TaskFuture + Send + 'static>;

/// The per-task mailbox between a body's futures and the driver's engine.
///
/// One poll of the body runs user code from one suspension point to the
/// next; everything the body wants from the machine in between lands here,
/// and everything the machine answers comes back through here.
#[derive(Default)]
pub(crate) struct TaskSlot {
    /// The operation or spawn the body parked on (set by the awaited
    /// future, drained by the engine when the poll returns `Pending`).
    pub request: Option<Request>,
    /// The completed operation's result, deposited by the engine before the
    /// wake-up poll.
    pub reply: Option<SimResult<Value>>,
    /// The completed spawn's result, deposited by the engine before the
    /// wake-up poll.
    pub spawn_reply: Option<SimResult<TaskId>>,
    /// The execution clock as of this poll (the clock only moves between
    /// polls, so every [`TaskCtx::now`] in one poll sees the same value).
    pub now: u64,
    /// Set when the run is winding down (or this task was killed): every
    /// subsequent operation fails fast with [`SimError::Cancelled`].
    pub cancelled: bool,
    /// Fast-forward queue for snapshot resume: recorded syscall results the
    /// body consumes (instead of announcing live operations) while it is
    /// being replayed back to its park point.
    pub ff: VecDeque<SysLogEntry>,
    /// Children harvested while fast-forwarding a spawning parent: the
    /// restored world already has the child task, but only the re-run
    /// parent body can recreate the child's body closure.
    pub spawned: Vec<(TaskId, TaskFn)>,
    /// How many live [`TaskCtx::now`] observations this poll made (the
    /// engine logs one syscall-log entry per observation afterwards).
    pub now_obs: u32,
    /// A fast-forward mismatch detected inside a future (where it cannot
    /// reach the kernel to stop the run).
    pub divergence: Option<String>,
}

/// What a parked task body asked the machine to do.
pub(crate) enum Request {
    /// Execute a kernel operation.
    Op(Op),
    /// Spawn a child task.
    Spawn {
        name: String,
        group: String,
        f: TaskFn,
    },
}

/// Future for one kernel operation: first poll announces the request (or
/// consumes a fast-forward entry), wake-up poll takes the reply.
pub(crate) struct OpCall {
    slot: Rc<RefCell<TaskSlot>>,
    op: Option<Op>,
}

impl Future for OpCall {
    type Output = SimResult<Value>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut slot = this.slot.borrow_mut();
        match this.op.take() {
            Some(op) => {
                if let Some(entry) = slot.ff.pop_front() {
                    // Fast-forward: the restored world already contains this
                    // operation's effects, events and cost — just feed the
                    // recorded result back (without suspending: the whole
                    // replay is one poll).
                    return match entry {
                        SysLogEntry::Ret(res) => Poll::Ready(res),
                        other => {
                            slot.divergence =
                                Some(format!("expected an op result, log has {other:?}"));
                            Poll::Ready(Err(SimError::Cancelled))
                        }
                    };
                }
                if slot.cancelled {
                    return Poll::Ready(Err(SimError::Cancelled));
                }
                slot.request = Some(Request::Op(op));
                Poll::Pending
            }
            None => match slot.reply.take() {
                Some(res) => Poll::Ready(res),
                None => Poll::Pending,
            },
        }
    }
}

/// Future for one runtime spawn (same two-phase shape as [`OpCall`]).
pub(crate) struct SpawnCall {
    slot: Rc<RefCell<TaskSlot>>,
    payload: Option<(String, String, TaskFn)>,
}

impl Future for SpawnCall {
    type Output = SimResult<TaskId>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut slot = this.slot.borrow_mut();
        match this.payload.take() {
            Some((name, group, f)) => {
                if let Some(entry) = slot.ff.pop_front() {
                    // Fast-forward: the child already exists in the restored
                    // world; hand its body to the engine for rebuilding.
                    return match entry {
                        SysLogEntry::Spawn(tid) => {
                            slot.spawned.push((tid, f));
                            Poll::Ready(Ok(tid))
                        }
                        SysLogEntry::Ret(Err(e)) => Poll::Ready(Err(e)),
                        other => {
                            slot.divergence = Some(format!("expected a spawn, log has {other:?}"));
                            Poll::Ready(Err(SimError::Cancelled))
                        }
                    };
                }
                if slot.cancelled {
                    return Poll::Ready(Err(SimError::Cancelled));
                }
                slot.request = Some(Request::Spawn { name, group, f });
                Poll::Pending
            }
            None => match slot.spawn_reply.take() {
                Some(res) => Poll::Ready(res),
                None => Poll::Pending,
            },
        }
    }
}

/// A program the machine can run.
///
/// Implementations must be deterministic: all nondeterminism must flow
/// through [`TaskCtx`] operations (inputs, RNG, scheduling), never through
/// ambient sources like `std::time` or `HashMap` iteration order.
pub trait Program: Send + Sync {
    /// A short stable name (used in reports).
    fn name(&self) -> &'static str;

    /// Declares shared objects and spawns the initial tasks.
    fn setup(&self, b: &mut Builder<'_>);

    /// Respawns tasks for a failure-domain group the environment restarted
    /// (a scheduled [`RestartEvent`](crate::config::RestartEvent) fired
    /// after the group was killed).
    ///
    /// The replacement tasks are fresh coroutines with *new* task ids; the
    /// group's shared objects (variables, locks, channels) survive the
    /// crash untouched, so recovery code typically rebuilds volatile state
    /// from the durable state it finds there — like a database replaying
    /// its commit log. Must be deterministic, like [`setup`](Self::setup).
    ///
    /// The default recovers nothing: the restart is counted but the group
    /// stays down.
    fn recover(&self, group: &str, b: &mut RecoveryBuilder) {
        let _ = (group, b);
    }
}

/// Collects the replacement tasks a program's recovery entry point spawns
/// when the environment restarts a killed failure-domain group (see
/// [`Program::recover`]).
pub struct RecoveryBuilder {
    group: String,
    pub(crate) spawns: Vec<(String, TaskFn)>,
}

impl RecoveryBuilder {
    pub(crate) fn new(group: &str) -> Self {
        RecoveryBuilder {
            group: group.to_owned(),
            spawns: Vec::new(),
        }
    }

    /// The failure-domain group being restarted.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// Spawns a replacement task (in the restarting group).
    pub fn spawn<F, Fut>(&mut self, name: &str, f: F)
    where
        F: FnOnce(TaskCtx) -> Fut + Send + 'static,
        Fut: Future<Output = SimResult<()>> + 'static,
    {
        self.spawns.push((
            name.to_owned(),
            Box::new(move |ctx| Box::pin(f(ctx)) as TaskFuture),
        ));
    }
}

/// Object-declaration counters for rebind-mode setup (see [`Builder`]).
#[derive(Debug, Default, Clone, Copy)]
struct RebindCursor {
    vars: u32,
    locks: u32,
    cvars: u32,
    chans: u32,
    ports: u32,
    tasks: u32,
}

/// Setup-time construction interface handed to [`Program::setup`].
///
/// In the normal (fresh) mode every declaration registers a new machine
/// object. In *rebind* mode — used when resuming a run from a
/// [`WorldSnapshot`](crate::kernel::WorldSnapshot) — the machine objects
/// already exist in the restored world; declarations merely hand back the
/// ids in the original declaration order (setup is deterministic, so the
/// orders match; names are validated as a divergence tripwire) and
/// re-collect the initial task bodies for fast-forward.
pub struct Builder<'k> {
    pub(crate) kernel: &'k mut Kernel,
    pub(crate) spawns: Vec<(TaskId, TaskFn)>,
    rebind: Option<RebindCursor>,
}

impl<'k> Builder<'k> {
    pub(crate) fn new(kernel: &'k mut Kernel) -> Self {
        Builder {
            kernel,
            spawns: Vec::new(),
            rebind: None,
        }
    }

    pub(crate) fn rebind(kernel: &'k mut Kernel) -> Self {
        Builder {
            kernel,
            spawns: Vec::new(),
            rebind: Some(RebindCursor::default()),
        }
    }

    fn rebind_check(kind: &str, declared: &str, existing: Option<&str>) {
        match existing {
            Some(have) if have == declared => {}
            have => panic!(
                "resume rebind diverged: program declared {kind} {declared:?}, \
                 restored world has {have:?} at this position"
            ),
        }
    }

    /// Declares a typed shared variable with an initial value.
    pub fn var<T: SimData>(&mut self, name: &str, init: T) -> TVar<T> {
        TVar::new(self.raw_var(name, init.into_value()))
    }

    /// Declares an untyped shared variable.
    pub fn raw_var(&mut self, name: &str, init: Value) -> VarId {
        if let Some(cur) = &mut self.rebind {
            let id = VarId(cur.vars);
            cur.vars += 1;
            Self::rebind_check(
                "var",
                name,
                self.kernel
                    .world
                    .vars
                    .get(id.index())
                    .map(|v| v.name.as_str()),
            );
            return id;
        }
        self.kernel.add_var(name, init)
    }

    /// Declares a lock.
    pub fn mutex(&mut self, name: &str) -> MutexHandle {
        if let Some(cur) = &mut self.rebind {
            let id = crate::ids::LockId(cur.locks);
            cur.locks += 1;
            Self::rebind_check(
                "lock",
                name,
                self.kernel
                    .world
                    .locks
                    .get(id.index())
                    .map(|l| l.name.as_str()),
            );
            return MutexHandle(id);
        }
        MutexHandle(self.kernel.add_lock(name))
    }

    /// Declares a condition variable.
    pub fn condvar(&mut self, name: &str) -> CondvarHandle {
        if let Some(cur) = &mut self.rebind {
            let id = CondvarId(cur.cvars);
            cur.cvars += 1;
            Self::rebind_check(
                "condvar",
                name,
                self.kernel
                    .world
                    .cvars
                    .get(id.index())
                    .map(|c| c.name.as_str()),
            );
            return CondvarHandle(id);
        }
        CondvarHandle(self.kernel.add_cvar(name))
    }

    /// Declares a typed channel.
    pub fn channel<T: SimData>(&mut self, name: &str, class: ChanClass) -> ChanHandle<T> {
        if let Some(cur) = &mut self.rebind {
            let id = ChanId(cur.chans);
            cur.chans += 1;
            Self::rebind_check(
                "channel",
                name,
                self.kernel
                    .world
                    .chans
                    .get(id.index())
                    .map(|c| c.name.as_str()),
            );
            return ChanHandle::new(id);
        }
        ChanHandle::new(self.kernel.add_chan(name, class))
    }

    /// Declares an input port fed by the run's input script.
    pub fn in_port(&mut self, name: &str) -> InPort {
        InPort(self.port(name, PortDir::In))
    }

    /// Declares an output port for observable outputs.
    pub fn out_port(&mut self, name: &str) -> OutPort {
        OutPort(self.port(name, PortDir::Out))
    }

    fn port(&mut self, name: &str, dir: PortDir) -> PortId {
        if let Some(cur) = &mut self.rebind {
            let id = PortId(cur.ports);
            cur.ports += 1;
            Self::rebind_check(
                "port",
                name,
                self.kernel
                    .world
                    .ports
                    .get(id.index())
                    .map(|p| p.name.as_str()),
            );
            return id;
        }
        self.kernel.add_port(name, dir)
    }

    /// Spawns an initial task in the given failure-domain `group`.
    pub fn spawn<F, Fut>(&mut self, name: &str, group: &str, f: F) -> TaskId
    where
        F: FnOnce(TaskCtx) -> Fut + Send + 'static,
        Fut: Future<Output = SimResult<()>> + 'static,
    {
        let body: TaskFn = Box::new(move |ctx| Box::pin(f(ctx)) as TaskFuture);
        if let Some(cur) = &mut self.rebind {
            let tid = TaskId(cur.tasks);
            cur.tasks += 1;
            Self::rebind_check(
                "task",
                name,
                self.kernel
                    .world
                    .tasks
                    .get(tid.index())
                    .map(|t| t.name.as_str()),
            );
            self.spawns.push((tid, body));
            return tid;
        }
        let tid = self.kernel.add_task(name, group, None);
        self.spawns.push((tid, body));
        tid
    }
}

/// The per-task operation context, owned by the task body's coroutine.
///
/// All async methods are scheduling points: the calling body suspends, the
/// driver picks who runs next, and the operation executes atomically with
/// respect to every other task. Methods return [`SimError::Cancelled`] once
/// the run is winding down; bodies must propagate it (use `?`).
pub struct TaskCtx {
    pub(crate) slot: Rc<RefCell<TaskSlot>>,
    pub(crate) tid: TaskId,
}

impl TaskCtx {
    /// Returns this task's id.
    pub fn me(&self) -> TaskId {
        self.tid
    }

    /// Returns the current execution-clock time.
    ///
    /// Not a scheduling point: the task logically owns the processor while
    /// running, so the clock cannot move underneath it. During fast-forward
    /// after a restore it returns the clock value the original execution
    /// observed at this point.
    pub fn now(&self) -> u64 {
        let mut slot = self.slot.borrow_mut();
        if let Some(entry) = slot.ff.pop_front() {
            match entry {
                SysLogEntry::Now(t) => return t,
                other => {
                    // Divergence (the log holds an op result where the body
                    // asked for the clock). now() cannot propagate an error;
                    // flag it for the engine and fall back to the restored
                    // clock.
                    slot.divergence = Some(format!(
                        "body observed the clock where the log has {other:?}"
                    ));
                    return slot.now;
                }
            }
        }
        slot.now_obs += 1;
        slot.now
    }

    /// Reads a typed shared variable.
    ///
    /// Returns [`SimError::Internal`] if the stored value does not decode as
    /// `T` (a programming error, surfaced loudly).
    pub async fn read<T: SimData>(&mut self, var: &TVar<T>, site: Site) -> SimResult<T> {
        let v = self.syscall(Op::Read { var: var.id, site }).await?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch reading {} at {site}", var.id))
        })
    }

    /// Writes a typed shared variable.
    pub async fn write<T: SimData>(
        &mut self,
        var: &TVar<T>,
        value: T,
        site: Site,
    ) -> SimResult<()> {
        self.syscall(Op::Write {
            var: var.id,
            value: value.into_value(),
            site,
        })
        .await
        .map(drop)
    }

    /// Reads an untyped shared variable.
    pub async fn read_raw(&mut self, var: VarId, site: Site) -> SimResult<Value> {
        self.syscall(Op::Read { var, site }).await
    }

    /// Writes an untyped shared variable.
    pub async fn write_raw(&mut self, var: VarId, value: Value, site: Site) -> SimResult<()> {
        self.syscall(Op::Write { var, value, site }).await.map(drop)
    }

    /// Acquires a lock (blocking).
    pub async fn lock(&mut self, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(Op::Lock { lock: m.0, site }).await.map(drop)
    }

    /// Releases a lock.
    pub async fn unlock(&mut self, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(Op::Unlock { lock: m.0, site }).await.map(drop)
    }

    /// Waits on a condition variable, atomically releasing `m`; on return
    /// the lock is held again.
    pub async fn wait(&mut self, cv: CondvarHandle, m: MutexHandle, site: Site) -> SimResult<()> {
        self.syscall(Op::CvWait {
            cvar: cv.0,
            lock: m.0,
            stage: crate::kernel::CvStage::Enter,
            site,
        })
        .await
        .map(drop)
    }

    /// Wakes one waiter (scheduling-policy choice among waiters).
    pub async fn notify_one(&mut self, cv: CondvarHandle, site: Site) -> SimResult<()> {
        self.syscall(Op::CvNotify {
            cvar: cv.0,
            all: false,
            site,
        })
        .await
        .map(drop)
    }

    /// Wakes all waiters.
    pub async fn notify_all(&mut self, cv: CondvarHandle, site: Site) -> SimResult<()> {
        self.syscall(Op::CvNotify {
            cvar: cv.0,
            all: true,
            site,
        })
        .await
        .map(drop)
    }

    /// Sends a message (unbounded queue; may be dropped on congested
    /// network channels).
    pub async fn send<T: SimData>(
        &mut self,
        ch: &ChanHandle<T>,
        msg: T,
        site: Site,
    ) -> SimResult<()> {
        self.syscall(Op::Send {
            chan: ch.id,
            value: msg.into_value(),
            site,
        })
        .await
        .map(drop)
    }

    /// Receives a message (blocking).
    pub async fn recv<T: SimData>(&mut self, ch: &ChanHandle<T>, site: Site) -> SimResult<T> {
        let v = self
            .syscall(Op::Recv {
                chan: ch.id,
                deadline: None,
                timeout: None,
                site,
            })
            .await?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch receiving on {} at {site}", ch.id))
        })
    }

    /// Receives a message, giving up after `ticks` of virtual time.
    pub async fn recv_timeout<T: SimData>(
        &mut self,
        ch: &ChanHandle<T>,
        ticks: u64,
        site: Site,
    ) -> SimResult<T> {
        let v = self
            .syscall(Op::Recv {
                chan: ch.id,
                deadline: None,
                timeout: Some(ticks),
                site,
            })
            .await?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch receiving on {} at {site}", ch.id))
        })
    }

    /// Closes a channel; subsequent receives on an empty queue fail with
    /// [`SimError::ChannelClosed`].
    pub async fn close<T>(&mut self, ch: &ChanHandle<T>, site: Site) -> SimResult<()> {
        self.syscall(Op::CloseChan { chan: ch.id, site })
            .await
            .map(drop)
    }

    /// Reads the next scripted input from a port (blocking until arrival;
    /// fails with [`SimError::InputExhausted`] when the script has ended).
    pub async fn input<T: SimData>(&mut self, p: InPort, site: Site) -> SimResult<T> {
        let v = self.syscall(Op::ReadInput { port: p.0, site }).await?;
        T::from_value(&v).ok_or_else(|| {
            SimError::Internal(format!("type mismatch reading input {} at {site}", p.0))
        })
    }

    /// Emits an observable output.
    pub async fn output<T: SimData>(&mut self, p: OutPort, value: T, site: Site) -> SimResult<()> {
        self.syscall(Op::WriteOutput {
            port: p.0,
            value: value.into_value(),
            site,
        })
        .await
        .map(drop)
    }

    /// Samples a named probe point (consumed by invariant inference).
    pub async fn probe<T: SimData>(
        &mut self,
        name: &'static str,
        value: T,
        site: Site,
    ) -> SimResult<()> {
        self.syscall(Op::Probe {
            name,
            value: value.into_value(),
            site,
        })
        .await
        .map(drop)
    }

    /// Adjusts a named counter (part of the observable I/O summary) and
    /// returns the new total.
    pub async fn count(&mut self, name: &'static str, delta: i64, site: Site) -> SimResult<i64> {
        let v = self.syscall(Op::Count { name, delta, site }).await?;
        Ok(v.as_int().unwrap_or(0))
    }

    /// Draws a uniform value in `[0, bound)` from the kernel RNG
    /// (`bound = 0` means the full 64-bit range).
    pub async fn rand_below(&mut self, bound: u64, site: Site) -> SimResult<u64> {
        let v = self.syscall(Op::Rng { bound, site }).await?;
        Ok(v.as_int().unwrap_or(0) as u64)
    }

    /// Sleeps for `ticks` of virtual time.
    pub async fn sleep(&mut self, ticks: u64, site: Site) -> SimResult<()> {
        self.syscall(Op::Sleep {
            until: None,
            ticks,
            site,
        })
        .await
        .map(drop)
    }

    /// Yields the processor (a pure scheduling point).
    pub async fn yield_now(&mut self, site: Site) -> SimResult<()> {
        self.syscall(Op::Yield { site }).await.map(drop)
    }

    /// Accounts `bytes` of allocation against this task's memory budget.
    pub async fn alloc(&mut self, bytes: u64, site: Site) -> SimResult<()> {
        self.syscall(Op::Alloc { bytes, site }).await.map(drop)
    }

    /// Returns `bytes` of allocation to the budget.
    pub async fn free(&mut self, bytes: u64, site: Site) -> SimResult<()> {
        self.syscall(Op::Free { bytes, site }).await.map(drop)
    }

    /// Blocks until `task` exits (or was killed).
    pub async fn join(&mut self, task: TaskId, site: Site) -> SimResult<()> {
        self.syscall(Op::Join { task, site }).await.map(drop)
    }

    /// Records a crash of this task and unwinds it.
    ///
    /// Always returns an error so it can be written as
    /// `return ctx.crash("reason", site).await`.
    pub async fn crash(&mut self, reason: &str, site: Site) -> SimResult<()> {
        self.syscall(Op::Crash {
            reason: reason.to_owned(),
            site,
        })
        .await?;
        Err(SimError::Cancelled)
    }

    /// Requests an orderly early stop of the whole run.
    pub async fn stop_run(&mut self, site: Site) -> SimResult<()> {
        self.syscall(Op::StopRun { site }).await.map(drop)
    }

    /// Spawns a new task in the given failure-domain group.
    ///
    /// Fails with [`SimError::TaskLimit`] when the run is already at its
    /// configured [`max_tasks`](crate::config::RunConfig) ceiling.
    pub async fn spawn<F, Fut>(&mut self, name: &str, group: &str, f: F) -> SimResult<TaskId>
    where
        F: FnOnce(TaskCtx) -> Fut + Send + 'static,
        Fut: Future<Output = SimResult<()>> + 'static,
    {
        SpawnCall {
            slot: Rc::clone(&self.slot),
            payload: Some((
                name.to_owned(),
                group.to_owned(),
                Box::new(move |ctx| Box::pin(f(ctx)) as TaskFuture),
            )),
        }
        .await
    }

    fn syscall(&mut self, op: Op) -> OpCall {
        OpCall {
            slot: Rc::clone(&self.slot),
            op: Some(op),
        }
    }
}
