//! Conflict metadata for partial-order reduction.
//!
//! Every operation a task can ask the kernel to perform touches at most one
//! shared resource (plus, for condition-variable waits, the associated
//! lock). An [`OpDesc`] is the schedule-relevant footprint of a pending
//! operation: two enabled operations *commute* — executing them in either
//! order reaches the same state — exactly when their descriptors do not
//! [`conflict`](OpDesc::conflicts). Systematic explorers (`dd-replay`'s
//! DPOR-lite strategy) use this to prune interleavings that only reorder
//! commuting operations.

use crate::ids::{ChanId, CondvarId, LockId, PortId, VarId};
use serde::{Deserialize, Serialize};

/// The shared-resource footprint of one pending operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpDesc {
    /// A shared-variable access.
    Var {
        /// The variable touched.
        var: VarId,
        /// `true` for a store.
        write: bool,
    },
    /// A lock acquire or release.
    Lock {
        /// The lock touched.
        lock: LockId,
    },
    /// A condition-variable wait (which also releases/reacquires the lock).
    CvWait {
        /// The condition variable waited on.
        cvar: CondvarId,
        /// The lock released while waiting.
        lock: LockId,
    },
    /// A condition-variable notification.
    CvNotify {
        /// The condition variable signalled.
        cvar: CondvarId,
    },
    /// A channel send, receive or close.
    Chan {
        /// The channel touched.
        chan: ChanId,
    },
    /// An input-port read.
    PortIn {
        /// The port read.
        port: PortId,
    },
    /// An output-port write.
    PortOut {
        /// The port written.
        port: PortId,
    },
    /// A draw from the kernel RNG (all draws share one stream).
    Rng,
    /// A purely task-local operation (yield, sleep, alloc, join, probe,
    /// counter): commutes with everything except [`OpDesc::Global`].
    Local,
    /// An operation with an unknown or run-wide footprint (task spawn,
    /// explicit crash/stop, or a task whose next operation is not yet
    /// known): conflicts with everything.
    Global,
}

impl OpDesc {
    /// Returns `true` if the two operations do *not* commute: executing
    /// them in different orders from the same state can reach different
    /// states (or different observable traces).
    pub fn conflicts(&self, other: &OpDesc) -> bool {
        use OpDesc::*;
        match (self, other) {
            (Global, _) | (_, Global) => true,
            (Local, _) | (_, Local) => false,
            (Var { var: a, write: w1 }, Var { var: b, write: w2 }) => a == b && (*w1 || *w2),
            (Lock { lock: a }, Lock { lock: b }) => a == b,
            (Lock { lock: a }, CvWait { lock: b, .. })
            | (CvWait { lock: a, .. }, Lock { lock: b }) => a == b,
            (CvWait { cvar: a, lock: la }, CvWait { cvar: b, lock: lb }) => a == b || la == lb,
            (CvWait { cvar: a, .. }, CvNotify { cvar: b })
            | (CvNotify { cvar: a }, CvWait { cvar: b, .. })
            | (CvNotify { cvar: a }, CvNotify { cvar: b }) => a == b,
            (Chan { chan: a }, Chan { chan: b }) => a == b,
            (PortIn { port: a }, PortIn { port: b }) => a == b,
            (PortOut { port: a }, PortOut { port: b }) => a == b,
            (Rng, Rng) => true,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_conflicts_need_a_write() {
        let r = OpDesc::Var {
            var: VarId(0),
            write: false,
        };
        let w = OpDesc::Var {
            var: VarId(0),
            write: true,
        };
        let w_other = OpDesc::Var {
            var: VarId(1),
            write: true,
        };
        assert!(!r.conflicts(&r), "read/read commutes");
        assert!(r.conflicts(&w) && w.conflicts(&r));
        assert!(w.conflicts(&w));
        assert!(!w.conflicts(&w_other), "different variables commute");
    }

    #[test]
    fn conflicts_is_symmetric() {
        let descs = [
            OpDesc::Var {
                var: VarId(0),
                write: true,
            },
            OpDesc::Var {
                var: VarId(0),
                write: false,
            },
            OpDesc::Lock { lock: LockId(0) },
            OpDesc::CvWait {
                cvar: CondvarId(0),
                lock: LockId(0),
            },
            OpDesc::CvNotify { cvar: CondvarId(0) },
            OpDesc::Chan { chan: ChanId(0) },
            OpDesc::PortIn { port: PortId(0) },
            OpDesc::PortOut { port: PortId(0) },
            OpDesc::Rng,
            OpDesc::Local,
            OpDesc::Global,
        ];
        for a in &descs {
            for b in &descs {
                assert_eq!(a.conflicts(b), b.conflicts(a), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn local_commutes_with_everything_but_global() {
        let l = OpDesc::Local;
        assert!(!l.conflicts(&OpDesc::Rng));
        assert!(!l.conflicts(&OpDesc::Lock { lock: LockId(3) }));
        assert!(!l.conflicts(&l));
        assert!(l.conflicts(&OpDesc::Global));
    }

    #[test]
    fn cv_wait_conflicts_with_its_lock() {
        let w = OpDesc::CvWait {
            cvar: CondvarId(0),
            lock: LockId(5),
        };
        assert!(w.conflicts(&OpDesc::Lock { lock: LockId(5) }));
        assert!(!w.conflicts(&OpDesc::Lock { lock: LockId(6) }));
        assert!(w.conflicts(&OpDesc::CvNotify { cvar: CondvarId(0) }));
        assert!(!w.conflicts(&OpDesc::CvNotify { cvar: CondvarId(1) }));
    }

    #[test]
    fn serde_round_trip() {
        let d = OpDesc::CvWait {
            cvar: CondvarId(2),
            lock: LockId(1),
        };
        let s = serde_json::to_string(&d).unwrap();
        assert_eq!(serde_json::from_str::<OpDesc>(&s).unwrap(), d);
    }
}
