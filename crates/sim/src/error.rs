//! Error types for simulator operations and runs.

use crate::ids::{ChanId, PortId, TaskId};
use serde::{Deserialize, Serialize};

/// Errors returned by [`TaskCtx`](crate::program::TaskCtx) operations.
///
/// Task bodies are expected to propagate these with `?`; in particular
/// [`SimError::Cancelled`] is how the driver unwinds tasks when the run is
/// stopped early.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimError {
    /// The run was cancelled (stop condition, deadlock recovery, or
    /// environment-induced kill); the task must return promptly.
    Cancelled,
    /// A `recv` with a timeout expired before a message arrived.
    RecvTimeout(ChanId),
    /// The channel has no live senders and is empty (graceful shutdown).
    ChannelClosed(ChanId),
    /// An input port was exhausted: no scripted input remains.
    InputExhausted(PortId),
    /// The task exceeded its memory budget (environment model).
    OutOfMemory { requested: u64, budget: u64 },
    /// A join target does not exist.
    NoSuchTask(TaskId),
    /// A runtime spawn would exceed the configured task limit
    /// ([`RunConfig::max_tasks`](crate::config::RunConfig)). Tasks are cheap
    /// coroutines, so the limit is a policy choice, not an OS accident: the
    /// spawn fails cleanly and the spawner decides how to degrade.
    TaskLimit { limit: u64 },
    /// An internal invariant was violated (simulator bug).
    Internal(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Cancelled => write!(f, "task cancelled"),
            SimError::RecvTimeout(ch) => write!(f, "recv timeout on {ch}"),
            SimError::ChannelClosed(ch) => write!(f, "channel {ch} closed"),
            SimError::InputExhausted(p) => write!(f, "input port {p} exhausted"),
            SimError::OutOfMemory { requested, budget } => {
                write!(
                    f,
                    "out of memory: requested {requested} with budget {budget}"
                )
            }
            SimError::NoSuchTask(t) => write!(f, "no such task {t}"),
            SimError::TaskLimit { limit } => {
                write!(f, "task limit reached: {limit} tasks already exist")
            }
            SimError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result alias for task-level operations.
pub type SimResult<T> = Result<T, SimError>;

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// All tasks ran to completion.
    Quiescent,
    /// The configured maximum step count was reached.
    MaxSteps,
    /// The configured maximum virtual time was reached.
    MaxTime,
    /// No runnable task and no pending wake source: a deadlock.
    Deadlock { blocked: Vec<TaskId> },
    /// A replay policy diverged from the recorded decision stream.
    ReplayDivergence { step: u64, detail: String },
    /// The program requested an early stop.
    Stopped,
}

impl core::fmt::Display for StopReason {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StopReason::Quiescent => write!(f, "quiescent"),
            StopReason::MaxSteps => write!(f, "max steps reached"),
            StopReason::MaxTime => write!(f, "max virtual time reached"),
            StopReason::Deadlock { blocked } => {
                write!(f, "deadlock among {} task(s)", blocked.len())
            }
            StopReason::ReplayDivergence { step, detail } => {
                write!(f, "replay divergence at step {step}: {detail}")
            }
            StopReason::Stopped => write!(f, "stopped by program"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(SimError::Cancelled.to_string(), "task cancelled");
        assert!(SimError::RecvTimeout(ChanId(1)).to_string().contains("ch1"));
        assert!(SimError::OutOfMemory {
            requested: 10,
            budget: 5
        }
        .to_string()
        .contains("requested 10"));
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::Quiescent.to_string(), "quiescent");
        let d = StopReason::Deadlock {
            blocked: vec![TaskId(0), TaskId(1)],
        };
        assert!(d.to_string().contains("2 task(s)"));
    }

    #[test]
    fn serde_round_trip() {
        let e = SimError::InputExhausted(PortId(3));
        let s = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<SimError>(&s).unwrap(), e);
    }
}
